#include "match/brute_force.h"

#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace treelattice {

namespace {

/// Extends a partial mapping by assigning query node `q` (whose parent is
/// already mapped, or is the query root) and recursing over the preorder
/// list. Returns the number of completions. `visited` accumulates candidate
/// document nodes examined, flushed to the registry once per count.
uint64_t Extend(const Document& doc, const Twig& query,
                const std::vector<int>& preorder, size_t pos,
                std::vector<NodeId>& mapping, uint64_t& visited) {
  if (pos == preorder.size()) return 1;
  int q = preorder[pos];
  int qp = query.parent(q);

  uint64_t total = 0;
  auto try_candidate = [&](NodeId v) {
    ++visited;
    if (doc.Label(v) != query.label(q)) return;
    // Enforce injectivity.
    for (int other = 0; other < query.size(); ++other) {
      if (mapping[static_cast<size_t>(other)] == v) return;
    }
    mapping[static_cast<size_t>(q)] = v;
    total += Extend(doc, query, preorder, pos + 1, mapping, visited);
    mapping[static_cast<size_t>(q)] = kInvalidNode;
  };

  if (qp == -1) {
    for (NodeId v = 0; v < static_cast<NodeId>(doc.NumNodes()); ++v) {
      try_candidate(v);
    }
  } else {
    NodeId vp = mapping[static_cast<size_t>(qp)];
    for (NodeId w = doc.FirstChild(vp); w != kInvalidNode;
         w = doc.NextSibling(w)) {
      try_candidate(w);
    }
  }
  return total;
}

}  // namespace

uint64_t BruteForceCount(const Document& doc, const Twig& query) {
  if (query.empty() || doc.empty()) return 0;
  std::vector<int> preorder = query.PreorderNodes();
  std::vector<NodeId> mapping(static_cast<size_t>(query.size()), kInvalidNode);
  uint64_t visited = 0;
  uint64_t total = Extend(doc, query, preorder, 0, mapping, visited);
  static obs::Counter* nodes_visited = obs::MetricsRegistry::Default()->counter(
      obs::metric_names::kMatchBruteForceNodesVisited);
  nodes_visited->Increment(visited);
  return total;
}

}  // namespace treelattice
