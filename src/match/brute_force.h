#ifndef TREELATTICE_MATCH_BRUTE_FORCE_H_
#define TREELATTICE_MATCH_BRUTE_FORCE_H_

#include <cstdint>

#include "twig/twig.h"
#include "xml/document.h"

namespace treelattice {

/// Reference twig-match counter by explicit enumeration of all 1-1
/// mappings (Definition 1). Exponential in the worst case — intended only
/// for validating MatchCounter in tests on small documents.
uint64_t BruteForceCount(const Document& doc, const Twig& query);

}  // namespace treelattice

#endif  // TREELATTICE_MATCH_BRUTE_FORCE_H_
