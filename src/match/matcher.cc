#include "match/matcher.h"

#include <algorithm>
#include <limits>

namespace treelattice {

MatchCounter::MatchCounter(const Document& doc) : doc_(&doc), index_(doc) {}

uint64_t MatchCounter::CountAt(const Twig& query, int q, NodeId v,
                               const std::vector<CountMap>& tables) const {
  const std::vector<int>& q_children = query.children(q);
  if (q_children.empty()) return 1;

  // Detect duplicate labels among q's children.
  bool duplicate_labels = false;
  for (size_t i = 0; i + 1 < q_children.size() && !duplicate_labels; ++i) {
    for (size_t j = i + 1; j < q_children.size(); ++j) {
      if (query.label(q_children[i]) == query.label(q_children[j])) {
        duplicate_labels = true;
        break;
      }
    }
  }

  if (!duplicate_labels) {
    // Distinct sibling labels: two query children can never map to the same
    // document child, so injectivity is automatic and the count is a
    // product of per-child sums.
    uint64_t product = 1;
    for (int qc : q_children) {
      const CountMap& table = tables[static_cast<size_t>(qc)];
      uint64_t sum = 0;
      for (NodeId w = doc_->FirstChild(v); w != kInvalidNode;
           w = doc_->NextSibling(w)) {
        auto it = table.find(w);
        if (it != table.end()) sum = SaturatingAdd(sum, it->second);
      }
      if (sum == 0) return 0;
      product = SaturatingMul(product, sum);
    }
    return product;
  }

  // Duplicate sibling labels: count injective assignments with a bitmask DP
  // over q's children (a weighted permanent). Query fanout is small.
  const size_t m = q_children.size();
  if (m > 30) return 0;  // beyond any realistic twig; avoid 2^m blow-up
  const size_t full = (size_t{1} << m);
  std::vector<uint64_t> dp(full, 0);
  dp[0] = 1;
  for (NodeId w = doc_->FirstChild(v); w != kInvalidNode;
       w = doc_->NextSibling(w)) {
    // Iterate masks descending so each document child w is used at most
    // once (0/1 knapsack over assignments).
    for (size_t mask = full; mask-- > 0;) {
      if (dp[mask] == 0) continue;
      for (size_t bit = 0; bit < m; ++bit) {
        if (mask & (size_t{1} << bit)) continue;
        const CountMap& table = tables[static_cast<size_t>(q_children[bit])];
        auto it = table.find(w);
        if (it == table.end()) continue;
        size_t next = mask | (size_t{1} << bit);
        dp[next] =
            SaturatingAdd(dp[next], SaturatingMul(dp[mask], it->second));
      }
    }
  }
  return dp[full - 1];
}

uint64_t MatchCounter::Count(const Twig& query) const {
  if (query.empty() || doc_->empty()) return 0;

  // Postorder over the query: children before parents.
  std::vector<int> preorder = query.PreorderNodes();
  std::vector<CountMap> tables(static_cast<size_t>(query.size()));

  for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
    int q = *it;
    const std::vector<NodeId>& candidates = index_.Nodes(query.label(q));
    CountMap& table = tables[static_cast<size_t>(q)];
    table.reserve(candidates.size());
    for (NodeId v : candidates) {
      uint64_t c = CountAt(query, q, v, tables);
      if (c > 0) table.emplace(v, c);
    }
  }

  uint64_t total = 0;
  for (const auto& [node, count] : tables[static_cast<size_t>(query.root())]) {
    (void)node;
    total = SaturatingAdd(total, count);
  }
  return total;
}

}  // namespace treelattice
