#ifndef TREELATTICE_MATCH_MATCHER_H_
#define TREELATTICE_MATCH_MATCHER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "twig/twig.h"
#include "util/saturating.h"
#include "xml/document.h"

namespace treelattice {

/// Exact twig-match counter over a document.
///
/// Implements Definition 1: a match is a 1-1 mapping from query nodes to
/// document nodes preserving labels and parent-child edges, with no sibling
/// order constraint. Counting runs a bottom-up dynamic program: for each
/// query node q (postorder) and each document node v with the same label,
/// cnt(q, v) is the number of ways to injectively assign q's children to
/// distinct children of v, multiplying the sub-counts. When q's children
/// carry pairwise distinct labels (the paper's standing assumption for
/// queries) the injective assignment collapses to a product of sums; with
/// duplicate sibling labels a bitmask assignment DP is used, so counts stay
/// exact in the general case.
///
/// The label index restricts work to nodes whose label occurs in the query,
/// so counting a size-m twig touches O(sum over q of |nodes(label(q))| *
/// fanout) document nodes.
class MatchCounter {
 public:
  /// Builds the counter (and its label index) for `doc`. The document must
  /// outlive the counter.
  explicit MatchCounter(const Document& doc);

  /// Number of matches of `query` in the document. Zero for an empty query.
  /// Counts saturate at UINT64_MAX on (pathological) overflow.
  uint64_t Count(const Twig& query) const;

  const Document& doc() const { return *doc_; }
  const LabelIndex& label_index() const { return index_; }

 private:
  /// Per-query-node table: document node -> match count of the query
  /// subtree rooted at that query node, keyed only where nonzero.
  using CountMap = std::unordered_map<NodeId, uint64_t>;

  /// Computes cnt(q, v) given the children tables.
  uint64_t CountAt(const Twig& query, int q, NodeId v,
                   const std::vector<CountMap>& tables) const;

  const Document* doc_;
  LabelIndex index_;
};

}  // namespace treelattice

#endif  // TREELATTICE_MATCH_MATCHER_H_
