#include "treesketch/tree_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace treelattice {

namespace {

/// Disjoint-set over cluster ids used during greedy merging.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges b into a (a becomes the representative).
  void Union(uint32_t a, uint32_t b) { parent_[b] = a; }

 private:
  std::vector<uint32_t> parent_;
};

/// Aggregated cluster state during construction.
struct ClusterAgg {
  LabelId label = kInvalidLabel;
  uint64_t size = 0;
  bool alive = false;
  /// Total number of children falling in each child cluster (keys may be
  /// stale; canonicalize through UnionFind before use).
  std::unordered_map<uint32_t, uint64_t> child_totals;
};

/// Canonicalizes the keys of `agg.child_totals` in place.
void CanonicalizeKeys(ClusterAgg& agg, UnionFind& uf) {
  bool stale = false;
  for (const auto& [key, value] : agg.child_totals) {
    (void)value;
    if (uf.Find(key) != key) {
      stale = true;
      break;
    }
  }
  if (!stale) return;
  std::unordered_map<uint32_t, uint64_t> fresh;
  fresh.reserve(agg.child_totals.size());
  for (const auto& [key, value] : agg.child_totals) {
    fresh[uf.Find(key)] += value;
  }
  agg.child_totals = std::move(fresh);
}

/// Weighted L2 distance between the average-child-count vectors of two
/// same-label clusters, scaled by the node mass a merge would perturb.
double MergeCost(const ClusterAgg& a, const ClusterAgg& b) {
  double sum_sq = 0.0;
  auto avg = [](const ClusterAgg& c, uint32_t key) {
    auto it = c.child_totals.find(key);
    if (it == c.child_totals.end()) return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(c.size);
  };
  for (const auto& [key, value] : a.child_totals) {
    (void)value;
    double d = avg(a, key) - avg(b, key);
    sum_sq += d * d;
  }
  for (const auto& [key, value] : b.child_totals) {
    (void)value;
    if (a.child_totals.count(key)) continue;  // already accounted
    double d = avg(b, key);
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq) * static_cast<double>(a.size + b.size);
}

}  // namespace

Result<TreeSketch> TreeSketch::Build(const Document& doc,
                                     const TreeSketchOptions& options,
                                     TreeSketchStats* stats) {
  if (doc.empty()) {
    return Status::InvalidArgument("TreeSketch::Build: empty document");
  }
  WallTimer timer;
  const size_t n = doc.NumNodes();

  // ---- Phase 1: count-stable partition refinement. -----------------------
  // Start from the label partition and refine by the per-child-cluster
  // child-count signature until a fixpoint (a perfect, lossless synopsis).
  std::vector<uint32_t> cluster(n);
  for (size_t i = 0; i < n; ++i) {
    cluster[i] = static_cast<uint32_t>(doc.Label(static_cast<NodeId>(i)));
  }
  size_t num_clusters = doc.dict().size();

  while (true) {
    // Signature: (old cluster, sorted (child cluster, count) pairs).
    std::unordered_map<std::string, uint32_t> sig_ids;
    std::vector<uint32_t> next(n);
    std::vector<std::pair<uint32_t, uint32_t>> kid_counts;
    for (size_t i = 0; i < n; ++i) {
      kid_counts.clear();
      for (NodeId c = doc.FirstChild(static_cast<NodeId>(i));
           c != kInvalidNode; c = doc.NextSibling(c)) {
        kid_counts.emplace_back(cluster[static_cast<size_t>(c)], 1);
      }
      std::sort(kid_counts.begin(), kid_counts.end());
      // Collapse duplicates into counts.
      std::string sig;
      sig.reserve(8 + kid_counts.size() * 8);
      sig.append(reinterpret_cast<const char*>(&cluster[i]), 4);
      for (size_t j = 0; j < kid_counts.size();) {
        size_t k = j;
        while (k < kid_counts.size() &&
               kid_counts[k].first == kid_counts[j].first) {
          ++k;
        }
        uint32_t child_cluster = kid_counts[j].first;
        uint32_t count = static_cast<uint32_t>(k - j);
        sig.append(reinterpret_cast<const char*>(&child_cluster), 4);
        sig.append(reinterpret_cast<const char*>(&count), 4);
        j = k;
      }
      auto [it, inserted] =
          sig_ids.emplace(sig, static_cast<uint32_t>(sig_ids.size()));
      (void)inserted;
      next[i] = it->second;
    }
    if (sig_ids.size() == num_clusters) break;
    num_clusters = sig_ids.size();
    cluster = std::move(next);
  }

  // ---- Phase 2: aggregate cluster state. ----------------------------------
  std::vector<ClusterAgg> aggs(num_clusters);
  for (size_t i = 0; i < n; ++i) {
    ClusterAgg& agg = aggs[cluster[i]];
    agg.alive = true;
    agg.label = doc.Label(static_cast<NodeId>(i));
    agg.size += 1;
    for (NodeId c = doc.FirstChild(static_cast<NodeId>(i)); c != kInvalidNode;
         c = doc.NextSibling(c)) {
      agg.child_totals[cluster[static_cast<size_t>(c)]] += 1;
    }
  }

  // ---- Phase 3: greedy same-label merging down to the byte budget. -------
  UnionFind uf(num_clusters);
  std::unordered_map<LabelId, std::vector<uint32_t>> by_label;
  for (uint32_t i = 0; i < num_clusters; ++i) {
    by_label[aggs[i].label].push_back(i);
  }
  std::vector<LabelId> mergeable_labels;
  for (const auto& [label, ids] : by_label) {
    if (ids.size() >= 2) mergeable_labels.push_back(label);
  }
  std::sort(mergeable_labels.begin(), mergeable_labels.end());

  auto memory_bytes = [&]() {
    size_t clusters = 0;
    size_t edges = 0;
    for (uint32_t i = 0; i < num_clusters; ++i) {
      if (!aggs[i].alive || uf.Find(i) != i) continue;
      ++clusters;
      CanonicalizeKeys(aggs[i], uf);
      edges += aggs[i].child_totals.size();
    }
    return clusters * 12 + edges * 16;
  };

  Rng rng(options.seed);
  size_t merges = 0;
  const size_t initial_clusters = num_clusters;
  size_t current_bytes = memory_bytes();
  size_t merges_since_recount = 0;

  while (current_bytes > options.memory_budget_bytes &&
         !mergeable_labels.empty()) {
    // Pick the cheapest same-label merge: exhaustively over all pairs (the
    // original algorithm's bottom-up greedy) or over a random sample.
    double best_cost = 0.0;
    uint32_t best_a = 0, best_b = 0;
    bool found = false;
    if (options.merge_candidates_per_step == 0) {
      for (LabelId label : mergeable_labels) {
        std::vector<uint32_t>& group = by_label[label];
        // Canonicalize and dedupe the group in place.
        for (uint32_t& id : group) id = uf.Find(id);
        std::sort(group.begin(), group.end());
        group.erase(std::unique(group.begin(), group.end()), group.end());
        for (size_t i = 0; i < group.size(); ++i) {
          CanonicalizeKeys(aggs[group[i]], uf);
          for (size_t j = i + 1; j < group.size(); ++j) {
            CanonicalizeKeys(aggs[group[j]], uf);
            double cost = MergeCost(aggs[group[i]], aggs[group[j]]);
            if (!found || cost < best_cost) {
              best_cost = cost;
              best_a = group[i];
              best_b = group[j];
              found = true;
            }
          }
        }
      }
    }
    for (size_t attempt = 0; attempt < options.merge_candidates_per_step;
         ++attempt) {
      LabelId label =
          mergeable_labels[rng.Uniform(mergeable_labels.size())];
      std::vector<uint32_t>& group = by_label[label];
      if (group.size() < 2) continue;
      uint32_t a = group[rng.Uniform(group.size())];
      uint32_t b = group[rng.Uniform(group.size())];
      a = uf.Find(a);
      b = uf.Find(b);
      if (a == b) continue;
      CanonicalizeKeys(aggs[a], uf);
      CanonicalizeKeys(aggs[b], uf);
      double cost = MergeCost(aggs[a], aggs[b]);
      if (!found || cost < best_cost) {
        best_cost = cost;
        best_a = a;
        best_b = b;
        found = true;
      }
    }
    if (!found) {
      // Dedupe group vectors; if every label has a single cluster left, the
      // budget is unreachable and we stop at the smallest synopsis.
      bool any_pair = false;
      for (auto& label : mergeable_labels) {
        std::vector<uint32_t>& group = by_label[label];
        std::vector<uint32_t> canon;
        for (uint32_t id : group) canon.push_back(uf.Find(id));
        std::sort(canon.begin(), canon.end());
        canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
        group = std::move(canon);
        if (group.size() >= 2) any_pair = true;
      }
      mergeable_labels.erase(
          std::remove_if(mergeable_labels.begin(), mergeable_labels.end(),
                         [&](LabelId l) { return by_label[l].size() < 2; }),
          mergeable_labels.end());
      if (!any_pair) break;
      continue;
    }

    // Merge best_b into best_a.
    CanonicalizeKeys(aggs[best_a], uf);
    CanonicalizeKeys(aggs[best_b], uf);
    uf.Union(best_a, best_b);
    aggs[best_a].size += aggs[best_b].size;
    for (const auto& [key, value] : aggs[best_b].child_totals) {
      aggs[best_a].child_totals[uf.Find(key)] += value;
    }
    aggs[best_b].alive = false;
    aggs[best_b].child_totals.clear();
    ++merges;
    ++merges_since_recount;
    // Exact byte accounting is O(clusters); amortize it, but recount often
    // enough that we stop close to (not far below) the budget.
    if (merges_since_recount >= 8) {
      current_bytes = memory_bytes();
      merges_since_recount = 0;
    } else {
      current_bytes -= 12;  // lower bound on savings (one cluster gone)
    }
  }
  current_bytes = memory_bytes();

  // ---- Phase 4: compact into the final synopsis. --------------------------
  TreeSketch sketch;
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t i = 0; i < num_clusters; ++i) {
    if (!aggs[i].alive || uf.Find(i) != i) continue;
    dense.emplace(i, static_cast<uint32_t>(sketch.cluster_label_.size()));
    sketch.cluster_label_.push_back(aggs[i].label);
    sketch.cluster_size_.push_back(aggs[i].size);
  }
  sketch.out_edges_.resize(sketch.cluster_label_.size());
  for (uint32_t i = 0; i < num_clusters; ++i) {
    if (!aggs[i].alive || uf.Find(i) != i) continue;
    CanonicalizeKeys(aggs[i], uf);
    uint32_t src = dense.at(i);
    for (const auto& [key, total] : aggs[i].child_totals) {
      uint32_t dst = dense.at(uf.Find(key));
      sketch.out_edges_[src][dst] = static_cast<double>(total) /
                                    static_cast<double>(aggs[i].size);
    }
  }
  for (uint32_t c = 0; c < sketch.cluster_label_.size(); ++c) {
    sketch.clusters_by_label_[sketch.cluster_label_[c]].push_back(c);
  }

  if (stats) {
    stats->build_seconds = timer.ElapsedSeconds();
    stats->initial_stable_clusters = initial_clusters;
    stats->clusters = sketch.NumClusters();
    stats->edges = sketch.NumEdges();
    stats->bytes = sketch.MemoryBytes();
    stats->merges_performed = merges;
  }
  return sketch;
}

size_t TreeSketch::NumEdges() const {
  size_t edges = 0;
  for (const auto& adjacency : out_edges_) edges += adjacency.size();
  return edges;
}

size_t TreeSketch::MemoryBytes() const {
  return NumClusters() * 12 + NumEdges() * 16;
}

Result<double> TreeSketch::EstimateCount(const Twig& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("EstimateCount: empty query");
  }
  // Bottom-up DP over (query node, cluster): value[q][u] is the expected
  // number of matches of the query subtree at q per document node of
  // cluster u (with q mapped into u).
  const size_t clusters = NumClusters();
  std::vector<std::vector<double>> value(static_cast<size_t>(query.size()),
                                         std::vector<double>(clusters, 0.0));
  std::vector<int> preorder = query.PreorderNodes();
  for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
    int q = *it;
    auto group = clusters_by_label_.find(query.label(q));
    if (group == clusters_by_label_.end()) return 0.0;
    for (uint32_t u : group->second) {
      double product = 1.0;
      const auto& adjacency = out_edges_[u];
      for (int qc : query.children(q)) {
        auto child_group = clusters_by_label_.find(query.label(qc));
        if (child_group == clusters_by_label_.end()) return 0.0;
        double sum = 0.0;
        for (uint32_t w : child_group->second) {
          auto edge = adjacency.find(w);
          if (edge == adjacency.end()) continue;
          sum += edge->second * value[static_cast<size_t>(qc)][w];
        }
        if (sum == 0.0) {
          product = 0.0;
          break;
        }
        product *= sum;
      }
      value[static_cast<size_t>(q)][u] = product;
    }
  }
  auto root_group = clusters_by_label_.find(query.label(query.root()));
  double total = 0.0;
  for (uint32_t u : root_group->second) {
    total += static_cast<double>(cluster_size_[u]) *
             value[static_cast<size_t>(query.root())][u];
  }
  return total;
}

}  // namespace treelattice
