#ifndef TREELATTICE_TREESKETCH_TREE_SKETCH_H_
#define TREELATTICE_TREESKETCH_TREE_SKETCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/estimator.h"
#include "twig/twig.h"
#include "util/result.h"
#include "util/rng.h"
#include "xml/document.h"

namespace treelattice {

/// Options for TreeSketch synopsis construction.
struct TreeSketchOptions {
  /// Target synopsis footprint in bytes (the paper uses 50 KB). Clustering
  /// granularity — and thus accuracy — degrades as the budget shrinks.
  size_t memory_budget_bytes = 50 * 1024;

  /// Number of candidate same-label cluster pairs evaluated per greedy
  /// merge step. 0 (the default) evaluates *every* same-label pair each
  /// step, as the original bottom-up clustering does — quadratically
  /// expensive, which is precisely the construction-cost behaviour the
  /// paper's Table 3 measures. Set a positive sample size for a fast
  /// approximate build.
  size_t merge_candidates_per_step = 0;

  /// Seed for candidate-pair sampling; fixed for reproducibility.
  uint64_t seed = 0x7ee5e7c5ULL;
};

/// Build statistics (Table 3 inputs).
struct TreeSketchStats {
  double build_seconds = 0.0;
  size_t initial_stable_clusters = 0;  ///< before budget-driven merging
  size_t clusters = 0;
  size_t edges = 0;
  size_t bytes = 0;
  size_t merges_performed = 0;
};

/// Re-implementation of the TreeSketches graph synopsis (Polyzotis,
/// Garofalakis & Ioannidis, SIGMOD 2004), the paper's baseline.
///
/// Construction first computes the *count-stable* partition of document
/// nodes (iterated refinement of the label partition by per-child-cluster
/// child counts — a perfect synopsis), then greedily merges same-label
/// clusters until the byte budget is met, following the original bottom-up
/// clustering formulation. Each synopsis edge (u, w) carries the average
/// number of w-children per node of u; a twig estimate multiplies the root
/// cluster cardinality by edge weights along the query, summing over all
/// consistent cluster assignments. Section 5.3 of the reproduced paper
/// explains why this multiplicative scheme compounds error when child
/// counts have high variance — behaviour this implementation preserves.
class TreeSketch {
 public:
  /// An empty synopsis (estimates everything as 0); assign from Build().
  TreeSketch() = default;

  /// Builds the synopsis for `doc`.
  static Result<TreeSketch> Build(const Document& doc,
                                  const TreeSketchOptions& options = {},
                                  TreeSketchStats* stats = nullptr);

  /// Estimated number of matches of `query`.
  Result<double> EstimateCount(const Twig& query) const;

  size_t NumClusters() const { return cluster_label_.size(); }
  size_t NumEdges() const;

  /// Synopsis footprint: 12 bytes per cluster (label + cardinality) plus
  /// 16 bytes per weighted edge.
  size_t MemoryBytes() const;

 private:
  std::vector<LabelId> cluster_label_;
  std::vector<uint64_t> cluster_size_;
  /// Edge weights: avg children of cluster `child` per node of `parent`.
  std::vector<std::unordered_map<uint32_t, double>> out_edges_;
  /// Clusters per label, for query anchoring.
  std::unordered_map<LabelId, std::vector<uint32_t>> clusters_by_label_;
};

/// Adapter exposing TreeSketch through the SelectivityEstimator interface.
class TreeSketchEstimator : public SelectivityEstimator {
 public:
  /// The sketch must outlive the estimator.
  explicit TreeSketchEstimator(const TreeSketch* sketch) : sketch_(sketch) {}

  Result<double> Estimate(const Twig& query) override {
    return sketch_->EstimateCount(query);
  }

  std::string name() const override { return "treesketches"; }

 private:
  const TreeSketch* sketch_;
};

}  // namespace treelattice

#endif  // TREELATTICE_TREESKETCH_TREE_SKETCH_H_
