#ifndef TREELATTICE_CORE_DEGRADING_ESTIMATOR_H_
#define TREELATTICE_CORE_DEGRADING_ESTIMATOR_H_

#include <string>
#include <string_view>

#include "core/estimator.h"

#include "util/analysis_annotations.h"
#include "core/fixed_size_estimator.h"
#include "core/markov_path_estimator.h"
#include "core/recursive_estimator.h"
#include "summary/lattice_summary.h"

namespace treelattice {

/// The degradation ladder: a best-effort estimator that always tries to
/// return *something* within the caller's budget.
///
///   rung 0  recursive (optionally voting) decomposition — the accurate,
///           potentially expensive primary (Fig. 4)
///   rung 1  fixed-size decomposition — the paper's cheap bounded-cost
///           estimator (Lemmas 2-3), run with a fresh grace budget
///   rung 2  markov-path — path queries only; strictly linear work, run
///           ungoverned as the unconditional floor of the ladder
///
/// When the primary trips its budget (kDeadlineExceeded or
/// kResourceExhausted) the ladder records estimator.deadline_exceeded,
/// steps down a rung with a grace budget of half the original deadline
/// (so a request with deadline D completes within ~2x D even when every
/// governed rung runs to its limit), and records estimator.degraded when
/// a fallback rung produces the answer. kCancelled is not degraded — a
/// cancelled request wants no answer at all — and non-budget errors
/// propagate unchanged.
class DegradingEstimator : public SelectivityEstimator {
 public:
  /// Which rung of the ladder produced an answer.
  enum class Rung { kPrimary = 0, kFixedSize = 1, kMarkovPath = 2 };

  /// Stable rung name used in serve responses and reports:
  /// "primary", "fixed-size", or "markov-path".
  static std::string_view RungName(Rung rung);

  struct Options {
    /// Primary-rung configuration; voting on by default since the ladder
    /// exists precisely to make the expensive estimator safe to prefer.
    RecursiveDecompositionEstimator::Options primary{
        /*voting=*/true, /*max_votes_per_level=*/0,
        RecursiveDecompositionEstimator::VoteAggregation::kMean};
    FixedSizeDecompositionEstimator::Options fixed_size;
    MarkovPathEstimator::Options markov;
    /// Fraction of the original deadline granted afresh to each fallback
    /// rung. 0.5 bounds the whole ladder at ~2x the deadline.
    double fallback_deadline_fraction = 0.5;
  };

  /// An estimate annotated with how it was obtained.
  struct DegradedEstimate {
    double estimate = 0.0;
    Rung rung = Rung::kPrimary;
    /// True when a fallback rung answered.
    bool degraded = false;
    /// Why the primary rung gave up (OK when !degraded).
    Status primary_status;
  };

  /// The summary must outlive the estimator.
  explicit DegradingEstimator(const LatticeSummary* summary);
  DegradingEstimator(const LatticeSummary* summary, Options options);

  /// Ungoverned estimation: the primary rung, run to completion.
  TL_HOT Result<double> Estimate(const Twig& query) override;

  /// Governed estimation through the ladder; returns the estimate alone.
  TL_HOT Result<double> Estimate(const Twig& query,
                                 const EstimateOptions& options) override;

  /// Governed estimation reporting which rung answered.
  Result<DegradedEstimate> EstimateDegraded(const Twig& query,
                                            const EstimateOptions& options);

  std::string name() const override {
    return "degrading(" + primary_.name() + ")";
  }

 private:
  /// Budget for a fallback rung: a fresh deadline of
  /// fallback_deadline_fraction x the original duration (when known) and a
  /// fresh step budget; the cancel token is carried through unchanged.
  EstimateOptions FallbackBudget(const EstimateOptions& original) const;

  Options options_;
  RecursiveDecompositionEstimator primary_;
  FixedSizeDecompositionEstimator fixed_size_;
  MarkovPathEstimator markov_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_DEGRADING_ESTIMATOR_H_
