#ifndef TREELATTICE_CORE_ESTIMATE_SCRATCH_H_
#define TREELATTICE_CORE_ESTIMATE_SCRATCH_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "twig/decompose.h"
#include "util/analysis_annotations.h"

namespace treelattice {

/// Flat open-addressing memo from (canonical-code hash, code) to a memoized
/// estimate. Codes are copied into one contiguous arena so the memo owns no
/// per-entry strings; the full code is always verified on a hash hit, so a
/// 64-bit collision can never silently return the wrong sub-twig's estimate
/// (the "bit-for-bit unchanged" contract of the hot-path rewrite).
///
/// The memo never erases; Reset() drops all entries while keeping every
/// buffer's capacity, so a warm memo allocates nothing across queries.
class CodeMemo {
 public:
  /// Empties the memo and sizes the slot table for `expected_entries`.
  void Reset(size_t expected_entries);

  /// Pointer to the memoized value for (hash, code), or nullptr. The
  /// pointer is invalidated by the next Insert.
  TL_HOT const double* Find(uint64_t hash, std::string_view code) const;

  /// Memoizes (hash, code) -> value. Keeps the existing value if the key
  /// is already present (emplace semantics). `hash` must equal
  /// HashBytes(code).
  // Amortized growth only: a warm memo appends into retained arena/slot
  // capacity and re-enters the allocator just while the tables are still
  // growing toward their steady-state size.
  TL_ALLOC_OK void Insert(uint64_t hash, std::string_view code, double value);

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t hash = 0;
    size_t offset = 0;  ///< into arena_
    size_t length = 0;
    double value = 0.0;
  };
  /// Slot of the probe table; index_plus_one == 0 marks an empty slot.
  struct Slot {
    uint64_t hash = 0;
    uint32_t index_plus_one = 0;
  };

  std::string_view CodeOf(const Entry& entry) const {
    return std::string_view(arena_).substr(entry.offset, entry.length);
  }

  /// Doubles the slot table and reinserts all entries (no code compares
  /// needed: stored entries are distinct by construction).
  void Grow();

  std::vector<Entry> entries_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::string arena_;
};

/// Reusable buffers for one recursion level of the voting decomposition:
/// the removable-node list, one pre-built split per valid leaf pair, and
/// the vote accumulator. Twigs inside `splits` are Clear()ed and refilled
/// in place, so a warm workspace performs a whole level without touching
/// the allocator.
struct DepthWorkspace {
  std::vector<int> removable;
  std::vector<RecursiveSplit> splits;
  size_t num_valid = 0;  ///< prefix of `splits` filled for the current twig
  std::vector<double> votes;
  std::vector<int> map_scratch;
};

/// Per-thread reusable state for one estimation call chain: the sub-twig
/// memo plus one workspace per recursion depth. Thread through
/// EstimateOptions::scratch to reuse across requests (a serve worker keeps
/// one for its lifetime); estimators fall back to an internal thread_local
/// instance when none is supplied, so ungoverned callers stay
/// allocation-free too. Not thread-safe: one scratch per thread.
///
/// Batch mode (DESIGN.md §14): BeginBatch() resets the memo once for a
/// whole batch of queries and makes subsequent BeginQuery() calls keep it,
/// so distinct queries share every sub-twig estimate. This is sound because
/// memo entries are inserted only after a sub-twig's estimate is fully
/// computed — each entry equals the deterministic pure-function value of
/// its code for the fixed (summary, options), independent of which query
/// put it there — so batch results stay bit-identical to sequential runs.
class EstimateScratch {
 public:
  /// Resets the memo for a fresh query of `query_size` nodes. Depth
  /// workspaces need no reset — each level overwrites its own prefix.
  /// In batch mode the memo is retained instead (see BeginBatch).
  // Amortized: Reset keeps every buffer's capacity (see CodeMemo).
  TL_ALLOC_OK void BeginQuery(int query_size);

  /// Enters batch mode: resets the memo once, sized for
  /// `expected_entries`, and suppresses per-query memo resets until
  /// EndBatch(). Calls do not nest.
  // Amortized: one Reset per batch into retained capacity.
  TL_ALLOC_OK void BeginBatch(size_t expected_entries);

  /// Leaves batch mode; the next BeginQuery resets the memo again.
  void EndBatch() { in_batch_ = false; }

  bool in_batch() const { return in_batch_; }

  CodeMemo& memo() { return memo_; }

  /// Workspace for recursion depth `depth`, created on first use. A deque
  /// keeps references stable while deeper levels extend it mid-recursion.
  // Amortized: workspaces are created once per depth and then reused.
  TL_ALLOC_OK DepthWorkspace& Depth(int depth);

 private:
  CodeMemo memo_;
  std::deque<DepthWorkspace> depths_;
  bool in_batch_ = false;
};

/// RAII batch-mode guard: BeginBatch on construction, EndBatch on every
/// exit path (including budget-trip early returns).
class ScopedBatchScratch {
 public:
  ScopedBatchScratch(EstimateScratch* scratch, size_t expected_entries)
      : scratch_(scratch) {
    scratch_->BeginBatch(expected_entries);
  }
  ~ScopedBatchScratch() { scratch_->EndBatch(); }
  ScopedBatchScratch(const ScopedBatchScratch&) = delete;
  ScopedBatchScratch& operator=(const ScopedBatchScratch&) = delete;

 private:
  EstimateScratch* scratch_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_ESTIMATE_SCRATCH_H_
