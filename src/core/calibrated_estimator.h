#ifndef TREELATTICE_CORE_CALIBRATED_ESTIMATOR_H_
#define TREELATTICE_CORE_CALIBRATED_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "summary/lattice_summary.h"
#include "xml/document.h"

namespace treelattice {

/// An estimate annotated with an empirical error interval.
struct BoundedEstimate {
  double estimate = 0.0;
  double lower = 0.0;   ///< estimate / factor
  double upper = 0.0;   ///< estimate * factor
  double factor = 1.0;  ///< calibrated multiplicative error bound
};

/// Empirical error bounds for a decomposition estimator — the "error bound
/// associated with the estimation" that Section 6 of the paper lists as
/// future work.
///
/// At construction time the calibrator samples positive queries of each
/// size from the summarized document, compares estimates against exact
/// counts, and records the per-size `confidence`-quantile of the
/// multiplicative error max(est/true, true/est). At query time the bound
/// for the query's size (extrapolated geometrically beyond the calibrated
/// range, since decomposition error compounds per recursion level) widens
/// the point estimate into an interval with approximately `confidence`
/// empirical coverage. Calibration costs one workload evaluation and needs
/// the document only at build time; the calibrated object afterwards works
/// purely from the summary.
class CalibratedEstimator : public SelectivityEstimator {
 public:
  struct Options {
    /// Largest query size to calibrate directly; larger queries use
    /// geometric extrapolation.
    int max_calibrated_size = 8;
    /// Queries sampled per size.
    size_t queries_per_size = 60;
    /// Target one-sided coverage of the interval.
    double confidence = 0.9;
    uint64_t seed = 99;
  };

  /// Calibrates `inner` (which must outlive this object) against `doc`.
  static Result<CalibratedEstimator> Calibrate(const Document& doc,
                                               SelectivityEstimator* inner);
  static Result<CalibratedEstimator> Calibrate(const Document& doc,
                                               SelectivityEstimator* inner,
                                               const Options& options);

  /// Point estimate (delegates to the wrapped estimator).
  Result<double> Estimate(const Twig& query) override;

  /// Governed point estimate: the wrapped estimator runs under `options`'
  /// budget; the calibration lookup itself is O(1).
  Result<double> Estimate(const Twig& query,
                          const EstimateOptions& options) override;

  /// Estimate plus the calibrated error interval.
  Result<BoundedEstimate> EstimateWithBound(const Twig& query);
  Result<BoundedEstimate> EstimateWithBound(const Twig& query,
                                            const EstimateOptions& options);

  /// Calibrated multiplicative bound for a query of `size` nodes.
  double FactorForSize(int size) const;

  std::string name() const override {
    return "calibrated(" + inner_->name() + ")";
  }

 private:
  CalibratedEstimator(SelectivityEstimator* inner,
                      std::vector<double> factor_by_size)
      : inner_(inner), factor_by_size_(std::move(factor_by_size)) {}

  SelectivityEstimator* inner_;
  /// factor_by_size_[s] is the bound for queries of size s (index 0/1
  /// unused, factor 1).
  std::vector<double> factor_by_size_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_CALIBRATED_ESTIMATOR_H_
