#include "core/estimate_scratch.h"

#include <algorithm>

#include "util/hash.h"

namespace treelattice {

namespace {
constexpr size_t kMinSlots = 16;
}  // namespace

void CodeMemo::Reset(size_t expected_entries) {
  entries_.clear();
  arena_.clear();
  // Size the table so `expected_entries` stays under the 0.7 load bound;
  // never shrink — a warm memo keeps its high-water capacity.
  size_t want = kMinSlots;
  while (want * 7 < expected_entries * 10) want <<= 1;
  if (slots_.size() < want) {
    slots_.assign(want, Slot{});
  } else {
    std::fill(slots_.begin(), slots_.end(), Slot{});
  }
  mask_ = slots_.size() - 1;
}

const double* CodeMemo::Find(uint64_t hash, std::string_view code) const {
  if (slots_.empty()) return nullptr;
  size_t idx = static_cast<size_t>(Mix64(hash)) & mask_;
  for (;;) {
    const Slot& slot = slots_[idx];
    if (slot.index_plus_one == 0) return nullptr;
    if (slot.hash == hash) {
      const Entry& entry = entries_[slot.index_plus_one - 1];
      if (CodeOf(entry) == code) return &entry.value;
    }
    idx = (idx + 1) & mask_;
  }
}

void CodeMemo::Insert(uint64_t hash, std::string_view code, double value) {
  if (slots_.empty()) Reset(0);
  if ((entries_.size() + 1) * 10 >= slots_.size() * 7) Grow();
  size_t idx = static_cast<size_t>(Mix64(hash)) & mask_;
  while (slots_[idx].index_plus_one != 0) {
    if (slots_[idx].hash == hash &&
        CodeOf(entries_[slots_[idx].index_plus_one - 1]) == code) {
      return;  // already memoized; keep the first value (emplace semantics)
    }
    idx = (idx + 1) & mask_;
  }
  Entry entry;
  entry.hash = hash;
  entry.offset = arena_.size();
  entry.length = code.size();
  entry.value = value;
  arena_.append(code);
  entries_.push_back(entry);
  slots_[idx] = Slot{hash, static_cast<uint32_t>(entries_.size())};
}

void CodeMemo::Grow() {
  slots_.assign(slots_.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t idx = static_cast<size_t>(Mix64(entries_[i].hash)) & mask_;
    while (slots_[idx].index_plus_one != 0) idx = (idx + 1) & mask_;
    slots_[idx] = Slot{entries_[i].hash, static_cast<uint32_t>(i + 1)};
  }
}

void EstimateScratch::BeginQuery(int query_size) {
  // In batch mode the memo carries over so queries share sub-twig
  // estimates; entries are exact per-code values, so sharing cannot change
  // any result (see the class comment).
  if (in_batch_) return;
  // The voting recursion visits O(size^2) distinct sub-twigs in practice
  // (each level removes one node; each level contributes one memo entry per
  // distinct split piece), so a quadratic reservation avoids regrowth.
  const size_t n = query_size < 1 ? 1 : static_cast<size_t>(query_size);
  memo_.Reset(n * n);
}

void EstimateScratch::BeginBatch(size_t expected_entries) {
  memo_.Reset(expected_entries);
  in_batch_ = true;
}

DepthWorkspace& EstimateScratch::Depth(int depth) {
  while (depths_.size() <= static_cast<size_t>(depth)) depths_.emplace_back();
  return depths_[static_cast<size_t>(depth)];
}

}  // namespace treelattice
