#ifndef TREELATTICE_CORE_EXACT_ESTIMATOR_H_
#define TREELATTICE_CORE_EXACT_ESTIMATOR_H_

#include <string>

#include "core/estimator.h"
#include "match/matcher.h"

namespace treelattice {

/// Ground-truth "estimator": exact counting over the document. Used by the
/// experiment harness to obtain true selectivities, and usable wherever a
/// SelectivityEstimator is expected.
class ExactEstimator : public SelectivityEstimator {
 public:
  /// The document must outlive the estimator.
  explicit ExactEstimator(const Document& doc) : counter_(doc) {}

  Result<double> Estimate(const Twig& query) override {
    if (query.empty()) {
      return Status::InvalidArgument("Estimate: empty query");
    }
    return static_cast<double>(counter_.Count(query));
  }

  std::string name() const override { return "exact"; }

  const MatchCounter& counter() const { return counter_; }

 private:
  MatchCounter counter_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_EXACT_ESTIMATOR_H_
