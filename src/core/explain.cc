#include "core/explain.h"

#include <cstdio>
#include <utility>

#include "twig/decompose.h"

namespace treelattice {

namespace {

Result<std::unique_ptr<ExplainNode>> Trace(const LatticeSummary& summary,
                                           const Twig& twig,
                                           const LabelDict& dict) {
  auto node = std::make_unique<ExplainNode>();
  node->twig_text = twig.ToString(dict);

  if (auto count = summary.LookupCode(twig.CanonicalCode())) {
    node->estimate = static_cast<double>(*count);
    node->from_summary = true;
    return node;
  }
  if (twig.size() <= summary.complete_through_level() || twig.size() < 3) {
    node->estimate = 0.0;
    node->from_summary = true;  // a definitive answer from the summary
    return node;
  }

  std::vector<std::pair<int, int>> pairs = ValidLeafPairs(twig);
  if (pairs.empty()) {
    return Status::Internal("no valid leaf pair for twig of size " +
                            std::to_string(twig.size()));
  }
  RecursiveSplit split;
  TL_ASSIGN_OR_RETURN(split,
                      SplitByLeafPair(twig, pairs[0].first, pairs[0].second));
  std::unique_ptr<ExplainNode> t1, t2, overlap;
  TL_ASSIGN_OR_RETURN(t1, Trace(summary, split.t1, dict));
  TL_ASSIGN_OR_RETURN(t2, Trace(summary, split.t2, dict));
  TL_ASSIGN_OR_RETURN(overlap, Trace(summary, split.overlap, dict));
  if (t1->estimate > 0.0 && t2->estimate > 0.0 && overlap->estimate > 0.0) {
    node->estimate = t1->estimate * t2->estimate / overlap->estimate;
  } else {
    node->estimate = 0.0;
  }
  node->children.push_back(std::move(t1));
  node->children.push_back(std::move(t2));
  node->children.push_back(std::move(overlap));
  return node;
}

void Render(const ExplainNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.twig_text);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s %.6g",
                node.from_summary ? "=" : "~=", node.estimate);
  out->append(buffer);
  if (node.from_summary) {
    out->append("   [summary]");
  } else {
    out->append("   [T1 * T2 / overlap]");
  }
  out->push_back('\n');
  for (const auto& child : node.children) {
    Render(*child, depth + 1, out);
  }
}

}  // namespace

Result<std::unique_ptr<ExplainNode>> ExplainEstimate(
    const LatticeSummary& summary, const Twig& query, const LabelDict& dict) {
  if (query.empty()) {
    return Status::InvalidArgument("ExplainEstimate: empty query");
  }
  return Trace(summary, query, dict);
}

std::string RenderExplain(const ExplainNode& node) {
  std::string out;
  Render(node, 0, &out);
  return out;
}

}  // namespace treelattice
