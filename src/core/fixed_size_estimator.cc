#include "core/fixed_size_estimator.h"

#include "core/estimator_metrics.h"
#include "obs/trace.h"
#include "twig/decompose.h"

namespace treelattice {

FixedSizeDecompositionEstimator::FixedSizeDecompositionEstimator(
    const LatticeSummary* summary)
    : FixedSizeDecompositionEstimator(summary, Options()) {}

FixedSizeDecompositionEstimator::FixedSizeDecompositionEstimator(
    const LatticeSummary* summary, Options options)
    : summary_(summary), options_(options), fallback_(summary) {
  if (options_.k <= 0) options_.k = summary->max_level();
  if (options_.k < 2) options_.k = 2;
}

Result<double> FixedSizeDecompositionEstimator::LookupOrEstimate(
    const Twig& twig, CostGovernor* governor, EstimateScratch* scratch) {
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  if (governor != nullptr) {
    if (Status s = governor->Charge(); !s.ok()) return s;
  }
  if (auto count = summary_->Lookup(twig)) {
    metrics.summary_hits->Increment();
    return static_cast<double>(*count);
  }
  if (twig.size() <= summary_->complete_through_level() || twig.size() < 3) {
    metrics.exhaustive_zeros->Increment();
    return 0.0;
  }
  metrics.summary_misses->Increment();
  // A fresh top-level fallback call per pruned window: the recursive
  // estimator resets the scratch memo itself, preserving the old
  // fresh-memo-per-fallback semantics. A batch-mode scratch must NOT be
  // shared here: its memo holds the batch's primary-rung (possibly voting)
  // values, and this fallback estimator is configured independently, so
  // sharing would mix values from two different estimators under one code
  // key. Falling back to the internal thread_local scratch reproduces the
  // fresh-memo reset exactly (DESIGN.md §14).
  if (scratch != nullptr && scratch->in_batch()) scratch = nullptr;
  return fallback_.EstimateWithGovernor(twig, governor, scratch);
}

Result<double> FixedSizeDecompositionEstimator::Estimate(const Twig& query) {
  return EstimateWithGovernor(query, nullptr, nullptr);
}

Result<double> FixedSizeDecompositionEstimator::Estimate(
    const Twig& query, const EstimateOptions& options) {
  if (!options.governed()) {
    return EstimateWithGovernor(query, nullptr, options.scratch);
  }
  CostGovernor governor = options.MakeGovernor();
  Result<double> result =
      EstimateWithGovernor(query, &governor, options.scratch);
  if (options.work_steps != nullptr) *options.work_steps += governor.steps();
  return result;
}

Result<double> FixedSizeDecompositionEstimator::EstimateWithGovernor(
    const Twig& query, CostGovernor* governor, EstimateScratch* scratch) {
  if (query.empty()) {
    return Status::InvalidArgument("Estimate: empty query");
  }
  obs::TraceSpan span("estimator.fixed", "core");
  span.SetArg("query_size", static_cast<uint64_t>(query.size()));
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  if (governor != nullptr) {
    if (Status s = governor->Charge(); !s.ok()) return s;
  }
  // Directly answerable (or provably absent) queries short-circuit.
  if (auto count = summary_->Lookup(query)) {
    metrics.summary_hits->Increment();
    return static_cast<double>(*count);
  }
  if (query.size() <= summary_->complete_through_level()) {
    metrics.exhaustive_zeros->Increment();
    return 0.0;
  }
  if (query.size() <= options_.k) {
    // Too small to cover with k-subtrees (a pruned pattern): recursive
    // fallback from strictly smaller pieces.
    return LookupOrEstimate(query, governor, scratch);
  }

  std::vector<CoverStep> steps;
  TL_ASSIGN_OR_RETURN(steps, FixedSizeCover(query, options_.k));
  metrics.decompositions->Increment();
  metrics.cover_steps->Record(steps.size());

  double estimate;
  TL_ASSIGN_OR_RETURN(estimate,
                      LookupOrEstimate(steps[0].subtree, governor, scratch));
  if (estimate <= 0.0) return 0.0;
  for (size_t i = 1; i < steps.size(); ++i) {
    double numer, denom;
    TL_ASSIGN_OR_RETURN(numer,
                        LookupOrEstimate(steps[i].subtree, governor, scratch));
    if (numer <= 0.0) return 0.0;
    TL_ASSIGN_OR_RETURN(denom,
                        LookupOrEstimate(steps[i].overlap, governor, scratch));
    if (denom <= 0.0) return 0.0;  // overlap ⊆ subtree, cannot be rarer
    estimate *= numer / denom;
  }
  return estimate;
}

}  // namespace treelattice
