#ifndef TREELATTICE_CORE_BATCH_ESTIMATOR_H_
#define TREELATTICE_CORE_BATCH_ESTIMATOR_H_

#include <span>
#include <string>
#include <vector>

#include "core/estimate_scratch.h"
#include "core/estimator.h"
#include "core/recursive_estimator.h"
#include "summary/lattice_summary.h"
#include "util/analysis_annotations.h"
#include "util/arena.h"

namespace treelattice {

/// Per-query outcome of a batch estimation. `estimate` is meaningful only
/// when `status` is OK.
struct EstimateResult {
  Status status;
  double estimate = 0.0;
};

/// Batched front end to the recursive decomposition estimator
/// (DESIGN.md §14). A batch of twig queries is estimated in four stages:
///
///   1. canonicalize every query up front (one CanonicalCode/Hash each);
///   2. dedup identical queries through an arena-backed flat table keyed
///      by the 64-bit canonical-code hash (full-code verified), so each
///      distinct query is estimated exactly once;
///   3. answer summary-resident and provably-zero distinct queries with one
///      grouped LatticeSummary::LookupBatch pass (slot-sorted, prefetched,
///      hash-lane compared), seeding the memo with the exact counts;
///   4. run the recursive estimator over the remaining distinct queries
///      with one batch-scoped memo (EstimateScratch::BeginBatch), so a
///      basic twig shared by several queries is probed and voted once.
///
/// Every intermediate (dedup table, probe keys, result staging) is carved
/// from a MonotonicArena that resets in O(1) per batch. Because memo
/// entries are exact per-code values inserted only after full computation,
/// batch results are bit-identical to estimating each query sequentially
/// with a fresh memo (the equality gate in bench_ext_batch asserts this).
///
/// Governed batches share one CostGovernor: the deadline and step budget
/// cover the whole batch, and queries after a budget trip report the trip
/// status. Not thread-safe: one BatchEstimator per thread.
class BatchEstimator {
 public:
  /// The summary must outlive the estimator.
  explicit BatchEstimator(const LatticeSummary* summary);
  BatchEstimator(const LatticeSummary* summary,
                 RecursiveDecompositionEstimator::Options options);

  /// Estimates queries[i] into results[i]. `results` must have the same
  /// length as `queries`; per-query failures land in results[i].status.
  /// options.deadline / max_work_steps / cancel govern the whole batch;
  /// options.scratch, when provided, supplies the shared memo (otherwise
  /// an internal scratch is used).
  TL_HOT Status EstimateBatch(std::span<const Twig> queries,
                              const EstimateOptions& options,
                              std::span<EstimateResult> results);

  std::string name() const { return "batch+" + estimator_.name(); }

 private:
  /// Status staging for the distinct queries of one batch (Status owns a
  /// string, so it cannot live in the arena). Capacity is retained across
  /// batches.
  // Amortized: assign() reuses capacity once it reaches the largest batch.
  TL_ALLOC_OK Status* StageStatuses(size_t n);

  const LatticeSummary* summary_;
  RecursiveDecompositionEstimator estimator_;
  MonotonicArena arena_;
  EstimateScratch scratch_;
  std::vector<Status> status_staging_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_BATCH_ESTIMATOR_H_
