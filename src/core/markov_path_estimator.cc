#include "core/markov_path_estimator.h"

namespace treelattice {

MarkovPathEstimator::MarkovPathEstimator(const LatticeSummary* summary)
    : MarkovPathEstimator(summary, Options()) {}

MarkovPathEstimator::MarkovPathEstimator(const LatticeSummary* summary,
                                         Options options)
    : summary_(summary), options_(options) {
  if (options_.order <= 0) options_.order = summary->max_level();
  if (options_.order < 2) options_.order = 2;
}

double MarkovPathEstimator::WindowCount(const std::vector<LabelId>& labels,
                                        size_t begin, size_t len) const {
  Twig window;
  int parent = -1;
  for (size_t i = 0; i < len; ++i) {
    parent = window.AddNode(labels[begin + i], parent);
  }
  auto count = summary_->Lookup(window);
  return count ? static_cast<double>(*count) : 0.0;
}

Result<double> MarkovPathEstimator::Estimate(const Twig& query) {
  return EstimateWithGovernor(query, nullptr);
}

Result<double> MarkovPathEstimator::Estimate(const Twig& query,
                                             const EstimateOptions& options) {
  if (!options.governed()) return EstimateWithGovernor(query, nullptr);
  CostGovernor governor = options.MakeGovernor();
  Result<double> result = EstimateWithGovernor(query, &governor);
  if (options.work_steps != nullptr) *options.work_steps += governor.steps();
  return result;
}

Result<double> MarkovPathEstimator::EstimateWithGovernor(
    const Twig& query, CostGovernor* governor) {
  if (query.empty()) {
    return Status::InvalidArgument("Estimate: empty query");
  }
  if (!query.IsPath()) {
    return Status::InvalidArgument(
        "MarkovPathEstimator only supports path queries");
  }
  // Label sequence root -> leaf.
  std::vector<LabelId> labels;
  labels.reserve(static_cast<size_t>(query.size()));
  int node = query.root();
  while (true) {
    labels.push_back(query.label(node));
    if (query.children(node).empty()) break;
    node = query.children(node)[0];
  }

  const size_t n = labels.size();
  const size_t m = static_cast<size_t>(options_.order);
  if (n <= m) {
    return WindowCount(labels, 0, n);
  }
  double estimate = WindowCount(labels, 0, m);
  if (estimate <= 0.0) return 0.0;
  for (size_t i = 1; i + m <= n; ++i) {
    if (governor != nullptr) {
      if (Status s = governor->Charge(); !s.ok()) return s;
    }
    double numer = WindowCount(labels, i, m);
    if (numer <= 0.0) return 0.0;
    double denom = WindowCount(labels, i, m - 1);
    if (denom <= 0.0) return 0.0;
    estimate *= numer / denom;
  }
  return estimate;
}

}  // namespace treelattice
