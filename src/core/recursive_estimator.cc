#include "core/recursive_estimator.h"

#include <algorithm>

#include "core/estimator_metrics.h"
#include "obs/trace.h"
#include "twig/decompose.h"

namespace treelattice {

namespace {

/// Fallback scratch for callers that do not supply one (ungoverned
/// Estimate(), CLI paths, tests). One per thread: estimation never runs
/// re-entrantly on a thread — nested work (fixed-size fallback) issues
/// sequential top-level calls, each of which resets the memo.
EstimateScratch& ThreadLocalScratch() {
  thread_local EstimateScratch scratch;
  return scratch;
}

}  // namespace

RecursiveDecompositionEstimator::RecursiveDecompositionEstimator(
    const LatticeSummary* summary)
    : RecursiveDecompositionEstimator(summary, Options()) {}

RecursiveDecompositionEstimator::RecursiveDecompositionEstimator(
    const LatticeSummary* summary, Options options)
    : summary_(summary), options_(options) {}

Result<double> RecursiveDecompositionEstimator::Estimate(const Twig& query) {
  return EstimateWithGovernor(query, nullptr, nullptr);
}

Result<double> RecursiveDecompositionEstimator::Estimate(
    const Twig& query, const EstimateOptions& options) {
  if (!options.governed()) {
    return EstimateWithGovernor(query, nullptr, options.scratch);
  }
  CostGovernor governor = options.MakeGovernor();
  Result<double> result =
      EstimateWithGovernor(query, &governor, options.scratch);
  if (options.work_steps != nullptr) *options.work_steps += governor.steps();
  return result;
}

Result<double> RecursiveDecompositionEstimator::EstimateWithGovernor(
    const Twig& query, CostGovernor* governor) {
  return EstimateWithGovernor(query, governor, nullptr);
}

Result<double> RecursiveDecompositionEstimator::EstimateWithGovernor(
    const Twig& query, CostGovernor* governor, EstimateScratch* scratch) {
  if (query.empty()) {
    return Status::InvalidArgument("Estimate: empty query");
  }
  obs::TraceSpan span("estimator.recursive", "core");
  span.SetArg("query_size", static_cast<uint64_t>(query.size()));
  if (scratch == nullptr) scratch = &ThreadLocalScratch();
  scratch->BeginQuery(query.size());
  int max_depth = 0;
  Result<double> result = EstimateImpl(query, scratch, 0, &max_depth, governor);
  if (result.ok()) {
    EstimatorMetrics::Get().decomposition_depth->Record(
        static_cast<uint64_t>(max_depth));
  }
  return result;
}

Result<double> RecursiveDecompositionEstimator::EstimateImpl(
    const Twig& twig, EstimateScratch* scratch, int depth, int* max_depth,
    CostGovernor* governor) {
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  if (governor != nullptr) {
    // One step per sub-twig visit: the memo probe plus summary lookup (and
    // possibly a split) below.
    if (Status s = governor->Charge(); !s.ok()) return s;
  }
  if (depth > *max_depth) *max_depth = depth;
  const uint64_t hash = twig.CanonicalHash();
  const std::string& code = twig.CanonicalCode();
  if (const double* hit = scratch->memo().Find(hash, code)) {
    metrics.memo_hits->Increment();
    return *hit;
  }

  double value = 0.0;
  if (auto count = summary_->LookupHashed(hash, code)) {
    metrics.summary_hits->Increment();
    value = static_cast<double>(*count);
  } else if (twig.size() <= summary_->complete_through_level()) {
    // The summary is exhaustive at this size: the pattern does not occur.
    metrics.exhaustive_zeros->Increment();
    value = 0.0;
  } else if (twig.size() < 3) {
    // Sizes 1-2 are always retained by construction and pruning; a miss
    // means zero occurrences even in a pruned summary.
    metrics.exhaustive_zeros->Increment();
    value = 0.0;
  } else {
    metrics.summary_misses->Increment();
    // Build every valid leaf-pair split once, in the same deterministic
    // (preorder index) pair order ValidLeafPairs used — the splits double
    // as the validity check, so the old validate-then-resplit double work
    // is gone and each split's twigs refill this depth's pooled buffers.
    DepthWorkspace& ws = scratch->Depth(depth);
    twig.RemovableNodesInto(&ws.removable);
    ws.num_valid = 0;
    for (size_t a = 0; a < ws.removable.size(); ++a) {
      for (size_t b = a + 1; b < ws.removable.size(); ++b) {
        // tl-analyze: allow(hot-alloc) -- amortized: the pooled split
        // buffer grows to the query's fanout once, then is refilled
        if (ws.splits.size() <= ws.num_valid) ws.splits.emplace_back();
        Status split_status =
            SplitByLeafPairInto(twig, ws.removable[a], ws.removable[b],
                                &ws.splits[ws.num_valid], &ws.map_scratch);
        if (split_status.ok()) ++ws.num_valid;
      }
    }
    if (ws.num_valid == 0) {
      return Status::Internal("no valid leaf pair for twig of size " +
                              std::to_string(twig.size()));
    }
    size_t limit = 1;
    if (options_.voting) {
      limit = ws.num_valid;
      if (options_.max_votes_per_level > 0) {
        limit = std::min(limit,
                         static_cast<size_t>(options_.max_votes_per_level));
      }
    }
    metrics.decompositions->Increment();
    metrics.voting_fanout->Record(limit);
    ws.votes.clear();
    for (size_t i = 0; i < limit; ++i) {
      // The deeper recursion uses workspaces > depth, never this one, so
      // the split twigs stay valid across the three calls.
      RecursiveSplit& split = ws.splits[i];
      double e1, e2, eo;
      TL_ASSIGN_OR_RETURN(e1, EstimateImpl(split.t1, scratch, depth + 1,
                                           max_depth, governor));
      TL_ASSIGN_OR_RETURN(e2, EstimateImpl(split.t2, scratch, depth + 1,
                                           max_depth, governor));
      TL_ASSIGN_OR_RETURN(eo, EstimateImpl(split.overlap, scratch, depth + 1,
                                           max_depth, governor));
      double est = 0.0;
      if (e1 > 0.0 && e2 > 0.0 && eo > 0.0) {
        est = e1 * e2 / eo;
      } else {
        metrics.zero_overlap_fallbacks->Increment();
      }
      // tl-analyze: allow(hot-alloc) -- amortized: pooled vote buffer,
      // capacity retained across queries
      ws.votes.push_back(est);
    }
    if (ws.votes.empty()) {
      value = 0.0;
    } else if (options_.aggregation == VoteAggregation::kMedian &&
               options_.voting) {
      std::sort(ws.votes.begin(), ws.votes.end());
      size_t mid = ws.votes.size() / 2;
      value = (ws.votes.size() % 2 == 1)
                  ? ws.votes[mid]
                  : 0.5 * (ws.votes[mid - 1] + ws.votes[mid]);
    } else {
      double sum = 0.0;
      for (double v : ws.votes) sum += v;
      value = sum / static_cast<double>(ws.votes.size());
    }
  }
  scratch->memo().Insert(hash, code, value);
  return value;
}

}  // namespace treelattice
