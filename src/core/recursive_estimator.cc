#include "core/recursive_estimator.h"

#include <algorithm>

#include "core/estimator_metrics.h"
#include "obs/trace.h"
#include "twig/decompose.h"

namespace treelattice {

RecursiveDecompositionEstimator::RecursiveDecompositionEstimator(
    const LatticeSummary* summary)
    : RecursiveDecompositionEstimator(summary, Options()) {}

RecursiveDecompositionEstimator::RecursiveDecompositionEstimator(
    const LatticeSummary* summary, Options options)
    : summary_(summary), options_(options) {}

Result<double> RecursiveDecompositionEstimator::Estimate(const Twig& query) {
  return EstimateWithGovernor(query, nullptr);
}

Result<double> RecursiveDecompositionEstimator::Estimate(
    const Twig& query, const EstimateOptions& options) {
  if (!options.governed()) return EstimateWithGovernor(query, nullptr);
  CostGovernor governor = options.MakeGovernor();
  return EstimateWithGovernor(query, &governor);
}

Result<double> RecursiveDecompositionEstimator::EstimateWithGovernor(
    const Twig& query, CostGovernor* governor) {
  if (query.empty()) {
    return Status::InvalidArgument("Estimate: empty query");
  }
  obs::TraceSpan span("estimator.recursive", "core");
  span.SetArg("query_size", static_cast<uint64_t>(query.size()));
  std::unordered_map<std::string, double> memo;
  int max_depth = 0;
  Result<double> result = EstimateImpl(query, &memo, 0, &max_depth, governor);
  if (result.ok()) {
    EstimatorMetrics::Get().decomposition_depth->Record(
        static_cast<uint64_t>(max_depth));
  }
  return result;
}

Result<double> RecursiveDecompositionEstimator::EstimateImpl(
    const Twig& twig, std::unordered_map<std::string, double>* memo,
    int depth, int* max_depth, CostGovernor* governor) {
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  if (governor != nullptr) {
    // One step per sub-twig visit: the memo probe plus summary lookup (and
    // possibly a split) below.
    if (Status s = governor->Charge(); !s.ok()) return s;
  }
  if (depth > *max_depth) *max_depth = depth;
  const std::string code = twig.CanonicalCode();
  if (auto it = memo->find(code); it != memo->end()) {
    metrics.memo_hits->Increment();
    return it->second;
  }

  double value = 0.0;
  if (auto count = summary_->LookupCode(code)) {
    metrics.summary_hits->Increment();
    value = static_cast<double>(*count);
  } else if (twig.size() <= summary_->complete_through_level()) {
    // The summary is exhaustive at this size: the pattern does not occur.
    metrics.exhaustive_zeros->Increment();
    value = 0.0;
  } else if (twig.size() < 3) {
    // Sizes 1-2 are always retained by construction and pruning; a miss
    // means zero occurrences even in a pruned summary.
    metrics.exhaustive_zeros->Increment();
    value = 0.0;
  } else {
    metrics.summary_misses->Increment();
    std::vector<std::pair<int, int>> pairs = ValidLeafPairs(twig);
    if (pairs.empty()) {
      return Status::Internal("no valid leaf pair for twig of size " +
                              std::to_string(twig.size()));
    }
    size_t limit = 1;
    if (options_.voting) {
      limit = pairs.size();
      if (options_.max_votes_per_level > 0) {
        limit = std::min(limit,
                         static_cast<size_t>(options_.max_votes_per_level));
      }
    }
    metrics.decompositions->Increment();
    metrics.voting_fanout->Record(limit);
    std::vector<double> votes;
    votes.reserve(limit);
    for (size_t i = 0; i < limit; ++i) {
      RecursiveSplit split;
      TL_ASSIGN_OR_RETURN(split, SplitByLeafPair(twig, pairs[i].first,
                                                 pairs[i].second));
      double e1, e2, eo;
      TL_ASSIGN_OR_RETURN(e1, EstimateImpl(split.t1, memo, depth + 1,
                                           max_depth, governor));
      TL_ASSIGN_OR_RETURN(e2, EstimateImpl(split.t2, memo, depth + 1,
                                           max_depth, governor));
      TL_ASSIGN_OR_RETURN(eo, EstimateImpl(split.overlap, memo, depth + 1,
                                           max_depth, governor));
      double est = 0.0;
      if (e1 > 0.0 && e2 > 0.0 && eo > 0.0) {
        est = e1 * e2 / eo;
      } else {
        metrics.zero_overlap_fallbacks->Increment();
      }
      votes.push_back(est);
    }
    if (votes.empty()) {
      value = 0.0;
    } else if (options_.aggregation == VoteAggregation::kMedian &&
               options_.voting) {
      std::sort(votes.begin(), votes.end());
      size_t mid = votes.size() / 2;
      value = (votes.size() % 2 == 1)
                  ? votes[mid]
                  : 0.5 * (votes[mid - 1] + votes[mid]);
    } else {
      double sum = 0.0;
      for (double v : votes) sum += v;
      value = sum / static_cast<double>(votes.size());
    }
  }
  memo->emplace(code, value);
  return value;
}

}  // namespace treelattice
