#ifndef TREELATTICE_CORE_RECURSIVE_ESTIMATOR_H_
#define TREELATTICE_CORE_RECURSIVE_ESTIMATOR_H_

#include <string>

#include "core/estimate_scratch.h"

#include "util/analysis_annotations.h"
#include "core/estimator.h"
#include "summary/lattice_summary.h"

namespace treelattice {

/// The recursive decomposition estimator (Section 3.2, Fig. 4).
///
/// A query found in the lattice summary is answered exactly. Otherwise a
/// pair of degree-1 nodes (u, v) is removed to form T1 = T \ v, T2 = T \ u
/// and their overlap T \ {u, v}, and by Lemma 1
///   s(T) ≈ s(T1) * s(T2) / s(T∩),
/// recursing until the pieces are inside the summary. With voting enabled
/// (the paper's extension) every valid leaf pair contributes an estimate at
/// each recursion level and the average is used; estimates are memoized per
/// distinct sub-twig, which makes the voting scheme equivalent to the
/// paper's level-wise averaging while keeping the recursion polynomial.
///
/// The inner loop runs over an EstimateScratch (flat hash memo keyed by the
/// twig's cached 64-bit code hash, per-depth split buffers refilled in
/// place) and the summary's hashed probe, so after the query's one-time
/// canonicalization a warm-scratch estimate performs no heap allocation.
class RecursiveDecompositionEstimator : public SelectivityEstimator {
 public:
  /// How per-level vote estimates are combined (the paper averages;
  /// median is the robust-aggregation extension it lists as future work).
  enum class VoteAggregation { kMean, kMedian };

  struct Options {
    /// Average over all valid leaf pairs at every recursion level.
    bool voting = false;
    /// With voting, cap on leaf pairs considered per level (0 = all).
    /// Pairs are taken in deterministic (preorder index) order.
    int max_votes_per_level = 0;
    /// Vote combination rule (ignored without voting).
    VoteAggregation aggregation = VoteAggregation::kMean;
  };

  /// The summary must outlive the estimator.
  explicit RecursiveDecompositionEstimator(const LatticeSummary* summary);
  RecursiveDecompositionEstimator(const LatticeSummary* summary,
                                  Options options);

  TL_HOT Result<double> Estimate(const Twig& query) override;

  /// Governed estimation: cooperatively checks `options`' budget once per
  /// sub-twig visit (lookup or split) and aborts the recursion with the
  /// budget error as soon as it trips. Uses options.scratch when provided.
  TL_HOT Result<double> Estimate(const Twig& query,
                                 const EstimateOptions& options) override;

  /// Governed estimation charging an external governor — used by the
  /// fixed-size estimator's recursive fallback so that one budget covers
  /// the whole query, not each fallback separately. `governor` may be
  /// nullptr for ungoverned estimation; `scratch` may be nullptr to use
  /// the internal thread_local scratch.
  Result<double> EstimateWithGovernor(const Twig& query,
                                      CostGovernor* governor);
  Result<double> EstimateWithGovernor(const Twig& query, CostGovernor* governor,
                                      EstimateScratch* scratch);

  std::string name() const override {
    if (!options_.voting) return "recursive";
    return options_.aggregation == VoteAggregation::kMedian
               ? "recursive+voting-median"
               : "recursive+voting";
  }

 private:
  Result<double> EstimateImpl(const Twig& twig, EstimateScratch* scratch,
                              int depth, int* max_depth,
                              CostGovernor* governor);

  const LatticeSummary* summary_;
  Options options_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_RECURSIVE_ESTIMATOR_H_
