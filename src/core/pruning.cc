#include "core/pruning.h"

#include <cmath>

namespace treelattice {

Result<LatticeSummary> PruneDerivablePatterns(const LatticeSummary& summary,
                                              const PruneOptions& options,
                                              PruneStats* stats) {
  if (options.delta < 0.0) {
    return Status::InvalidArgument("PruneDerivablePatterns: delta < 0");
  }
  LatticeSummary pruned(summary.max_level());

  // Levels 1 and 2 are copied verbatim.
  for (int level = 1; level <= 2 && level <= summary.max_level(); ++level) {
    for (const std::string& code : summary.PatternsAtLevel(level)) {
      Twig twig;
      TL_ASSIGN_OR_RETURN(twig, Twig::FromCanonicalCode(code));
      TL_RETURN_IF_ERROR(pruned.Insert(twig, *summary.LookupCode(code)));
    }
  }
  // Estimation during the sweep must see only already-kept patterns, which
  // is exactly what `pruned` holds: decomposing a level-k pattern touches
  // only smaller patterns, and levels are processed in order.
  pruned.set_complete_through_level(2);
  RecursiveDecompositionEstimator estimator(&pruned, options.estimator);

  bool any_pruned = false;
  for (int level = 3; level <= summary.max_level(); ++level) {
    for (const std::string& code : summary.PatternsAtLevel(level)) {
      uint64_t true_count = *summary.LookupCode(code);
      Twig twig;
      TL_ASSIGN_OR_RETURN(twig, Twig::FromCanonicalCode(code));
      double estimate;
      TL_ASSIGN_OR_RETURN(estimate, estimator.Estimate(twig));
      double error = std::abs(static_cast<double>(true_count) - estimate) /
                     static_cast<double>(true_count);
      // A small absolute slack absorbs double rounding so exactly-derivable
      // patterns are recognized at delta = 0.
      if (error <= options.delta + 1e-9) {
        any_pruned = true;  // derivable: drop
      } else {
        TL_RETURN_IF_ERROR(pruned.Insert(twig, true_count));
      }
    }
  }
  pruned.set_complete_through_level(any_pruned
                                        ? 2
                                        : summary.complete_through_level());
  if (stats) {
    stats->patterns_before = summary.NumPatterns();
    stats->patterns_after = pruned.NumPatterns();
    stats->bytes_before = summary.MemoryBytes();
    stats->bytes_after = pruned.MemoryBytes();
  }
  return pruned;
}

}  // namespace treelattice
