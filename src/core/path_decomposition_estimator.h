#ifndef TREELATTICE_CORE_PATH_DECOMPOSITION_ESTIMATOR_H_
#define TREELATTICE_CORE_PATH_DECOMPOSITION_ESTIMATOR_H_

#include <string>

#include "core/markov_path_estimator.h"
#include "core/estimator.h"
#include "summary/lattice_summary.h"

namespace treelattice {

/// The path-only baseline the paper argues against (Section 1/2.2: path
/// methods "do not adapt to twig queries well since path correlations are
/// not accounted for").
///
/// A twig is decomposed into its root-to-leaf paths; under independence of
/// sibling branches given their branch node,
///   ŝ(T) = Π_leaf s(path to leaf) / Π_branch s(path to branch)^(deg-1),
/// i.e. each branching node's incoming-path count divides out the
/// over-multiplied shared prefix. Every path factor is itself estimated
/// with the Markov path model over the same lattice summary (so the
/// comparison isolates *what is summarized* — paths versus subtrees — not
/// the summary machinery). On pure paths this coincides with
/// MarkovPathEstimator; on twigs it ignores all correlation between
/// sibling branches, which is exactly the weakness TreeLattice fixes.
class PathDecompositionEstimator : public SelectivityEstimator {
 public:
  /// The summary must outlive the estimator.
  explicit PathDecompositionEstimator(const LatticeSummary* summary);

  Result<double> Estimate(const Twig& query) override;

  std::string name() const override { return "path-decomposition"; }

 private:
  const LatticeSummary* summary_;
  MarkovPathEstimator path_estimator_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_PATH_DECOMPOSITION_ESTIMATOR_H_
