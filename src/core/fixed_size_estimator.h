#ifndef TREELATTICE_CORE_FIXED_SIZE_ESTIMATOR_H_
#define TREELATTICE_CORE_FIXED_SIZE_ESTIMATOR_H_

#include <string>

#include "core/estimator.h"

#include "util/analysis_annotations.h"
#include "core/recursive_estimator.h"
#include "summary/lattice_summary.h"

namespace treelattice {

/// The fixed-size decomposition estimator (Section 3.3, Fig. 5).
///
/// The query is covered by n-k+1 k-subtrees along a preorder sweep
/// (Lemma 2); by Lemma 3
///   ŝ(Q) = s(T1) * Π_{i>=2} s(Tᵢ) / s(Tᵢ ∩ covered_{i-1}),
/// where every factor is a summary lookup. On a pruned summary a missing
/// basic twig falls back to recursive decomposition from smaller patterns
/// (Lemma 5 keeps this lossless at δ = 0).
class FixedSizeDecompositionEstimator : public SelectivityEstimator {
 public:
  struct Options {
    /// Cover subtree size; 0 means the summary's max level.
    int k = 0;
  };

  explicit FixedSizeDecompositionEstimator(const LatticeSummary* summary);
  FixedSizeDecompositionEstimator(const LatticeSummary* summary,
                                  Options options);

  // Fallback rung, not a hot-path root: building the fixed-size cover
  // allocates its step list per query by design; the ladder only lands
  // here after the primary rung exhausted its budget.
  TL_ALLOC_OK Result<double> Estimate(const Twig& query) override;

  /// Governed estimation: charges one step per sweep window / summary
  /// lookup and threads the same budget into the recursive fallback, so a
  /// pruned summary cannot turn the sweep into unbounded recursion.
  TL_ALLOC_OK Result<double> Estimate(const Twig& query,
                                 const EstimateOptions& options) override;

  std::string name() const override { return "fixed-size"; }

 private:
  Result<double> EstimateWithGovernor(const Twig& query, CostGovernor* governor,
                                      EstimateScratch* scratch);

  /// Summary lookup for a basic twig, falling back to recursive
  /// decomposition when the pattern was pruned. `governor` and `scratch`
  /// may be nullptr.
  Result<double> LookupOrEstimate(const Twig& twig, CostGovernor* governor,
                                  EstimateScratch* scratch);

  const LatticeSummary* summary_;
  Options options_;
  RecursiveDecompositionEstimator fallback_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_FIXED_SIZE_ESTIMATOR_H_
