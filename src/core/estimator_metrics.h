#ifndef TREELATTICE_CORE_ESTIMATOR_METRICS_H_
#define TREELATTICE_CORE_ESTIMATOR_METRICS_H_

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/analysis_annotations.h"

namespace treelattice {

/// Estimation telemetry, shared by every estimator so per-query dumps (CLI
/// `estimate --json`) can read one set of names regardless of the
/// configured estimator:
///   estimator.summary_hits            lattice lookups answered directly
///   estimator.summary_misses          lookups that fell through
///   estimator.exhaustive_zeros        misses answered 0 by completeness
///   estimator.decompositions          Lemma 1 splits performed
///   estimator.zero_overlap_fallbacks  splits voided by a zero component
///   estimator.memo_hits               sub-twig estimates served from memo
///   estimator.decomposition_depth     (histogram) recursion depth / query
///   estimator.voting_fanout           (histogram) votes per split
///   estimator.cover_steps             (histogram) fixed-size cover length
///   estimator.deadline_exceeded       primary estimates aborted by budget
///                                     (deadline or work-step exhaustion)
///   estimator.degraded                answers served by a fallback rung of
///                                     the degradation ladder
struct EstimatorMetrics {
  obs::Counter* summary_hits;
  obs::Counter* summary_misses;
  obs::Counter* exhaustive_zeros;
  obs::Counter* decompositions;
  obs::Counter* zero_overlap_fallbacks;
  obs::Counter* memo_hits;
  obs::Histogram* decomposition_depth;
  obs::Histogram* voting_fanout;
  obs::Histogram* cover_steps;
  obs::Counter* deadline_exceeded;
  obs::Counter* degraded;

  // One-time registration: every counter is resolved once into a
  // function-local static; steady-state calls are a guard check.
  TL_ALLOC_OK static EstimatorMetrics& Get() {
    static EstimatorMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return EstimatorMetrics{
          registry->counter(names::kEstimatorSummaryHits),
          registry->counter(names::kEstimatorSummaryMisses),
          registry->counter(names::kEstimatorExhaustiveZeros),
          registry->counter(names::kEstimatorDecompositions),
          registry->counter(names::kEstimatorZeroOverlapFallbacks),
          registry->counter(names::kEstimatorMemoHits),
          registry->histogram(names::kEstimatorDecompositionDepth),
          registry->histogram(names::kEstimatorVotingFanout),
          registry->histogram(names::kEstimatorCoverSteps),
          registry->counter(names::kEstimatorDeadlineExceeded),
          registry->counter(names::kEstimatorDegraded)};
    }();
    return m;
  }
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_ESTIMATOR_METRICS_H_
