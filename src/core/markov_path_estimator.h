#ifndef TREELATTICE_CORE_MARKOV_PATH_ESTIMATOR_H_
#define TREELATTICE_CORE_MARKOV_PATH_ESTIMATOR_H_

#include <string>
#include <vector>

#include "core/estimator.h"

#include "util/analysis_annotations.h"
#include "summary/lattice_summary.h"

namespace treelattice {

/// The classic Markov-model path selectivity estimator (Lore / Markov
/// tables / XPathLearner), expressed over the lattice summary.
///
/// For a path l1/l2/.../ln and summary order m (the lattice level),
///   ŝ = f(l1..lm) * Π_{i=2}^{n-m+1} f(lᵢ..lᵢ₊ₘ₋₁) / f(lᵢ..lᵢ₊ₘ₋₂),
/// where f() is the stored count of the corresponding path pattern. Lemma 4
/// proves both decomposition estimators reduce to exactly this formula on
/// path queries; this class exists as the explicit special case (and as the
/// path-only baseline) so the equivalence is testable.
class MarkovPathEstimator : public SelectivityEstimator {
 public:
  struct Options {
    /// Markov order (window size); 0 means the summary's max level.
    int order = 0;
  };

  explicit MarkovPathEstimator(const LatticeSummary* summary);
  MarkovPathEstimator(const LatticeSummary* summary, Options options);

  /// Fails with InvalidArgument on non-path queries.
  // Fallback rung, not a hot-path root: the sweep builds its label
  // sequence and window twigs per query — strictly linear work, and the
  // ladder only lands here after the governed rungs timed out.
  TL_ALLOC_OK Result<double> Estimate(const Twig& query) override;

  /// Governed estimation: charges one step per sweep window. The sweep is
  /// strictly linear in the query size, so in practice this never trips a
  /// realistic budget — which is exactly why the degradation ladder uses
  /// this estimator as its final rung.
  TL_ALLOC_OK Result<double> Estimate(const Twig& query,
                                 const EstimateOptions& options) override;

  std::string name() const override { return "markov-path"; }

 private:
  Result<double> EstimateWithGovernor(const Twig& query,
                                      CostGovernor* governor);
  /// Count of the path window labels[begin, begin+len).
  double WindowCount(const std::vector<LabelId>& labels, size_t begin,
                     size_t len) const;

  const LatticeSummary* summary_;
  Options options_;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_MARKOV_PATH_ESTIMATOR_H_
