#ifndef TREELATTICE_CORE_ESTIMATOR_H_
#define TREELATTICE_CORE_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "twig/twig.h"
#include "util/deadline.h"
#include "util/result.h"

namespace treelattice {

class EstimateScratch;

/// Per-request resource limits for an estimation, threaded through the
/// estimator call chain (recursion, voting, fixed-size fallbacks). All
/// limits are optional; the default is ungoverned. The deadline is
/// absolute, so nested estimators charge against the caller's budget
/// rather than restarting it.
struct EstimateOptions {
  Deadline deadline;
  /// Cooperative cancellation; may be flipped from another thread. Not
  /// owned — must outlive the Estimate call.
  const CancelToken* cancel = nullptr;
  /// Upper bound on work steps (summary lookups, splits, sweep windows);
  /// 0 means unlimited.
  uint64_t max_work_steps = 0;
  /// Reusable hot-path buffers (memo, split workspaces); see
  /// core/estimate_scratch.h. Not owned — must outlive the Estimate call
  /// and be used by one thread at a time. nullptr makes estimators fall
  /// back to an internal thread_local scratch.
  EstimateScratch* scratch = nullptr;
  /// The deadline's original duration in milliseconds when it was built
  /// with WithDeadlineMillis; 0 when unknown. The degradation ladder uses
  /// it to size the grace budget of fallback rungs.
  double deadline_millis = 0.0;
  /// When non-null, governed runs add their governor's charged step count
  /// here on return (success or budget trip) — the per-request work-steps
  /// tally surfaced by request tracing. Accumulative across ladder rungs;
  /// ungoverned runs (no governor, nothing counting) add nothing. Does not
  /// make the options governed().
  uint64_t* work_steps = nullptr;

  /// An options object whose deadline is `millis` from now.
  static EstimateOptions WithDeadlineMillis(double millis) {
    EstimateOptions options;
    options.deadline = Deadline::After(millis);
    options.deadline_millis = millis;
    return options;
  }

  bool governed() const {
    return !deadline.is_infinite() || cancel != nullptr || max_work_steps > 0;
  }

  CostGovernor MakeGovernor() const {
    return CostGovernor(deadline, cancel, max_work_steps);
  }
};

/// Interface for twig-query selectivity estimators.
///
/// Estimates are real-valued expected counts (Theorem 1 gives an
/// expectation, not an integer). Implementations must be deterministic for
/// a fixed summary and query.
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Estimated number of matches of `query` in the summarized document.
  virtual Result<double> Estimate(const Twig& query) = 0;

  /// Governed estimation: like Estimate(query) but aborts with
  /// kDeadlineExceeded / kResourceExhausted / kCancelled when `options`'
  /// budget trips. The base implementation ignores the options (correct
  /// for estimators whose work is trivially bounded); estimators with
  /// unbounded recursion or sweeps override it with cooperative checks.
  virtual Result<double> Estimate(const Twig& query,
                                  const EstimateOptions& options) {
    (void)options;
    return Estimate(query);
  }

  /// Short stable name used in experiment reports.
  virtual std::string name() const = 0;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_ESTIMATOR_H_
