#ifndef TREELATTICE_CORE_ESTIMATOR_H_
#define TREELATTICE_CORE_ESTIMATOR_H_

#include <string>

#include "twig/twig.h"
#include "util/result.h"

namespace treelattice {

/// Interface for twig-query selectivity estimators.
///
/// Estimates are real-valued expected counts (Theorem 1 gives an
/// expectation, not an integer). Implementations must be deterministic for
/// a fixed summary and query.
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Estimated number of matches of `query` in the summarized document.
  virtual Result<double> Estimate(const Twig& query) = 0;

  /// Short stable name used in experiment reports.
  virtual std::string name() const = 0;
};

}  // namespace treelattice

#endif  // TREELATTICE_CORE_ESTIMATOR_H_
