#ifndef TREELATTICE_CORE_EXPLAIN_H_
#define TREELATTICE_CORE_EXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "util/result.h"
#include "xml/label_dict.h"

namespace treelattice {

/// One node of a decomposition trace: either a summary hit (leaf) or a
/// Lemma 1 split into two sub-twigs and their overlap.
struct ExplainNode {
  std::string twig_text;   ///< the (sub-)twig in textual form
  double estimate = 0.0;   ///< estimate produced for this sub-twig
  bool from_summary = false;  ///< true when read directly from the lattice
  /// For decomposed nodes: children[0] = T1, children[1] = T2,
  /// children[2] = overlap; empty for summary hits / zeros.
  std::vector<std::unique_ptr<ExplainNode>> children;
};

/// Traces the (non-voting) recursive decomposition of `query` against
/// `summary`, recording every Lemma 1 split and summary lookup. The root
/// estimate equals RecursiveDecompositionEstimator's (default options)
/// answer exactly — asserted by tests — so the trace is a faithful
/// explanation of the production estimate, suitable for optimizer
/// debugging ("why was this cardinality predicted?").
///
/// Contract: the trace follows only the first valid leaf pair at each
/// level, i.e. it explains `recursive` and, equivalently, a voting
/// estimator capped at one vote per level (max_votes_per_level = 1,
/// kMean). Full voting estimators average over *all* leaf pairs, so their
/// estimates can legitimately differ from the rendered root; the trace is
/// then one representative decomposition path, not the voted value.
Result<std::unique_ptr<ExplainNode>> ExplainEstimate(
    const LatticeSummary& summary, const Twig& query, const LabelDict& dict);

/// Renders a trace as an indented text tree:
///   a(b,c(d)) ~= 12.5   [T1 * T2 / overlap]
///     a(b,c) = 20       [summary]
///     ...
std::string RenderExplain(const ExplainNode& node);

}  // namespace treelattice

#endif  // TREELATTICE_CORE_EXPLAIN_H_
