#ifndef TREELATTICE_CORE_PRUNING_H_
#define TREELATTICE_CORE_PRUNING_H_

#include "core/recursive_estimator.h"
#include "summary/lattice_summary.h"
#include "util/result.h"

namespace treelattice {

/// Options for δ-derivable pattern pruning (Section 4.3, Fig. 6).
struct PruneOptions {
  /// Relative error tolerance δ: a pattern whose true count is within δ of
  /// its TreeLattice estimate (computed from the kept smaller patterns) is
  /// derivable and dropped. δ = 0 prunes only exactly-derivable patterns,
  /// which by Lemma 5 leaves every estimate unchanged.
  double delta = 0.0;

  /// Estimator configuration used to decide derivability. Must match the
  /// configuration used at query time for the δ = 0 losslessness guarantee.
  RecursiveDecompositionEstimator::Options estimator;
};

/// Statistics from a pruning pass.
struct PruneStats {
  size_t patterns_before = 0;
  size_t patterns_after = 0;
  size_t bytes_before = 0;
  size_t bytes_after = 0;
};

/// Builds a compressed copy of `summary` with δ-derivable patterns removed.
/// Levels 1-2 are always retained (they anchor every decomposition). The
/// result's complete_through_level drops to 2 whenever at least one pattern
/// was pruned, so estimators fall through missing patterns correctly.
Result<LatticeSummary> PruneDerivablePatterns(const LatticeSummary& summary,
                                              const PruneOptions& options = {},
                                              PruneStats* stats = nullptr);

}  // namespace treelattice

#endif  // TREELATTICE_CORE_PRUNING_H_
