#include "core/calibrated_estimator.h"

#include <algorithm>
#include <cmath>

#include "match/matcher.h"
#include "workload/workload.h"

namespace treelattice {

Result<CalibratedEstimator> CalibratedEstimator::Calibrate(
    const Document& doc, SelectivityEstimator* inner) {
  return Calibrate(doc, inner, Options());
}

Result<CalibratedEstimator> CalibratedEstimator::Calibrate(
    const Document& doc, SelectivityEstimator* inner,
    const Options& options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("Calibrate: inner estimator is null");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("Calibrate: confidence must be in (0,1)");
  }
  MatchCounter counter(doc);
  std::vector<double> factors(
      static_cast<size_t>(options.max_calibrated_size) + 1, 1.0);

  for (int size = 2; size <= options.max_calibrated_size; ++size) {
    WorkloadOptions workload;
    workload.seed = options.seed + static_cast<uint64_t>(size) * 131;
    workload.query_size = size;
    workload.num_queries = options.queries_per_size;
    Result<std::vector<Twig>> queries =
        GeneratePositiveWorkload(doc, workload);
    if (!queries.ok()) return queries.status();

    std::vector<double> ratios;
    for (const Twig& q : *queries) {
      double truth = static_cast<double>(counter.Count(q));
      Result<double> estimate = inner->Estimate(q);
      if (!estimate.ok()) return estimate.status();
      if (truth <= 0.0) continue;
      double est = std::max(*estimate, 1e-9);
      ratios.push_back(std::max(est / truth, truth / est));
    }
    double factor = 1.0;
    if (!ratios.empty()) {
      std::sort(ratios.begin(), ratios.end());
      size_t index = static_cast<size_t>(
          options.confidence * static_cast<double>(ratios.size() - 1));
      factor = ratios[index];
    }
    // Bounds can only widen with query size: decomposition depth grows
    // monotonically, so enforce monotone factors against sampling noise.
    factors[static_cast<size_t>(size)] =
        std::max(factor, factors[static_cast<size_t>(size) - 1]);
  }
  return CalibratedEstimator(inner, std::move(factors));
}

double CalibratedEstimator::FactorForSize(int size) const {
  if (size < 2) return 1.0;
  const int max_size = static_cast<int>(factor_by_size_.size()) - 1;
  if (size <= max_size) return factor_by_size_[static_cast<size_t>(size)];
  // Geometric extrapolation: one extra decomposition level multiplies the
  // error by roughly the last observed per-level growth.
  double last = factor_by_size_[static_cast<size_t>(max_size)];
  double prev = factor_by_size_[static_cast<size_t>(max_size) - 1];
  double growth = prev > 1.0 ? std::max(1.0, last / prev) : 1.0;
  double factor = last;
  for (int s = max_size; s < size; ++s) factor *= growth;
  return factor;
}

Result<double> CalibratedEstimator::Estimate(const Twig& query) {
  return inner_->Estimate(query);
}

Result<double> CalibratedEstimator::Estimate(const Twig& query,
                                             const EstimateOptions& options) {
  return inner_->Estimate(query, options);
}

Result<BoundedEstimate> CalibratedEstimator::EstimateWithBound(
    const Twig& query) {
  return EstimateWithBound(query, EstimateOptions());
}

Result<BoundedEstimate> CalibratedEstimator::EstimateWithBound(
    const Twig& query, const EstimateOptions& options) {
  BoundedEstimate out;
  TL_ASSIGN_OR_RETURN(out.estimate, inner_->Estimate(query, options));
  out.factor = FactorForSize(query.size());
  out.lower = out.estimate / out.factor;
  out.upper = out.estimate * out.factor;
  return out;
}

}  // namespace treelattice
