#include "core/degrading_estimator.h"

#include "core/estimator_metrics.h"
#include "obs/trace.h"

namespace treelattice {

namespace {

/// Budget codes that trigger a step down the ladder. kCancelled is
/// deliberately absent: cancellation aborts the whole request.
bool ShouldDegrade(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kResourceExhausted;
}

}  // namespace

std::string_view DegradingEstimator::RungName(Rung rung) {
  switch (rung) {
    case Rung::kPrimary:
      return "primary";
    case Rung::kFixedSize:
      return "fixed-size";
    case Rung::kMarkovPath:
      return "markov-path";
  }
  return "unknown";
}

DegradingEstimator::DegradingEstimator(const LatticeSummary* summary)
    : DegradingEstimator(summary, Options()) {}

DegradingEstimator::DegradingEstimator(const LatticeSummary* summary,
                                       Options options)
    : options_(options),
      primary_(summary, options.primary),
      fixed_size_(summary, options.fixed_size),
      markov_(summary, options.markov) {}

Result<double> DegradingEstimator::Estimate(const Twig& query) {
  return primary_.Estimate(query);
}

Result<double> DegradingEstimator::Estimate(const Twig& query,
                                            const EstimateOptions& options) {
  Result<DegradedEstimate> result = EstimateDegraded(query, options);
  if (!result.ok()) return result.status();
  return result->estimate;
}

EstimateOptions DegradingEstimator::FallbackBudget(
    const EstimateOptions& original) const {
  EstimateOptions fallback;
  fallback.cancel = original.cancel;
  fallback.max_work_steps = original.max_work_steps;
  fallback.scratch = original.scratch;
  fallback.work_steps = original.work_steps;  // rungs accumulate into one tally
  if (original.deadline_millis > 0.0) {
    double grace =
        original.deadline_millis * options_.fallback_deadline_fraction;
    fallback.deadline = Deadline::After(grace);
    fallback.deadline_millis = grace;
  } else if (!original.deadline.is_infinite()) {
    // Deadline of unknown duration: grant whatever remains of it, or half
    // a millisecond of grace when already past due.
    double remaining = original.deadline.remaining_millis();
    double grace = remaining > 0.5 ? remaining : 0.5;
    fallback.deadline = Deadline::After(grace);
    fallback.deadline_millis = grace;
  }
  return fallback;
}

Result<DegradingEstimator::DegradedEstimate>
DegradingEstimator::EstimateDegraded(const Twig& query,
                                     const EstimateOptions& options) {
  obs::TraceSpan span("estimator.degrading", "core");
  span.SetArg("query_size", static_cast<uint64_t>(query.size()));
  EstimatorMetrics& metrics = EstimatorMetrics::Get();

  DegradedEstimate out;
  Result<double> primary = primary_.Estimate(query, options);
  if (primary.ok()) {
    out.estimate = *primary;
    out.rung = Rung::kPrimary;
    return out;
  }
  if (!ShouldDegrade(primary.status())) return primary.status();
  metrics.deadline_exceeded->Increment();
  out.degraded = true;
  out.primary_status = primary.status();

  // Rung 1: the paper's fixed-size estimator with a fresh grace budget —
  // mostly summary lookups, so it nearly always answers in time.
  EstimateOptions grace = FallbackBudget(options);
  Result<double> fixed = fixed_size_.Estimate(query, grace);
  if (fixed.ok()) {
    out.estimate = *fixed;
    out.rung = Rung::kFixedSize;
    metrics.degraded->Increment();
    return out;
  }
  if (!ShouldDegrade(fixed.status())) return fixed.status();

  // Rung 2 (path queries only): the markov sweep, ungoverned — its work is
  // strictly linear in the query size, so it is the ladder's floor.
  if (query.IsPath()) {
    Result<double> markov = markov_.Estimate(query);
    if (markov.ok()) {
      out.estimate = *markov;
      out.rung = Rung::kMarkovPath;
      metrics.degraded->Increment();
      return out;
    }
  }

  // Every rung exhausted: report the primary failure, which names the
  // original budget.
  return primary.status();
}

}  // namespace treelattice
