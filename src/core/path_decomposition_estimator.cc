#include "core/path_decomposition_estimator.h"

#include <vector>

namespace treelattice {

namespace {

/// Builds the path twig for the label sequence root..node.
Twig PathTo(const Twig& query, int node) {
  std::vector<LabelId> labels;
  for (int n = node; n != -1; n = query.parent(n)) {
    labels.push_back(query.label(n));
  }
  Twig path;
  int parent = -1;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    parent = path.AddNode(*it, parent);
  }
  return path;
}

}  // namespace

PathDecompositionEstimator::PathDecompositionEstimator(
    const LatticeSummary* summary)
    : summary_(summary), path_estimator_(summary) {}

Result<double> PathDecompositionEstimator::Estimate(const Twig& query) {
  if (query.empty()) {
    return Status::InvalidArgument("Estimate: empty query");
  }
  double numerator = 1.0;
  double denominator = 1.0;
  for (int node = 0; node < query.size(); ++node) {
    size_t fanout = query.children(node).size();
    if (fanout == 0) {
      double s;
      TL_ASSIGN_OR_RETURN(s, path_estimator_.Estimate(PathTo(query, node)));
      if (s <= 0.0) return 0.0;
      numerator *= s;
    } else if (fanout >= 2) {
      double s;
      TL_ASSIGN_OR_RETURN(s, path_estimator_.Estimate(PathTo(query, node)));
      if (s <= 0.0) return 0.0;
      for (size_t i = 1; i < fanout; ++i) denominator *= s;
    }
  }
  return numerator / denominator;
}

}  // namespace treelattice
