#include "core/batch_estimator.h"

#include <cstdint>

#include "core/estimator_metrics.h"
#include "util/hash.h"

namespace treelattice {

namespace {

/// Sentinel for "no representative yet" in the dedup table.
constexpr uint32_t kNoIndex = static_cast<uint32_t>(-1);

/// Round `want` up to a power of two >= 16.
size_t SlotCount(size_t want) {
  size_t n = 16;
  while (n * 7 < want * 10) n <<= 1;
  return n;
}

}  // namespace

BatchEstimator::BatchEstimator(const LatticeSummary* summary)
    : BatchEstimator(summary, RecursiveDecompositionEstimator::Options()) {}

BatchEstimator::BatchEstimator(const LatticeSummary* summary,
                               RecursiveDecompositionEstimator::Options options)
    : summary_(summary), estimator_(summary, options) {}

Status* BatchEstimator::StageStatuses(size_t n) {
  status_staging_.assign(n, Status::OK());
  return status_staging_.data();
}

Status BatchEstimator::EstimateBatch(std::span<const Twig> queries,
                                     const EstimateOptions& options,
                                     std::span<EstimateResult> results) {
  if (results.size() != queries.size()) {
    return Status::InvalidArgument(
        "EstimateBatch: results span must match queries span");
  }
  const size_t n = queries.size();
  if (n == 0) return Status::OK();
  arena_.Reset();

  // Stage 1+2: canonicalize every query and dedup identical ones through a
  // flat open-addressing table (hash -> first index, full code verified).
  // rep[i] is the index of the first query identical to queries[i].
  struct DedupSlot {
    uint64_t hash = 0;
    uint32_t index = kNoIndex;
  };
  const size_t slot_count = SlotCount(n);
  const size_t slot_mask = slot_count - 1;
  DedupSlot* slots = arena_.AllocateArray<DedupSlot>(slot_count);
  for (size_t s = 0; s < slot_count; ++s) slots[s] = DedupSlot{};
  uint32_t* rep = arena_.AllocateArray<uint32_t>(n);
  uint32_t* distinct = arena_.AllocateArray<uint32_t>(n);
  size_t num_distinct = 0;
  size_t memo_budget = 0;  // sum of size^2 over distinct queries
  for (size_t i = 0; i < n; ++i) {
    if (queries[i].empty()) {
      rep[i] = static_cast<uint32_t>(i);
      continue;
    }
    // The batch-wide one-time canonicalization pass: everything after
    // runs on the cached code/hash.
    const uint64_t hash = queries[i].CanonicalHash();  // tl-lint: allow(canonical-in-loop)
    const std::string& code = queries[i].CanonicalCode();  // tl-lint: allow(canonical-in-loop)
    size_t idx = static_cast<size_t>(Mix64(hash)) & slot_mask;
    for (;;) {
      DedupSlot& slot = slots[idx];
      if (slot.index == kNoIndex) {
        slot.hash = hash;
        slot.index = static_cast<uint32_t>(i);
        rep[i] = static_cast<uint32_t>(i);
        distinct[num_distinct++] = static_cast<uint32_t>(i);
        const size_t size = static_cast<size_t>(queries[i].size());
        memo_budget += size * size;
        break;
      }
      if (slot.hash == hash &&
          queries[slot.index].CanonicalCode() == code) {  // tl-lint: allow(canonical-in-loop)
        rep[i] = slot.index;
        break;
      }
      idx = (idx + 1) & slot_mask;
    }
  }

  EstimateScratch* scratch =
      options.scratch != nullptr ? options.scratch : &scratch_;
  ScopedBatchScratch batch_guard(scratch, memo_budget);

  // Stage 3: one grouped probe pass answers every distinct query the
  // summary holds (exact counts) and every provably-zero one, seeding the
  // memo so the recursion below memo-hits instead of re-probing. The memo
  // values equal what EstimateImpl would compute for those codes, so this
  // pre-pass cannot change any result.
  LatticeSummary::ProbeKey* keys =
      arena_.AllocateArray<LatticeSummary::ProbeKey>(num_distinct);
  LatticeSummary::ProbeResult* probe_results =
      arena_.AllocateArray<LatticeSummary::ProbeResult>(num_distinct);
  uint32_t* order = arena_.AllocateArray<uint32_t>(num_distinct);
  for (size_t d = 0; d < num_distinct; ++d) {
    const Twig& query = queries[distinct[d]];
    // Cached after the stage-1 pass: these re-read the twig's cache.
    keys[d] = LatticeSummary::ProbeKey{query.CanonicalHash(),  // tl-lint: allow(canonical-in-loop)
                                       query.CanonicalCode()};  // tl-lint: allow(canonical-in-loop)
  }
  summary_->LookupBatch(keys, num_distinct, order, probe_results);

  // answered[d] marks distinct queries settled by the pre-pass; their
  // values live in staged[d]. The rest go through the recursion.
  bool* answered = arena_.AllocateArray<bool>(num_distinct);
  double* staged = arena_.AllocateArray<double>(num_distinct);
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  for (size_t d = 0; d < num_distinct; ++d) {
    const Twig& query = queries[distinct[d]];
    answered[d] = false;
    staged[d] = 0.0;
    if (probe_results[d].found) {
      metrics.summary_hits->Increment();
      staged[d] = static_cast<double>(probe_results[d].count);
      answered[d] = true;
    } else if (query.size() <= summary_->complete_through_level() ||
               query.size() < 3) {
      metrics.exhaustive_zeros->Increment();
      answered[d] = true;  // staged 0.0: provably absent (DESIGN.md §5)
    }
    if (answered[d]) {
      scratch->memo().Insert(keys[d].hash, keys[d].code, staged[d]);
    }
  }

  // Stage 4: shared-memo recursion over the remaining distinct queries.
  // One governor covers the whole batch; queries visited after a budget
  // trip fail fast with the trip status on their first Charge().
  CostGovernor governor = options.MakeGovernor();
  CostGovernor* governor_ptr = options.governed() ? &governor : nullptr;
  Status* staged_status = StageStatuses(num_distinct);
  for (size_t d = 0; d < num_distinct; ++d) {
    if (answered[d]) continue;
    Result<double> result = estimator_.EstimateWithGovernor(
        queries[distinct[d]], governor_ptr, scratch);
    if (result.ok()) {
      staged[d] = *result;
    } else {
      staged_status[d] = result.status();
    }
  }
  if (options.work_steps != nullptr && governor_ptr != nullptr) {
    *options.work_steps += governor.steps();
  }

  // Scatter: every query takes its representative's staged outcome.
  // Distinct index of a representative is recovered via the dedup table.
  uint32_t* distinct_of = arena_.AllocateArray<uint32_t>(n);
  for (size_t d = 0; d < num_distinct; ++d) {
    distinct_of[distinct[d]] = static_cast<uint32_t>(d);
  }
  for (size_t i = 0; i < n; ++i) {
    if (queries[i].empty()) {
      results[i].status = Status::InvalidArgument("Estimate: empty query");
      results[i].estimate = 0.0;
      continue;
    }
    const uint32_t d = distinct_of[rep[i]];
    results[i].status = staged_status[d];
    results[i].estimate = staged[d];
  }
  return Status::OK();
}

}  // namespace treelattice
