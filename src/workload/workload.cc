#include "workload/workload.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace treelattice {

namespace {

/// True if any node has two same-labeled children.
bool HasDuplicateSiblings(const Twig& twig) {
  for (int node = 0; node < twig.size(); ++node) {
    const std::vector<int>& kids = twig.children(node);
    for (size_t a = 0; a < kids.size(); ++a) {
      for (size_t b = a + 1; b < kids.size(); ++b) {
        if (twig.label(kids[a]) == twig.label(kids[b])) return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<Twig> TwigFromDocumentNodes(const Document& doc,
                                   const std::vector<NodeId>& nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("TwigFromDocumentNodes: empty node set");
  }
  std::vector<NodeId> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::unordered_map<NodeId, int> to_twig;
  to_twig.reserve(sorted.size());
  Twig twig;
  int roots = 0;
  // Document node ids are preorder, so parents precede children in
  // `sorted`.
  for (NodeId n : sorted) {
    NodeId p = doc.Parent(n);
    auto it = (p == kInvalidNode) ? to_twig.end() : to_twig.find(p);
    int parent_idx = -1;
    if (it != to_twig.end()) {
      parent_idx = it->second;
    } else {
      ++roots;
      if (roots > 1) {
        return Status::InvalidArgument(
            "TwigFromDocumentNodes: node set not connected");
      }
    }
    to_twig.emplace(n, twig.AddNode(doc.Label(n), parent_idx));
  }
  return twig;
}

Result<std::vector<Twig>> GeneratePositiveWorkload(
    const Document& doc, const WorkloadOptions& options) {
  if (options.query_size < 1) {
    return Status::InvalidArgument("query_size must be >= 1");
  }
  if (doc.NumNodes() < static_cast<size_t>(options.query_size)) {
    return Status::InvalidArgument("document smaller than query size");
  }
  Rng rng(options.seed);
  std::vector<Twig> queries;
  std::unordered_set<std::string> seen;

  // Collect substantially more distinct patterns than requested, then
  // sample uniformly among them. Plain rejection sampling would bias the
  // workload toward patterns with many embeddings; the paper's methodology
  // (enumerate the occurring patterns per level, then sample) weights
  // *patterns*, not occurrences, so rare patterns must be reachable too.
  const size_t target_pool = options.num_queries * 8;

  for (size_t attempt = 0;
       attempt < options.max_attempts && queries.size() < target_pool;
       ++attempt) {
    // Grow a random connected node set from a random start node.
    NodeId start = static_cast<NodeId>(rng.Uniform(doc.NumNodes()));
    std::vector<NodeId> selected = {start};
    std::unordered_set<NodeId> in_set = {start};
    std::vector<NodeId> frontier;
    auto push_neighbors = [&](NodeId n) {
      NodeId p = doc.Parent(n);
      if (p != kInvalidNode && !in_set.count(p)) frontier.push_back(p);
      for (NodeId c = doc.FirstChild(n); c != kInvalidNode;
           c = doc.NextSibling(c)) {
        if (!in_set.count(c)) frontier.push_back(c);
      }
    };
    push_neighbors(start);
    while (static_cast<int>(selected.size()) < options.query_size &&
           !frontier.empty()) {
      size_t pick = rng.Uniform(frontier.size());
      NodeId next = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      if (in_set.count(next)) continue;
      in_set.insert(next);
      selected.push_back(next);
      push_neighbors(next);
    }
    if (static_cast<int>(selected.size()) != options.query_size) continue;

    Result<Twig> twig = TwigFromDocumentNodes(doc, selected);
    if (!twig.ok()) return twig.status();
    if (!options.allow_duplicate_siblings && HasDuplicateSiblings(*twig)) {
      continue;
    }
    std::string code = twig->CanonicalCode();
    if (seen.insert(code).second) {
      queries.push_back(twig->Canonicalized());
    }
  }

  if (queries.size() > options.num_queries) {
    // Uniform sample without replacement (partial Fisher-Yates).
    for (size_t i = 0; i < options.num_queries; ++i) {
      size_t j = i + rng.Uniform(queries.size() - i);
      std::swap(queries[i], queries[j]);
    }
    queries.resize(options.num_queries);
  }
  return queries;
}

Result<std::vector<Twig>> GenerateNegativeWorkload(
    const Document& doc, const WorkloadOptions& options) {
  std::vector<Twig> positives;
  {
    WorkloadOptions pos = options;
    pos.seed = options.seed ^ 0x9e3779b97f4a7c15ULL;
    TL_ASSIGN_OR_RETURN(positives, GeneratePositiveWorkload(doc, pos));
  }
  if (positives.empty()) {
    return Status::Internal("no positive queries to perturb");
  }
  MatchCounter counter(doc);
  Rng rng(options.seed + 17);

  // Replacement labels weighted by document frequency: frequent labels are
  // substituted more often, maximizing the chance an estimator is fooled.
  std::vector<double> weights(doc.dict().size(), 0.0);
  for (LabelId l = 0; l < static_cast<LabelId>(doc.dict().size()); ++l) {
    weights[static_cast<size_t>(l)] =
        static_cast<double>(counter.label_index().Count(l));
  }

  std::vector<Twig> negatives;
  std::unordered_set<std::string> seen;
  for (size_t attempt = 0; attempt < options.max_attempts &&
                           negatives.size() < options.num_queries;
       ++attempt) {
    const Twig& base = positives[rng.Uniform(positives.size())];
    // Rebuild with one or two random labels swapped.
    Twig mutated = base;
    int swaps = 1 + static_cast<int>(rng.Uniform(2));
    Twig rebuilt;
    std::vector<LabelId> new_labels(static_cast<size_t>(base.size()));
    for (int i = 0; i < base.size(); ++i) new_labels[i] = base.label(i);
    for (int s = 0; s < swaps; ++s) {
      int pos = static_cast<int>(rng.Uniform(base.size()));
      new_labels[static_cast<size_t>(pos)] =
          static_cast<LabelId>(rng.WeightedIndex(weights));
    }
    for (int i = 0; i < base.size(); ++i) {
      rebuilt.AddNode(new_labels[static_cast<size_t>(i)], base.parent(i));
    }
    mutated = rebuilt;
    if (!options.allow_duplicate_siblings && HasDuplicateSiblings(mutated)) {
      continue;
    }
    if (counter.Count(mutated) != 0) continue;  // must be zero-selectivity
    std::string code = mutated.CanonicalCode();
    if (seen.insert(code).second) {
      negatives.push_back(mutated.Canonicalized());
    }
  }
  return negatives;
}

}  // namespace treelattice
