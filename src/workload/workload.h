#ifndef TREELATTICE_WORKLOAD_WORKLOAD_H_
#define TREELATTICE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "match/matcher.h"
#include "twig/twig.h"
#include "util/result.h"
#include "xml/document.h"

namespace treelattice {

/// Options for workload generation.
struct WorkloadOptions {
  uint64_t seed = 7;
  /// Number of nodes per query twig.
  int query_size = 5;
  /// Queries to produce (distinct up to canonical form).
  size_t num_queries = 100;
  /// Sampling attempts before giving up (guards degenerate documents).
  size_t max_attempts = 200000;

  /// Whether queries may contain two same-labeled children under one
  /// parent. The paper's queries keep children distinct per parent
  /// (Section 3.1's standing assumption), so this defaults to false.
  bool allow_duplicate_siblings = false;
};

/// Samples distinct positive twig queries (selectivity > 0) of the given
/// size by growing random connected node sets of the document and reading
/// off their label structure — the paper's "enumerate occurring subtrees,
/// sample per level" strategy. May return fewer than requested when the
/// document has fewer distinct patterns of that size.
Result<std::vector<Twig>> GeneratePositiveWorkload(
    const Document& doc, const WorkloadOptions& options);

/// Derives zero-selectivity queries from positive ones by replacing twig
/// node labels with labels drawn by document frequency (frequent labels
/// replace more often, per Section 5.1), keeping only perturbations whose
/// true selectivity is zero.
Result<std::vector<Twig>> GenerateNegativeWorkload(
    const Document& doc, const WorkloadOptions& options);

/// Extracts the twig induced by a connected set of document nodes (rooted
/// at the topmost). Exposed for tests and custom workloads.
Result<Twig> TwigFromDocumentNodes(const Document& doc,
                                   const std::vector<NodeId>& nodes);

}  // namespace treelattice

#endif  // TREELATTICE_WORKLOAD_WORKLOAD_H_
