#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/json.h"

namespace treelattice {
namespace obs {

namespace {

bool EnabledFromEnv() {
  const char* value = std::getenv("TREELATTICE_OBS");
  if (value == nullptr) return true;
  return std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabledForTest(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::SetMax(int64_t value) {
  if (!Enabled()) return;
  int64_t current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0;
  return uint64_t{1} << (index - 1);
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  uint64_t buckets[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += buckets[i];
  }
  if (snap.count == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);

  // Percentile by nearest rank over the bucketed distribution, linearly
  // interpolated inside the winning bucket (a sample "in the middle" of a
  // bucket reports the bucket midpoint), then clamped to the observed
  // [min, max] so quantiles never exceed a value actually recorded.
  auto percentile = [&](double pct) {
    double target = pct / 100.0 * static_cast<double>(snap.count);
    if (target < 1.0) target = 1.0;
    uint64_t cumulative = 0;
    double result = static_cast<double>(snap.max);
    for (int i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (static_cast<double>(cumulative + buckets[i]) >= target) {
        double lower = static_cast<double>(BucketLowerBound(i));
        double upper = static_cast<double>(BucketUpperBound(i)) + 1.0;
        double frac = (target - static_cast<double>(cumulative) - 0.5) /
                      static_cast<double>(buckets[i]);
        if (frac < 0.0) frac = 0.0;
        if (frac > 1.0) frac = 1.0;
        result = lower + (upper - lower) * frac;
        break;
      }
      cumulative += buckets[i];
    }
    result = std::max(result, static_cast<double>(snap.min));
    return std::min(result, static_cast<double>(snap.max));
  };
  snap.p50 = percentile(50.0);
  snap.p95 = percentile(95.0);
  snap.p99 = percentile(99.0);
  return snap;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return &registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).Uint(counter->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Int(gauge->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->GetSnapshot();
    w.Key(name).BeginObject();
    w.Key("count").Uint(snap.count);
    w.Key("sum").Uint(snap.sum);
    w.Key("min").Uint(snap.min);
    w.Key("max").Uint(snap.max);
    w.Key("p50").Double(snap.p50);
    w.Key("p95").Double(snap.p95);
    w.Key("p99").Double(snap.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "treelattice_";
  for (char c : name) {
    out.push_back((c == '.' || c == '-') ? '_' : c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->GetSnapshot();
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "_count " + std::to_string(snap.count) + "\n";
    out += prom + "_sum " + std::to_string(snap.sum) + "\n";
    auto quantile_line = [&](const char* q, double value) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", value);
      out += prom + "{quantile=\"" + q + "\"} " + buf + "\n";
    };
    quantile_line("0.5", snap.p50);
    quantile_line("0.95", snap.p95);
    quantile_line("0.99", snap.p99);
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace treelattice
