#include "obs/trace.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/thread_annotations.h"

namespace treelattice {
namespace obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr size_t kDefaultRingCapacity = 65536;

/// Per-thread event buffer, a drop-oldest ring. Registered (as shared_ptr)
/// in the global collector so events survive thread exit; the buffer's own
/// mutex only contends with trace dumps, never with other recording
/// threads.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events TL_GUARDED_BY(mu);
  /// Index of the oldest event once the ring has wrapped.
  size_t start TL_GUARDED_BY(mu) = 0;
  // tl-analyze: allow(guard-coverage) -- written once at registration
  // (before the buffer is published to the collector), read-only afterwards
  uint32_t tid = 0;
};

struct Collector {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers TL_GUARDED_BY(mu);
  uint32_t next_tid TL_GUARDED_BY(mu) = 1;
  // Trace epoch as steady-clock nanos. Atomic rather than mu-guarded:
  // NowMicros() runs on every span start and must not contend on the
  // collector lock with unrelated threads registering buffers.
  std::atomic<int64_t> epoch_nanos{
      SteadyClock::now().time_since_epoch().count()};
  std::atomic<size_t> ring_capacity{kDefaultRingCapacity};
  std::atomic<uint64_t> dropped{0};

  // Periodic flusher (StartPeriodicFlush / StopPeriodicFlush).
  std::mutex flush_mu;
  std::condition_variable flush_cv;
  std::thread flush_thread TL_GUARDED_BY(flush_mu);
  bool flush_stop TL_GUARDED_BY(flush_mu) = false;
  std::string flush_path TL_GUARDED_BY(flush_mu);
};

Collector& GlobalCollector() {
  // Deliberately leaked: buffers are read during static destruction.
  static Collector* collector = new Collector();  // tl-lint: allow(naked-new)
  return *collector;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Collector& collector = GlobalCollector();
    std::lock_guard<std::mutex> lock(collector.mu);
    fresh->tid = collector.next_tid++;
    collector.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

/// Atomic-enough file replace without io/Env (module DAG: obs sits below
/// io): write a sibling temp file, then rename over the target. A crash
/// mid-write leaves the previous complete trace in place.
bool WriteWholeFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool write_ok = written == content.size() && std::fclose(f) == 0;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

void Tracer::Start() {
  Collector& collector = GlobalCollector();
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    for (auto& buffer : collector.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
      buffer->start = 0;
    }
  }
  collector.dropped.store(0, std::memory_order_relaxed);
  collector.epoch_nanos.store(
      SteadyClock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::SetRingCapacity(size_t events_per_thread) {
  GlobalCollector().ring_capacity.store(
      events_per_thread > 0 ? events_per_thread : 1,
      std::memory_order_relaxed);
}

uint64_t Tracer::DroppedEvents() {
  return GlobalCollector().dropped.load(std::memory_order_relaxed);
}

uint64_t Tracer::NowMicros() {
  Collector& collector = GlobalCollector();
  int64_t now_nanos = SteadyClock::now().time_since_epoch().count();
  int64_t epoch_nanos =
      collector.epoch_nanos.load(std::memory_order_relaxed);
  int64_t delta = now_nanos - epoch_nanos;
  if (delta < 0) delta = 0;  // span opened just before a Start() reset
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::nanoseconds(delta))
          .count());
}

void Tracer::Record(const TraceEvent& event) {
  if (!enabled()) return;
  Collector& collector = GlobalCollector();
  const size_t capacity =
      collector.ring_capacity.load(std::memory_order_relaxed);
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  TraceEvent copy = event;
  copy.tid = buffer.tid;
  if (buffer.events.size() < capacity) {
    buffer.events.push_back(copy);
    return;
  }
  // Ring full (or capacity was lowered): overwrite the oldest event.
  if (buffer.start >= buffer.events.size()) buffer.start = 0;
  buffer.events[buffer.start] = copy;
  buffer.start = (buffer.start + 1) % buffer.events.size();
  collector.dropped.fetch_add(1, std::memory_order_relaxed);
}

size_t Tracer::CollectedEvents() {
  Collector& collector = GlobalCollector();
  std::lock_guard<std::mutex> lock(collector.mu);
  size_t total = 0;
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::string Tracer::ChromeTraceJson() {
  Collector& collector = GlobalCollector();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    for (auto& buffer : collector.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      // Oldest first: [start, end) then the wrapped prefix [0, start).
      for (size_t i = buffer->start; i < buffer->events.size(); ++i) {
        events.push_back(buffer->events[i]);
      }
      for (size_t i = 0; i < buffer->start; ++i) {
        events.push_back(buffer->events[i]);
      }
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name").String(event.name != nullptr ? event.name : "");
    w.Key("cat").String(event.category != nullptr ? event.category : "");
    w.Key("ph").String("X");
    w.Key("ts").Uint(event.ts_micros);
    w.Key("dur").Uint(event.dur_micros);
    w.Key("pid").Int(1);
    w.Key("tid").Uint(event.tid);
    if (event.arg_name != nullptr) {
      w.Key("args").BeginObject();
      w.Key(event.arg_name).Uint(event.arg_value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.TakeString();
}

Status Tracer::StartPeriodicFlush(const std::string& path,
                                  double interval_millis) {
  if (path.empty()) {
    return Status::InvalidArgument("trace flush path must not be empty");
  }
  if (interval_millis <= 0.0) {
    return Status::InvalidArgument("trace flush interval must be positive");
  }
  StopPeriodicFlush();  // at most one flusher
  // Fail fast on an unwritable target instead of from the background
  // thread, where nobody sees the error.
  if (!WriteWholeFile(path, ChromeTraceJson())) {
    return Status::Internal("cannot write trace file " + path);
  }
  Collector& collector = GlobalCollector();
  std::lock_guard<std::mutex> lock(collector.flush_mu);
  collector.flush_stop = false;
  collector.flush_path = path;
  collector.flush_thread = std::thread([path, interval_millis, &collector] {
    const auto interval =
        std::chrono::duration<double, std::milli>(interval_millis);
    std::unique_lock<std::mutex> wait_lock(collector.flush_mu);
    for (;;) {
      if (collector.flush_cv.wait_for(
              wait_lock, interval,
              [&collector]() TL_REQUIRES(collector.flush_mu) {
                return collector.flush_stop;
              })) {
        return;  // StopPeriodicFlush writes the final snapshot
      }
      wait_lock.unlock();
      WriteWholeFile(path, ChromeTraceJson());
      wait_lock.lock();
    }
  });
  return Status::OK();
}

void Tracer::StopPeriodicFlush() {
  Collector& collector = GlobalCollector();
  std::thread flusher;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(collector.flush_mu);
    if (!collector.flush_thread.joinable()) return;
    collector.flush_stop = true;
    flusher = std::move(collector.flush_thread);
    path = collector.flush_path;
  }
  collector.flush_cv.notify_all();
  flusher.join();
  // Final write: the file holds everything recorded up to the stop.
  WriteWholeFile(path, ChromeTraceJson());
}

}  // namespace obs
}  // namespace treelattice
