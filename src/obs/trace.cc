#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.h"

namespace treelattice {
namespace obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Per-thread event buffer. Registered (as shared_ptr) in the global
/// collector so events survive thread exit; the buffer's own mutex only
/// contends with trace dumps, never with other recording threads.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
};

struct Collector {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
  SteadyClock::time_point epoch = SteadyClock::now();
};

Collector& GlobalCollector() {
  static Collector* collector = new Collector();  // leaked: used at exit
  return *collector;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Collector& collector = GlobalCollector();
    std::lock_guard<std::mutex> lock(collector.mu);
    fresh->tid = collector.next_tid++;
    collector.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

}  // namespace

void Tracer::Start() {
  Collector& collector = GlobalCollector();
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    for (auto& buffer : collector.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
    collector.epoch = SteadyClock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

uint64_t Tracer::NowMicros() {
  Collector& collector = GlobalCollector();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - collector.epoch)
          .count());
}

void Tracer::Record(const TraceEvent& event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  TraceEvent copy = event;
  copy.tid = buffer.tid;
  buffer.events.push_back(copy);
}

size_t Tracer::CollectedEvents() {
  Collector& collector = GlobalCollector();
  std::lock_guard<std::mutex> lock(collector.mu);
  size_t total = 0;
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::string Tracer::ChromeTraceJson() {
  Collector& collector = GlobalCollector();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    for (auto& buffer : collector.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name").String(event.name != nullptr ? event.name : "");
    w.Key("cat").String(event.category != nullptr ? event.category : "");
    w.Key("ph").String("X");
    w.Key("ts").Uint(event.ts_micros);
    w.Key("dur").Uint(event.dur_micros);
    w.Key("pid").Int(1);
    w.Key("tid").Uint(event.tid);
    if (event.arg_name != nullptr) {
      w.Key("args").BeginObject();
      w.Key(event.arg_name).Uint(event.arg_value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace treelattice
