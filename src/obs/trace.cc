#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.h"
#include "util/thread_annotations.h"

namespace treelattice {
namespace obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Per-thread event buffer. Registered (as shared_ptr) in the global
/// collector so events survive thread exit; the buffer's own mutex only
/// contends with trace dumps, never with other recording threads.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events TL_GUARDED_BY(mu);
  uint32_t tid = 0;  // written once at registration, read-only afterwards
};

struct Collector {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers TL_GUARDED_BY(mu);
  uint32_t next_tid TL_GUARDED_BY(mu) = 1;
  // Trace epoch as steady-clock nanos. Atomic rather than mu-guarded:
  // NowMicros() runs on every span start and must not contend on the
  // collector lock with unrelated threads registering buffers.
  std::atomic<int64_t> epoch_nanos{
      SteadyClock::now().time_since_epoch().count()};
};

Collector& GlobalCollector() {
  // Deliberately leaked: buffers are read during static destruction.
  static Collector* collector = new Collector();  // tl-lint: allow(naked-new)
  return *collector;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Collector& collector = GlobalCollector();
    std::lock_guard<std::mutex> lock(collector.mu);
    fresh->tid = collector.next_tid++;
    collector.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

}  // namespace

void Tracer::Start() {
  Collector& collector = GlobalCollector();
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    for (auto& buffer : collector.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
  }
  collector.epoch_nanos.store(
      SteadyClock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

uint64_t Tracer::NowMicros() {
  Collector& collector = GlobalCollector();
  int64_t now_nanos = SteadyClock::now().time_since_epoch().count();
  int64_t epoch_nanos =
      collector.epoch_nanos.load(std::memory_order_relaxed);
  int64_t delta = now_nanos - epoch_nanos;
  if (delta < 0) delta = 0;  // span opened just before a Start() reset
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::nanoseconds(delta))
          .count());
}

void Tracer::Record(const TraceEvent& event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  TraceEvent copy = event;
  copy.tid = buffer.tid;
  buffer.events.push_back(copy);
}

size_t Tracer::CollectedEvents() {
  Collector& collector = GlobalCollector();
  std::lock_guard<std::mutex> lock(collector.mu);
  size_t total = 0;
  for (auto& buffer : collector.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::string Tracer::ChromeTraceJson() {
  Collector& collector = GlobalCollector();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    for (auto& buffer : collector.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name").String(event.name != nullptr ? event.name : "");
    w.Key("cat").String(event.category != nullptr ? event.category : "");
    w.Key("ph").String("X");
    w.Key("ts").Uint(event.ts_micros);
    w.Key("dur").Uint(event.dur_micros);
    w.Key("pid").Int(1);
    w.Key("tid").Uint(event.tid);
    if (event.arg_name != nullptr) {
      w.Key("args").BeginObject();
      w.Key(event.arg_name).Uint(event.arg_value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace treelattice
