#ifndef TREELATTICE_OBS_TRACE_H_
#define TREELATTICE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/analysis_annotations.h"
#include "util/status.h"

namespace treelattice {
namespace obs {

/// One completed ("ph":"X") Chrome trace_event. Names and categories are
/// string literals at every call site, so events store raw pointers.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t ts_micros = 0;   ///< start, relative to the trace epoch
  uint64_t dur_micros = 0;  ///< duration
  uint32_t tid = 0;         ///< tracer-assigned sequential thread id
  const char* arg_name = nullptr;  ///< optional single numeric argument
  uint64_t arg_value = 0;
};

/// Process-wide tracing control. Each thread records into its own buffer
/// (created on first span, registered globally), so recording takes no
/// global lock; ChromeTraceJson() gathers every thread's events. Tracing
/// is off by default — a disabled TraceSpan is one relaxed atomic load.
///
/// Buffers are bounded rings (SetRingCapacity; default 64Ki events per
/// thread): once full, the oldest events are overwritten and counted in
/// DroppedEvents(), so a long-running server keeps the recent past instead
/// of growing without limit. StartPeriodicFlush() additionally rewrites the
/// trace file on an interval, so `--trace` output survives a crash or
/// SIGKILL mid-soak instead of existing only at clean exit.
class Tracer {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Discards previously collected events and enables collection. The
  /// trace epoch (ts 0) is the moment of this call.
  static void Start();

  /// Disables collection; collected events remain readable.
  static void Stop();

  /// Serializes all collected events as Chrome trace_event JSON — an
  /// object with a "traceEvents" array of complete ("ph":"X") events —
  /// loadable in chrome://tracing and Perfetto.
  static std::string ChromeTraceJson();

  /// Number of events collected so far (all threads).
  static size_t CollectedEvents();

  /// Microseconds since the trace epoch.
  static uint64_t NowMicros();

  /// Appends one complete event to the calling thread's buffer. No-op
  /// when tracing is disabled.
  // Drop-oldest ring: the buffer grows to its capacity once, then
  // overwrites in place — no steady-state allocation.
  TL_ALLOC_OK static void Record(const TraceEvent& event);

  /// Caps every thread's buffer at `events_per_thread` events (minimum 1);
  /// beyond that, a thread's oldest events are overwritten. Applies to
  /// events recorded after the call. Default: 65536.
  static void SetRingCapacity(size_t events_per_thread);

  /// Events overwritten by full rings since the last Start().
  static uint64_t DroppedEvents();

  /// Starts a background thread that rewrites `path` (atomically: temp
  /// file + rename) with ChromeTraceJson() every `interval_millis`.
  /// Replaces any flusher already running. The flusher deliberately uses
  /// plain stdio, not io/Env — obs must stay below io in the module DAG.
  static Status StartPeriodicFlush(const std::string& path,
                                   double interval_millis);

  /// Stops the periodic flusher (no-op when none is running) after one
  /// final write, so the file always holds the complete trace on clean
  /// shutdown.
  static void StopPeriodicFlush();

 private:
  friend class TraceSpan;
  static std::atomic<bool> enabled_;
};

/// RAII span: records a complete trace event covering its lifetime. Free
/// when tracing is disabled. The name (and optional arg name) must be
/// string literals or otherwise outlive the trace dump.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "treelattice")
      : active_(Tracer::enabled()) {
    if (active_) {
      event_.name = name;
      event_.category = category;
      event_.ts_micros = Tracer::NowMicros();
    }
  }

  /// Attaches a single numeric argument (e.g. the mining level) rendered
  /// into the event's "args" object.
  void SetArg(const char* arg_name, uint64_t value) {
    if (active_) {
      event_.arg_name = arg_name;
      event_.arg_value = value;
    }
  }

  ~TraceSpan() {
    if (active_ && Tracer::enabled()) {
      event_.dur_micros = Tracer::NowMicros() - event_.ts_micros;
      Tracer::Record(event_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceEvent event_;
  bool active_;
};

}  // namespace obs
}  // namespace treelattice

#endif  // TREELATTICE_OBS_TRACE_H_
