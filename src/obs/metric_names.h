#ifndef TREELATTICE_OBS_METRIC_NAMES_H_
#define TREELATTICE_OBS_METRIC_NAMES_H_

/// The single registry of observability metric names.
///
/// Every metric TreeLattice records is declared here and nowhere else;
/// instrumentation sites pass these constants to
/// MetricsRegistry::counter()/gauge()/histogram(). tools/tl_lint.py
/// rejects string literals at registry call sites anywhere under src/, so
/// the full telemetry surface of the system is readable in this one file
/// (and dashboards/alerts can be reviewed against it in one diff).
///
/// Naming scheme: lowercase dot-separated "<subsystem>.<metric>"; dots
/// become underscores in the Prometheus rendering (metrics.h).

namespace treelattice {
namespace obs {
namespace metric_names {

// -- estimators (core/estimator_metrics.h) ----------------------------------
inline constexpr char kEstimatorSummaryHits[] = "estimator.summary_hits";
inline constexpr char kEstimatorSummaryMisses[] = "estimator.summary_misses";
inline constexpr char kEstimatorExhaustiveZeros[] =
    "estimator.exhaustive_zeros";
inline constexpr char kEstimatorDecompositions[] = "estimator.decompositions";
inline constexpr char kEstimatorZeroOverlapFallbacks[] =
    "estimator.zero_overlap_fallbacks";
inline constexpr char kEstimatorMemoHits[] = "estimator.memo_hits";
inline constexpr char kEstimatorDecompositionDepth[] =
    "estimator.decomposition_depth";
inline constexpr char kEstimatorVotingFanout[] = "estimator.voting_fanout";
inline constexpr char kEstimatorCoverSteps[] = "estimator.cover_steps";
inline constexpr char kEstimatorDeadlineExceeded[] =
    "estimator.deadline_exceeded";
inline constexpr char kEstimatorDegraded[] = "estimator.degraded";

// -- mining (mining/lattice_builder.cc, mining/freqt_builder.cc) ------------
inline constexpr char kMiningCandidatesGenerated[] =
    "mining.candidates_generated";
inline constexpr char kMiningCandidatesPrunedApriori[] =
    "mining.candidates_pruned_apriori";
inline constexpr char kMiningCandidatesCounted[] = "mining.candidates_counted";
inline constexpr char kMiningPatternsInserted[] = "mining.patterns_inserted";
inline constexpr char kMiningLevelBuildMicros[] = "mining.level_build_micros";
inline constexpr char kMiningFreqtOrderedPatterns[] =
    "mining.freqt.ordered_patterns";
inline constexpr char kMiningFreqtPeakOccurrences[] =
    "mining.freqt.peak_occurrences";
inline constexpr char kMiningFreqtLevelBuildMicros[] =
    "mining.freqt.level_build_micros";

// -- summary persistence (summary/summary_format.cc) ------------------------
inline constexpr char kSummarySaves[] = "summary.saves";
inline constexpr char kSummarySaveBytes[] = "summary.save_bytes";
inline constexpr char kSummaryLoads[] = "summary.loads";
inline constexpr char kSummaryLoadBytes[] = "summary.load_bytes";
inline constexpr char kSummaryCrcFailures[] = "summary.crc_failures";
inline constexpr char kSummarySalvageLoads[] = "summary.salvage_loads";

// -- io (io/posix_env.cc, io/fault_env.cc) ----------------------------------
inline constexpr char kIoBytesWritten[] = "io.bytes_written";
inline constexpr char kIoBytesRead[] = "io.bytes_read";
inline constexpr char kIoAppends[] = "io.appends";
inline constexpr char kIoReads[] = "io.reads";
inline constexpr char kIoFsyncs[] = "io.fsyncs";
inline constexpr char kIoRenames[] = "io.renames";
inline constexpr char kIoDeletes[] = "io.deletes";
inline constexpr char kIoFilesOpened[] = "io.files_opened";
inline constexpr char kIoFaultInjectedFailures[] =
    "io.fault.injected_failures";

// -- match (match/brute_force.cc) -------------------------------------------
inline constexpr char kMatchBruteForceNodesVisited[] =
    "match.brute_force.nodes_visited";

// -- serve (serve/server.cc, serve/snapshot.cc) -----------------------------
inline constexpr char kServeRequests[] = "serve.requests";
inline constexpr char kServeResponsesOk[] = "serve.responses_ok";
inline constexpr char kServeResponsesError[] = "serve.responses_error";
inline constexpr char kServeShed[] = "serve.shed";
inline constexpr char kServeQueueDepthPeak[] = "serve.queue_depth_peak";
inline constexpr char kServeLatencyMicros[] = "serve.latency_micros";
inline constexpr char kServeReloads[] = "serve.reloads";
inline constexpr char kServeReloadFailures[] = "serve.reload_failures";
inline constexpr char kServeSnapshotVersion[] = "serve.snapshot_version";

// -- serve batch envelopes (serve/server.cc) --------------------------------
// One "line" is one JSON array request carrying N queries; "queries" counts
// the queries inside batch lines only (singles keep serve.requests).
inline constexpr char kServeBatchLines[] = "serve.batch.lines";
inline constexpr char kServeBatchQueries[] = "serve.batch.queries";
inline constexpr char kServeBatchDupQueries[] = "serve.batch.dup_queries";
inline constexpr char kServeBatchCacheHits[] = "serve.batch.cache_hits";
inline constexpr char kServeBatchSize[] = "serve.batch.size";
inline constexpr char kServeBatchShedQueries[] = "serve.batch.shed_queries";

// -- serve request-stage timeline (serve/request_trace.cc) ------------------
// One histogram per adjacent pair of RequestTrace stamps; a request whose
// path skips a stage (error before estimate, orphaned before flush) simply
// records nothing there. DESIGN.md §12 documents the taxonomy.
inline constexpr char kServeStageAdmitMicros[] = "serve.stage.admit_micros";
inline constexpr char kServeStageQueueWaitMicros[] =
    "serve.stage.queue_wait_micros";
inline constexpr char kServeStageEstimateMicros[] =
    "serve.stage.estimate_micros";
inline constexpr char kServeStageSerializeMicros[] =
    "serve.stage.serialize_micros";
inline constexpr char kServeStageFlushMicros[] = "serve.stage.flush_micros";
inline constexpr char kServeStageTotalMicros[] = "serve.stage.total_micros";
inline constexpr char kServeQueueDepth[] = "serve.queue_depth";
inline constexpr char kServeSlowQueries[] = "serve.slow_queries";

// -- admin endpoint (serve/admin.cc, serve/transport.cc) --------------------
inline constexpr char kAdminRequests[] = "admin.requests";
inline constexpr char kAdminResponsesError[] = "admin.responses_error";
inline constexpr char kAdminActive[] = "admin.active";
inline constexpr char kAdminBytesOut[] = "admin.bytes_out";

// -- serve network transport (serve/transport.cc) ---------------------------
inline constexpr char kNetAccepted[] = "serve.net.accepted";
inline constexpr char kNetRejected[] = "serve.net.rejected";
inline constexpr char kNetActive[] = "serve.net.active";
inline constexpr char kNetFrames[] = "serve.net.frames";
inline constexpr char kNetFramesOversized[] = "serve.net.frames_oversized";
inline constexpr char kNetBytesIn[] = "serve.net.bytes_in";
inline constexpr char kNetBytesOut[] = "serve.net.bytes_out";
inline constexpr char kNetIdleTimeouts[] = "serve.net.idle_timeouts";
inline constexpr char kNetRequestTimeouts[] = "serve.net.request_timeouts";
inline constexpr char kNetBackpressureStalls[] =
    "serve.net.backpressure_stalls";
inline constexpr char kNetResets[] = "serve.net.resets";
inline constexpr char kNetResponsesOrphaned[] =
    "serve.net.responses_orphaned";
inline constexpr char kNetInjectedFaults[] = "serve.net.injected_faults";
inline constexpr char kNetDrainMicros[] = "serve.net.drain_micros";
inline constexpr char kNetLoopLagMicros[] = "serve.net.loop_lag_micros";
inline constexpr char kNetDispatchBatch[] = "serve.net.dispatch_batch";
inline constexpr char kNetPollerErrors[] = "serve.net.poller_errors";

// -- estimate cache (serve/estimate_cache.cc) -------------------------------
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheEvictions[] = "cache.evictions";
inline constexpr char kCacheInvalidations[] = "cache.invalidations";
inline constexpr char kCacheProbeMicros[] = "cache.probe_micros";

}  // namespace metric_names
}  // namespace obs
}  // namespace treelattice

#endif  // TREELATTICE_OBS_METRIC_NAMES_H_
