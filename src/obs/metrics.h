#ifndef TREELATTICE_OBS_METRICS_H_
#define TREELATTICE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/thread_annotations.h"

namespace treelattice {
namespace obs {

/// Global observability switch. Reads the TREELATTICE_OBS environment
/// variable once on first use: "off", "0", or "false" disable all metric
/// collection (every Increment/Set/Record becomes a cheap early-out branch
/// so instrumented builds can be A/B-measured; see
/// tools/check_metrics_overhead.sh). Anything else — including unset —
/// leaves collection on.
bool Enabled();

/// Test hook: overrides the environment-derived switch for this process.
void SetEnabledForTest(bool enabled);

/// A monotonic counter. Increment is wait-free (one relaxed atomic add);
/// safe to call from any thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (last write wins across threads).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `value` if it is larger (peak tracking).
  void SetMax(int64_t value);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log-bucketed histogram of non-negative integer samples (latencies in
/// micros, sizes in bytes, depths, fan-outs). Bucket 0 holds the value 0;
/// bucket i >= 1 holds [2^(i-1), 2^i). Record is wait-free; snapshots are
/// taken without stopping writers and are only approximately consistent
/// under concurrent recording — fine for reporting.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void Record(uint64_t value);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  ///< 0 when count == 0
    uint64_t max = 0;
    double p50 = 0.0;  ///< bucket-interpolated percentiles
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot GetSnapshot() const;

  void Reset();

 private:
  static int BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(int index);
  static uint64_t BucketUpperBound(int index);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// The process-wide metric registry: named counters, gauges, and
/// histograms. Lookup interns the name and returns a stable pointer, so
/// instrumentation sites cache it in a function-local static and pay only
/// the atomic update per event:
///
///   static obs::Counter* hits =
///       obs::MetricsRegistry::Default()->counter(
///           obs::metric_names::kEstimatorSummaryHits);
///   hits->Increment();
///
/// Naming scheme (enforced by tools/tl_lint.py, see DESIGN.md §8):
/// lowercase dot-separated "<subsystem>.<metric>", e.g. "io.bytes_written",
/// "estimator.decomposition_depth", and every name used from src/ must be
/// a constant declared in obs/metric_names.h. Dots become underscores in
/// the Prometheus rendering.
class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry* Default();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Dumps every registered metric as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                  "p50":..,"p95":..,"p99":..}}}
  /// Keys are sorted; the output is deterministic for a quiesced process.
  std::string ToJson() const;

  /// Dumps counters and gauges as Prometheus exposition text with a
  /// "treelattice_" prefix; histograms become _count/_sum plus quantile
  /// gauge lines.
  std::string ToPrometheusText() const;

  /// Zeroes every registered metric (registrations and cached pointers
  /// stay valid). For tests and per-run deltas.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  // The maps only grow; values are stable unique_ptrs, so the pointers
  // handed out by counter()/gauge()/histogram() stay valid without mu_.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      TL_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace treelattice

#endif  // TREELATTICE_OBS_METRICS_H_
