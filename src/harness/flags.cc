#include "harness/flags.h"

#include <cerrno>
#include <cstdlib>

#include "util/string_util.h"

namespace treelattice {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_.emplace(std::string(arg), "");
    } else {
      values_.emplace(std::string(arg.substr(0, eq)),
                      std::string(arg.substr(eq + 1)));
    }
  }
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0') {
    return fallback;
  }
  return value;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0') {
    return fallback;
  }
  return value;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

}  // namespace treelattice
