#ifndef TREELATTICE_HARNESS_BENCH_REPORT_H_
#define TREELATTICE_HARNESS_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "harness/flags.h"
#include "util/timer.h"

namespace treelattice {

/// Machine-readable run record for the bench binaries. Every bench accepts
/// `--json=<path>`; when set, WriteIfRequested() (or Finish()) writes one
/// JSON object with the bench name, the parsed flags as `params`, any
/// AddResult() values under `results`, total wall seconds, the exit code,
/// and a snapshot of the metrics registry — so CI can diff runs without
/// scraping the human tables.
///
///   int main(int argc, char** argv) {
///     treelattice::Flags flags(argc, argv);
///     treelattice::BenchReport report("bench_fig7_accuracy", flags);
///     return report.Finish(treelattice::Run(flags));
///   }
class BenchReport {
 public:
  /// Starts the wall clock. `flags` supplies --json and the params dump.
  BenchReport(std::string name, const Flags& flags);

  /// Records a named numeric result (estimation error, patterns mined, ...).
  void AddResult(const std::string& key, double value);

  /// Writes the report if --json=<path> was given. Errors go to stderr and
  /// are otherwise ignored: reporting must not fail the bench.
  void WriteIfRequested(int exit_code);

  /// Convenience: WriteIfRequested(exit_code), then returns exit_code.
  int Finish(int exit_code);

 private:
  std::string name_;
  std::string json_path_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, double>> results_;
  WallTimer timer_;
  bool written_ = false;
};

}  // namespace treelattice

#endif  // TREELATTICE_HARNESS_BENCH_REPORT_H_
