#include "harness/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace treelattice {

double SanityBound(const std::vector<double>& true_counts) {
  double p10 = Percentile(true_counts, 10.0);
  return std::max(10.0, p10);
}

double RelativeErrorPct(double true_count, double estimate, double sanity) {
  double denom = std::max(sanity, true_count);
  if (denom <= 0.0) return 0.0;
  return 100.0 * std::abs(true_count - estimate) / denom;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  if (std::isnan(pct)) return std::numeric_limits<double>::quiet_NaN();
  for (double v : values) {
    if (std::isnan(v)) return std::numeric_limits<double>::quiet_NaN();
  }
  pct = std::clamp(pct, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> ErrorCdf(std::vector<double> errors) {
  std::vector<CdfPoint> cdf;
  if (errors.empty()) return cdf;
  std::sort(errors.begin(), errors.end());
  cdf.reserve(errors.size());
  for (size_t i = 0; i < errors.size(); ++i) {
    cdf.push_back({errors[i], 100.0 * static_cast<double>(i + 1) /
                                  static_cast<double>(errors.size())});
  }
  return cdf;
}

}  // namespace treelattice
