#include "harness/bench_report.h"

#include <algorithm>
#include <cstdio>

#include "io/env.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace treelattice {

BenchReport::BenchReport(std::string name, const Flags& flags)
    : name_(std::move(name)), json_path_(flags.GetString("json", "")) {
  params_.assign(flags.All().begin(), flags.All().end());
  std::sort(params_.begin(), params_.end());
}

void BenchReport::AddResult(const std::string& key, double value) {
  results_.emplace_back(key, value);
}

void BenchReport::WriteIfRequested(int exit_code) {
  if (json_path_.empty() || written_) return;
  written_ = true;

  JsonWriter w;
  w.BeginObject();
  w.Key("name").String(name_);
  w.Key("exit_code").Int(exit_code);
  w.Key("wall_seconds").Double(timer_.ElapsedSeconds());
  w.Key("params").BeginObject();
  for (const auto& [key, value] : params_) {
    if (key == "json") continue;  // the report's own destination
    w.Key(key).String(value);
  }
  w.EndObject();
  w.Key("results").BeginObject();
  for (const auto& [key, value] : results_) {
    w.Key(key).Double(value);
  }
  w.EndObject();
  w.Key("metrics").Raw(obs::MetricsRegistry::Default()->ToJson());
  w.EndObject();

  if (Status s = WriteFileAtomic(Env::Default(), json_path_, w.str());
      !s.ok()) {
    std::fprintf(stderr, "--json: %s\n", s.ToString().c_str());
  }
}

int BenchReport::Finish(int exit_code) {
  WriteIfRequested(exit_code);
  return exit_code;
}

}  // namespace treelattice
