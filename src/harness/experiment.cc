#include "harness/experiment.h"

#include <algorithm>
#include <sstream>

#include "core/fixed_size_estimator.h"
#include "core/recursive_estimator.h"
#include "util/timer.h"

namespace treelattice {

Result<DatasetBundle> PrepareDataset(const std::string& name,
                                     const ExperimentOptions& options,
                                     bool build_sketch) {
  DatasetBundle bundle;
  bundle.name = name;
  DatasetOptions gen;
  gen.seed = options.seed;
  gen.scale = options.scale > 0 ? options.scale : DefaultScale(name);
  TL_ASSIGN_OR_RETURN(bundle.doc, GenerateDataset(name, gen));

  LatticeBuildOptions build;
  build.max_level = options.lattice_level;
  TL_ASSIGN_OR_RETURN(
      bundle.summary,
      BuildLattice(bundle.doc, build, &bundle.build_stats));

  if (build_sketch) {
    TreeSketchOptions sketch_options;
    sketch_options.memory_budget_bytes = options.treesketch_budget_bytes;
    sketch_options.merge_candidates_per_step = options.sketch_merge_candidates;
    sketch_options.seed = options.seed;
    TL_ASSIGN_OR_RETURN(
        bundle.sketch,
        TreeSketch::Build(bundle.doc, sketch_options, &bundle.sketch_stats));
  }
  return bundle;
}

Result<WorkloadEval> PrepareWorkload(const Document& doc,
                                     const MatchCounter& counter,
                                     int query_size,
                                     const ExperimentOptions& options) {
  WorkloadEval eval;
  eval.query_size = query_size;
  WorkloadOptions workload;
  workload.seed = options.seed + static_cast<uint64_t>(query_size) * 1013;
  workload.query_size = query_size;
  workload.num_queries = options.queries_per_size;
  TL_ASSIGN_OR_RETURN(eval.queries, GeneratePositiveWorkload(doc, workload));
  if (eval.queries.empty()) {
    return Status::Internal("no positive queries of size " +
                            std::to_string(query_size));
  }
  eval.true_counts.reserve(eval.queries.size());
  for (const Twig& q : eval.queries) {
    eval.true_counts.push_back(static_cast<double>(counter.Count(q)));
  }
  eval.sanity = SanityBound(eval.true_counts);
  return eval;
}

Result<EstimatorRun> RunEstimator(SelectivityEstimator& estimator,
                                  const WorkloadEval& workload) {
  EstimatorRun run;
  run.estimator = estimator.name();
  run.errors.reserve(workload.queries.size());
  WallTimer timer;
  double total_ms = 0.0;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    timer.Restart();
    double estimate;
    TL_ASSIGN_OR_RETURN(estimate, estimator.Estimate(workload.queries[i]));
    total_ms += timer.ElapsedMillis();
    run.errors.push_back(RelativeErrorPct(workload.true_counts[i], estimate,
                                          workload.sanity));
  }
  run.avg_error_pct = Mean(run.errors);
  run.avg_time_ms = total_ms / static_cast<double>(workload.queries.size());
  return run;
}

Result<AccuracySweep> RunAccuracySweep(const DatasetBundle& bundle,
                                       const ExperimentOptions& options,
                                       int min_size, int max_size) {
  AccuracySweep sweep;
  MatchCounter counter(bundle.doc);

  RecursiveDecompositionEstimator recursive(&bundle.summary);
  RecursiveDecompositionEstimator voting(
      &bundle.summary, RecursiveDecompositionEstimator::Options{true, 0});
  FixedSizeDecompositionEstimator fixed(&bundle.summary);
  TreeSketchEstimator sketches(&bundle.sketch);
  std::vector<SelectivityEstimator*> estimators = {&recursive, &voting,
                                                   &fixed, &sketches};
  for (SelectivityEstimator* estimator : estimators) {
    sweep.estimator_names.push_back(estimator->name());
  }

  for (int size = min_size; size <= max_size; ++size) {
    WorkloadEval workload;
    TL_ASSIGN_OR_RETURN(workload,
                        PrepareWorkload(bundle.doc, counter, size, options));
    std::vector<EstimatorRun> runs;
    for (SelectivityEstimator* estimator : estimators) {
      EstimatorRun run;
      TL_ASSIGN_OR_RETURN(run, RunEstimator(*estimator, workload));
      runs.push_back(std::move(run));
    }
    sweep.sizes.push_back(size);
    sweep.runs.push_back(std::move(runs));
    sweep.workloads.push_back(std::move(workload));
  }
  return sweep;
}

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  // Column widths across header and body.
  std::vector<size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace treelattice
