#ifndef TREELATTICE_HARNESS_EXPERIMENT_H_
#define TREELATTICE_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "datagen/datasets.h"
#include "harness/metrics.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "treesketch/tree_sketch.h"
#include "util/result.h"
#include "workload/workload.h"
#include "xml/document.h"

namespace treelattice {

/// Options shared by the per-table/per-figure experiment drivers.
struct ExperimentOptions {
  uint64_t seed = 42;
  /// 0 = the dataset's DefaultScale().
  int scale = 0;
  int lattice_level = 4;
  /// TreeSketches synopsis budget. The paper uses 50 KB against documents
  /// of 4.5-23 MB (~0.2-1% of the data); our emulators run at ~1/5-1/8
  /// scale, so 3 KB preserves the paper's compression ratio. Pass
  /// --budget_kb to the benches to override.
  size_t treesketch_budget_bytes = 3 * 1024;
  /// 0 = exhaustive greedy merging (the faithful, slow original); a
  /// positive value samples that many candidate pairs per merge step.
  /// Accuracy-focused figures default to a fast sampled build; Table 3
  /// (construction cost) uses the exhaustive one.
  size_t sketch_merge_candidates = 512;
  size_t queries_per_size = 60;
};

/// A dataset with everything the experiments need: the document, its
/// K-lattice (with build stats), and the TreeSketch baseline synopsis (with
/// build stats). Heavy to construct; build once per bench binary.
struct DatasetBundle {
  std::string name;
  Document doc;
  LatticeSummary summary{2};
  LatticeBuildStats build_stats;
  TreeSketch sketch;
  TreeSketchStats sketch_stats;
};

/// Generates the named dataset and builds both summaries.
Result<DatasetBundle> PrepareDataset(const std::string& name,
                                     const ExperimentOptions& options,
                                     bool build_sketch = true);

/// A positive workload of fixed query size annotated with ground truth.
struct WorkloadEval {
  int query_size = 0;
  std::vector<Twig> queries;
  std::vector<double> true_counts;
  double sanity = 10.0;
};

/// Samples `options.queries_per_size` positive queries of `query_size` and
/// computes their true selectivities and the sanity bound.
Result<WorkloadEval> PrepareWorkload(const Document& doc,
                                     const MatchCounter& counter,
                                     int query_size,
                                     const ExperimentOptions& options);

/// Result of running one estimator over one workload.
struct EstimatorRun {
  std::string estimator;
  double avg_error_pct = 0.0;
  double avg_time_ms = 0.0;
  std::vector<double> errors;  // per query, in workload order
};

/// Evaluates the estimator on every workload query, recording the paper's
/// error metric and per-query response time.
Result<EstimatorRun> RunEstimator(SelectivityEstimator& estimator,
                                  const WorkloadEval& workload);

/// Per-size, per-estimator results of the Fig. 7/8/9 accuracy sweep: the
/// four estimators (recursive, recursive+voting, fixed-size, treesketches)
/// run over positive workloads of sizes [min_size, max_size].
struct AccuracySweep {
  std::vector<int> sizes;
  std::vector<std::string> estimator_names;
  /// runs[size_index][estimator_index]
  std::vector<std::vector<EstimatorRun>> runs;
  /// Workloads per size (queries + ground truth), parallel to `sizes`.
  std::vector<WorkloadEval> workloads;
};

/// Runs the standard four-estimator sweep used by Figures 7, 8 and 9.
Result<AccuracySweep> RunAccuracySweep(const DatasetBundle& bundle,
                                       const ExperimentOptions& options,
                                       int min_size, int max_size);

/// Fixed-width text table used to render every reproduced table/figure as
/// aligned rows on stdout.
class TextTable {
 public:
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Renders with columns padded to their widest cell.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace treelattice

#endif  // TREELATTICE_HARNESS_EXPERIMENT_H_
