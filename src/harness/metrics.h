#ifndef TREELATTICE_HARNESS_METRICS_H_
#define TREELATTICE_HARNESS_METRICS_H_

#include <cstdint>
#include <vector>

namespace treelattice {

/// Sanity bound for the paper's error metric (Section 5.1): the 10th
/// percentile of the true query counts in the workload, floored at 10.
/// An empty workload has no percentile, so the bound is the floor (10).
double SanityBound(const std::vector<double>& true_counts);

/// The paper's error for one query: |s - ŝ| / max(sanity, s), reported as a
/// percentage.
double RelativeErrorPct(double true_count, double estimate, double sanity);

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& values);

/// Percentile of `values` by linear interpolation between closest ranks
/// (operates on a sorted copy). Edge cases:
///   - empty input         -> 0.0
///   - single element      -> that element, for every pct
///   - pct outside [0,100] -> clamped (pct<=0 -> min, pct>=100 -> max)
///   - NaN pct or NaN values in the input -> NaN
double Percentile(std::vector<double> values, double pct);

/// Points of the cumulative distribution of `errors`: for each sorted error
/// value e, the fraction (in percent) of queries with error <= e.
struct CdfPoint {
  double error_pct;
  double cumulative_pct;
};
std::vector<CdfPoint> ErrorCdf(std::vector<double> errors);

}  // namespace treelattice

#endif  // TREELATTICE_HARNESS_METRICS_H_
