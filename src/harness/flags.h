#ifndef TREELATTICE_HARNESS_FLAGS_H_
#define TREELATTICE_HARNESS_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace treelattice {

/// Minimal "--key=value" command-line parser for the bench binaries.
/// Unrecognized arguments are ignored (google-benchmark flags pass through).
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Integer flag with default. A value that is not a complete decimal
  /// integer (or overflows int64) yields the fallback — "--level=abc"
  /// must not silently become 0.
  int64_t GetInt(const std::string& key, int64_t fallback) const;

  /// Floating-point flag with default; malformed values yield the
  /// fallback, as with GetInt.
  double GetDouble(const std::string& key, double fallback) const;

  /// Boolean flag: present without value or "=true"/"=1" means true.
  bool GetBool(const std::string& key, bool fallback) const;

  /// String flag with default.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Every parsed --key=value pair (value "" for bare --key), for report
  /// emitters that record the run's parameters.
  const std::unordered_map<std::string, std::string>& All() const {
    return values_;
  }

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace treelattice

#endif  // TREELATTICE_HARNESS_FLAGS_H_
