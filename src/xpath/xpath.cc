#include "xpath/xpath.h"

#include "util/string_util.h"
#include "xml/value_buckets.h"

namespace treelattice {

namespace {

/// Recursive-descent compiler over the XPath subset grammar.
class XPathCompiler {
 public:
  XPathCompiler(std::string_view text, LabelDict* dict, int value_buckets)
      : text_(text), dict_(dict), value_buckets_(value_buckets) {}

  Result<Twig> Compile() {
    SkipSpace();
    if (!AtEnd() && Peek() == '/') {
      Advance();
      if (!AtEnd() && Peek() == '/') {
        return Status::InvalidArgument(
            "descendant axis '//' is not supported: twig queries relate "
            "elements by parent-child edges only");
      }
    }
    Twig twig;
    TL_RETURN_IF_ERROR(ParsePath(&twig, -1, 0));
    SkipSpace();
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    if (twig.empty()) {
      return Status::InvalidArgument("empty XPath expression");
    }
    return twig;
  }

 private:
  /// Bound on predicate nesting ("a[a[a[...]]]"). Far beyond any twig the
  /// paper's workloads use, but low enough that a hostile query cannot
  /// drive the recursive-descent compiler into stack overflow.
  static constexpr int kMaxPredicateDepth = 128;

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }
  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t')) ++pos_;
  }

  Result<std::string_view> ParseName() {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      bool name_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                       c == '.' || c == ':';
      if (!name_char) break;
      ++pos_;
    }
    if (pos_ == start) {
      if (!AtEnd() && Peek() == '*') {
        return Status::InvalidArgument("wildcard '*' is not supported");
      }
      if (!AtEnd() && Peek() == '@') {
        return Status::InvalidArgument(
            "attribute axis '@' is not supported (values are not modeled)");
      }
      return Status::InvalidArgument("expected element name at offset " +
                                     std::to_string(start));
    }
    return text_.substr(start, pos_ - start);
  }

  /// Parses `= "literal"` and attaches the bucketed value leaf to `node`.
  Status ParseValueTest(Twig* twig, int node) {
    Advance();  // '='
    SkipSpace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::InvalidArgument(
          "expected quoted literal after '=' at offset " +
          std::to_string(pos_));
    }
    char quote = Peek();
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    std::string_view literal = text_.substr(start, pos_ - start);
    Advance();  // closing quote
    twig->AddNode(dict_->Intern(ValueBucketLabel(literal, value_buckets_)),
                  node);
    SkipSpace();
    return Status::OK();
  }

  /// Parses `name pred* value-test? ('/' ...)*` attaching under `parent`.
  /// `depth` counts predicate nesting, the only source of recursion.
  Status ParsePath(Twig* twig, int parent, int depth) {
    if (depth > kMaxPredicateDepth) {
      return Status::InvalidArgument(
          "predicates nested deeper than " +
          std::to_string(kMaxPredicateDepth) + " at offset " +
          std::to_string(pos_));
    }
    while (true) {
      std::string_view name;
      TL_ASSIGN_OR_RETURN(name, ParseName());
      int node = twig->AddNode(dict_->Intern(name), parent);
      SkipSpace();
      while (!AtEnd() && Peek() == '[') {
        Advance();  // '['
        SkipSpace();
        if (!AtEnd() && (Peek() >= '0' && Peek() <= '9')) {
          return Status::InvalidArgument(
              "positional predicates are not supported");
        }
        if (!AtEnd() && Peek() == '.') {
          // [.="literal"] — value test on this step's node.
          Advance();  // '.'
          SkipSpace();
          if (AtEnd() || Peek() != '=') {
            return Status::InvalidArgument(
                "expected '=' after '.' in predicate");
          }
          TL_RETURN_IF_ERROR(ParseValueTest(twig, node));
        } else {
          TL_RETURN_IF_ERROR(ParsePath(twig, node, depth + 1));
        }
        SkipSpace();
        if (AtEnd() || Peek() != ']') {
          return Status::InvalidArgument("unterminated predicate '['");
        }
        Advance();  // ']'
        SkipSpace();
      }
      if (!AtEnd() && Peek() == '=') {
        // step="literal" — value test on this step's node.
        TL_RETURN_IF_ERROR(ParseValueTest(twig, node));
      }
      if (AtEnd() || Peek() != '/') return Status::OK();
      Advance();  // '/'
      if (!AtEnd() && Peek() == '/') {
        return Status::InvalidArgument(
            "descendant axis '//' is not supported");
      }
      parent = node;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  LabelDict* dict_;
  int value_buckets_;
};

void RenderNode(const Twig& twig, const LabelDict& dict, int node,
                std::string* out) {
  // The path spine (first child) is iterated, not recursed: spine length
  // is unbounded ("a/a/a/..."), while predicate nesting — the only
  // recursion left — is bounded by the twig's branching depth.
  while (true) {
    out->append(dict.Name(twig.label(node)));
    const std::vector<int>& kids = twig.children(node);
    if (kids.empty()) return;
    for (size_t i = 1; i < kids.size(); ++i) {
      out->push_back('[');
      RenderNode(twig, dict, kids[i], out);
      out->push_back(']');
    }
    out->push_back('/');
    node = kids[0];
  }
}

}  // namespace

Result<Twig> CompileXPath(std::string_view xpath, LabelDict* dict) {
  return CompileXPath(xpath, dict, XPathOptions());
}

Result<Twig> CompileXPath(std::string_view xpath, LabelDict* dict,
                          const XPathOptions& options) {
  if (dict == nullptr) {
    return Status::InvalidArgument("CompileXPath: dict must not be null");
  }
  std::string_view trimmed = TrimWhitespace(xpath);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty XPath expression");
  }
  XPathCompiler compiler(trimmed, dict, options.value_buckets);
  return compiler.Compile();
}

std::string TwigToXPath(const Twig& twig, const LabelDict& dict) {
  if (twig.empty()) return std::string();
  std::string out = "/";
  RenderNode(twig, dict, twig.root(), &out);
  return out;
}

}  // namespace treelattice
