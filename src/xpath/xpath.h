#ifndef TREELATTICE_XPATH_XPATH_H_
#define TREELATTICE_XPATH_XPATH_H_

#include <string>
#include <string_view>

#include "twig/twig.h"
#include "util/result.h"
#include "xml/label_dict.h"

namespace treelattice {

/// Options for XPath compilation.
struct XPathOptions {
  /// Value-bucket count for value predicates; must match the
  /// XmlParseOptions::value_buckets used when the document was parsed
  /// with model_values.
  int value_buckets = 64;
};

/// Compiles a practical XPath subset into a Twig query.
///
/// Supported grammar (child axis only — the paper's twig queries relate
/// elements by parent-child edges):
///
///   xpath      := '/'? step ('/' step)*
///   step       := name predicate* value-test?
///   predicate  := '[' '.' value-test ']' | '[' rel-path ']'
///   rel-path   := step ('/' step)*          (predicates nest)
///   value-test := '=' '"' literal '"'       (or single quotes)
///
/// Examples:
///   /site/open_auctions/open_auction[bidder/time][seller]
///   laptop[brand][price]
///   a/b[c[d]/e]
///   movie[genre="action"][year]            (value predicate)
///   movie[.="classic"]                     (value on the step itself)
///
/// A leading '/' is cosmetic: twig selectivity counts matches anywhere in
/// the document, exactly as Definition 1 does (use a root-anchored twig by
/// naming the document root as the first step). Value predicates compile
/// to synthetic "=<bucket>" leaf labels and require the document to have
/// been parsed with XmlParseOptions::model_values (see
/// xml/value_buckets.h). The descendant axis '//', wildcards, positional
/// predicates and attributes are rejected with InvalidArgument.
///
/// Labels are interned into `dict` so the twig is directly usable against
/// documents sharing that dictionary.
Result<Twig> CompileXPath(std::string_view xpath, LabelDict* dict);
Result<Twig> CompileXPath(std::string_view xpath, LabelDict* dict,
                          const XPathOptions& options);

/// Renders a twig back as an XPath expression (first-child spine becomes
/// the path; remaining children become predicates). Useful for reporting.
std::string TwigToXPath(const Twig& twig, const LabelDict& dict);

}  // namespace treelattice

#endif  // TREELATTICE_XPATH_XPATH_H_
