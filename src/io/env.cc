#include "io/env.h"

namespace treelattice {

Status WriteFileAtomic(Env* env, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<WritableFile>> file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();

  Status status = (*file)->Append(contents);
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (status.ok()) status = env->RenameFile(tmp, path);
  if (!status.ok()) {
    IgnoreStatus((*file)->Close(),
                 "best-effort cleanup; the original error is what the "
                 "caller needs");
    IgnoreStatus(env->DeleteFile(tmp),
                 "best-effort temp removal; an orphaned .tmp never shadows "
                 "the real file (rename is the only publish step)");
    return status;
  }
  return Status::OK();
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  out->clear();
  Result<uint64_t> size = env->GetFileSize(path);
  if (!size.ok()) return size.status();
  Result<std::unique_ptr<RandomAccessFile>> file =
      env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();

  out->reserve(static_cast<size_t>(*size));
  std::string chunk;
  uint64_t offset = 0;
  while (offset < *size) {
    size_t want = static_cast<size_t>(*size - offset);
    TL_RETURN_IF_ERROR((*file)->Read(offset, want, &chunk));
    if (chunk.empty()) {
      // EOF before the stat'd size: the file shrank underneath us.
      return Status::IOError("short read on " + path);
    }
    out->append(chunk);
    offset += chunk.size();
  }
  return Status::OK();
}

}  // namespace treelattice
