#ifndef TREELATTICE_IO_FAULT_ENV_H_
#define TREELATTICE_IO_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "io/env.h"

namespace treelattice {

/// Faults the wrapper can inject. Fields may be adjusted between
/// operations; they take effect immediately (shared with open files).
/// Thread-compatible: adjust the fields only while no Env operation is in
/// flight — the wrapper itself reads them under its internal lock, but a
/// concurrent writer through config() would race with that read.
struct FaultInjectionConfig {
  /// Total bytes all WritableFiles may durably write before Append starts
  /// failing with IOError. -1 disables the budget.
  int64_t fail_write_after_bytes = -1;

  /// When the write budget runs out mid-Append, write the surviving prefix
  /// to the underlying file before reporting the error — a torn write, as
  /// after a crash or a full disk.
  bool torn_writes = false;

  /// Every Sync fails with IOError (fsync returning EIO).
  bool fail_sync = false;

  /// Every RenameFile fails with IOError, leaving `from` in place.
  bool fail_rename = false;

  /// Every Read fails with IOError (injected EIO).
  bool fail_read = false;

  /// When > 0, each Read returns at most this many bytes, forcing callers
  /// to handle short reads. 0 disables.
  size_t short_read_cap = 0;
};

/// An Env decorator that forwards to a base Env (usually Env::Default())
/// while injecting the failures configured in FaultInjectionConfig and
/// counting operations. Tests use it to prove that every persistence path
/// degrades to a clean Status — no crash, no partially visible file.
///
/// Thread-safe for concurrent file operations and counter reads (the
/// shared State is internally locked, so the write budget is consumed
/// atomically across threads); see FaultInjectionConfig for the one
/// exception, config mutation.
class FaultInjectingEnv : public Env {
 public:
  struct State;  // shared with open file handles; definition is internal

  explicit FaultInjectingEnv(Env* base);
  ~FaultInjectingEnv() override;

  FaultInjectionConfig& config();

  /// Clears fault configuration and counters.
  void Reset();

  // Operation counters (since construction or Reset).
  int64_t bytes_written() const;
  int appends() const;
  int syncs() const;
  int renames() const;
  int deletes() const;
  int reads() const;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;

 private:
  Env* base_;
  std::shared_ptr<State> state_;  // shared with open file handles
};

}  // namespace treelattice

#endif  // TREELATTICE_IO_FAULT_ENV_H_
