#include "io/fault_env.h"

#include "obs/metrics.h"

namespace treelattice {

namespace {

/// Counts every fault the wrapper injects, so test and chaos runs can see
/// how much failure traffic they actually generated.
obs::Counter* InjectedFaults() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default()->counter("io.fault.injected_failures");
  return counter;
}

}  // namespace

struct FaultInjectingEnv::State {
  FaultInjectionConfig config;
  int64_t bytes_written = 0;
  int appends = 0;
  int syncs = 0;
  int renames = 0;
  int deletes = 0;
  int reads = 0;
};

namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    std::shared_ptr<FaultInjectingEnv::State> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    ++state_->appends;
    const int64_t budget = state_->config.fail_write_after_bytes;
    if (budget >= 0) {
      int64_t room = budget - state_->bytes_written;
      if (room < static_cast<int64_t>(data.size())) {
        if (room > 0 && state_->config.torn_writes) {
          std::string_view prefix = data.substr(0, static_cast<size_t>(room));
          state_->bytes_written += room;
          base_->Append(prefix);  // the torn prefix reaches the disk
        }
        InjectedFaults()->Increment();
        return Status::IOError("injected write failure");
      }
    }
    state_->bytes_written += static_cast<int64_t>(data.size());
    return base_->Append(data);
  }

  Status Sync() override {
    ++state_->syncs;
    if (state_->config.fail_sync) {
      InjectedFaults()->Increment();
      return Status::IOError("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<FaultInjectingEnv::State> state_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        std::shared_ptr<FaultInjectingEnv::State> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    ++state_->reads;
    if (state_->config.fail_read) {
      InjectedFaults()->Increment();
      return Status::IOError("injected read failure");
    }
    const size_t cap = state_->config.short_read_cap;
    if (cap > 0 && n > cap) n = cap;
    return base_->Read(offset, n, out);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultInjectingEnv::State> state_;
};

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base), state_(std::make_shared<State>()) {}

FaultInjectingEnv::~FaultInjectingEnv() = default;

FaultInjectionConfig& FaultInjectingEnv::config() { return state_->config; }

void FaultInjectingEnv::Reset() { *state_ = State(); }

int64_t FaultInjectingEnv::bytes_written() const {
  return state_->bytes_written;
}
int FaultInjectingEnv::appends() const { return state_->appends; }
int FaultInjectingEnv::syncs() const { return state_->syncs; }
int FaultInjectingEnv::renames() const { return state_->renames; }
int FaultInjectingEnv::deletes() const { return state_->deletes; }
int FaultInjectingEnv::reads() const { return state_->reads; }

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  Result<std::unique_ptr<WritableFile>> base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      std::move(base).value(), state_));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  Result<std::unique_ptr<RandomAccessFile>> base =
      base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(std::move(base).value(),
                                              state_));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  ++state_->renames;
  if (state_->config.fail_rename) {
    InjectedFaults()->Increment();
    return Status::IOError("injected rename failure");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  ++state_->deletes;
  return base_->DeleteFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectingEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

}  // namespace treelattice
