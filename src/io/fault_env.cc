#include "io/fault_env.h"

#include <mutex>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace treelattice {

namespace {

/// Counts every fault the wrapper injects, so test and chaos runs can see
/// how much failure traffic they actually generated.
obs::Counter* InjectedFaults() {
  static obs::Counter* counter = obs::MetricsRegistry::Default()->counter(
      obs::metric_names::kIoFaultInjectedFailures);
  return counter;
}

}  // namespace

struct FaultInjectingEnv::State {
  mutable std::mutex mu;
  /// Fault switches. Mutated through config() between operations (see the
  /// header contract); operations read it under mu so the write budget is
  /// consumed atomically even with files appending from several threads.
  /// Not TL_GUARDED_BY: config() hands out an unlocked reference under the
  /// documented mutate-only-between-operations phase contract.
  // tl-analyze: allow(guard-coverage) -- phase contract, see above
  FaultInjectionConfig config;
  int64_t bytes_written TL_GUARDED_BY(mu) = 0;
  int appends TL_GUARDED_BY(mu) = 0;
  int syncs TL_GUARDED_BY(mu) = 0;
  int renames TL_GUARDED_BY(mu) = 0;
  int deletes TL_GUARDED_BY(mu) = 0;
  int reads TL_GUARDED_BY(mu) = 0;
};

namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    std::shared_ptr<FaultInjectingEnv::State> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    // The budget check and the byte-count update happen under one lock so
    // concurrent appenders cannot jointly overshoot the write budget.
    bool tear = false;
    std::string_view prefix;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->appends;
      const int64_t budget = state_->config.fail_write_after_bytes;
      if (budget >= 0) {
        int64_t room = budget - state_->bytes_written;
        if (room < static_cast<int64_t>(data.size())) {
          if (room > 0 && state_->config.torn_writes) {
            prefix = data.substr(0, static_cast<size_t>(room));
            state_->bytes_written += room;
            tear = true;
          }
          InjectedFaults()->Increment();
          if (!tear) return Status::IOError("injected write failure");
        }
      }
      if (!tear) state_->bytes_written += static_cast<int64_t>(data.size());
    }
    if (tear) {
      IgnoreStatus(base_->Append(prefix),
                   "torn-write injection: the caller is told the write "
                   "failed either way; the prefix reaching disk (or not) is "
                   "exactly the nondeterminism a torn write models");
      return Status::IOError("injected write failure");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    bool fail;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->syncs;
      fail = state_->config.fail_sync;
    }
    if (fail) {
      InjectedFaults()->Increment();
      return Status::IOError("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<FaultInjectingEnv::State> state_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        std::shared_ptr<FaultInjectingEnv::State> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    bool fail;
    size_t cap;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->reads;
      fail = state_->config.fail_read;
      cap = state_->config.short_read_cap;
    }
    if (fail) {
      InjectedFaults()->Increment();
      return Status::IOError("injected read failure");
    }
    if (cap > 0 && n > cap) n = cap;
    return base_->Read(offset, n, out);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultInjectingEnv::State> state_;
};

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base), state_(std::make_shared<State>()) {}

FaultInjectingEnv::~FaultInjectingEnv() = default;

FaultInjectionConfig& FaultInjectingEnv::config() { return state_->config; }

void FaultInjectingEnv::Reset() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->config = FaultInjectionConfig();
  state_->bytes_written = 0;
  state_->appends = 0;
  state_->syncs = 0;
  state_->renames = 0;
  state_->deletes = 0;
  state_->reads = 0;
}

int64_t FaultInjectingEnv::bytes_written() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->bytes_written;
}
int FaultInjectingEnv::appends() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->appends;
}
int FaultInjectingEnv::syncs() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->syncs;
}
int FaultInjectingEnv::renames() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->renames;
}
int FaultInjectingEnv::deletes() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->deletes;
}
int FaultInjectingEnv::reads() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reads;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  Result<std::unique_ptr<WritableFile>> base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      std::move(base).value(), state_));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  Result<std::unique_ptr<RandomAccessFile>> base =
      base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(std::move(base).value(),
                                              state_));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool fail;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->renames;
    fail = state_->config.fail_rename;
  }
  if (fail) {
    InjectedFaults()->Increment();
    return Status::IOError("injected rename failure");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->deletes;
  }
  return base_->DeleteFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectingEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

}  // namespace treelattice
