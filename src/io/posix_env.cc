// Posix implementation of the Env abstraction: unbuffered fd-based I/O so
// that Sync() gives a real durability point and torn writes are the only
// partial-failure mode (matching what the fault injector simulates).

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "io/env.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace treelattice {
namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

// Filesystem telemetry, shared by all Posix file handles. Registered once;
// the FaultInjectingEnv wrapper forwards here too, so fault-injection test
// traffic shows up under the same names.
struct IoMetrics {
  obs::Counter* bytes_written;
  obs::Counter* bytes_read;
  obs::Counter* appends;
  obs::Counter* reads;
  obs::Counter* fsyncs;
  obs::Counter* renames;
  obs::Counter* deletes;
  obs::Counter* files_opened;

  static IoMetrics& Get() {
    static IoMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return IoMetrics{registry->counter(names::kIoBytesWritten),
                       registry->counter(names::kIoBytesRead),
                       registry->counter(names::kIoAppends),
                       registry->counter(names::kIoReads),
                       registry->counter(names::kIoFsyncs),
                       registry->counter(names::kIoRenames),
                       registry->counter(names::kIoDeletes),
                       registry->counter(names::kIoFilesOpened)};
    }();
    return m;
  }
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("Append on closed file " + path_);
    IoMetrics::Get().appends->Increment();
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_, errno);
      }
      IoMetrics::Get().bytes_written->Increment(
          static_cast<uint64_t>(written));
      p += written;
      n -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("Sync on closed file " + path_);
    IoMetrics::Get().fsyncs->Increment();
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close " + path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    IoMetrics::Get().reads->Increment();
    out->resize(n);
    ssize_t got;
    do {
      got = ::pread(fd_, out->data(), n, static_cast<off_t>(offset));
    } while (got < 0 && errno == EINTR);
    if (got < 0) return PosixError("pread " + path_, errno);
    IoMetrics::Get().bytes_read->Increment(static_cast<uint64_t>(got));
    out->resize(static_cast<size_t>(got));
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError("open " + path + " for writing", errno);
    IoMetrics::Get().files_opened->Increment();
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + path, errno);
    IoMetrics::Get().files_opened->Increment();
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(path, fd));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    IoMetrics::Get().renames->Increment();
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to, errno);
    }
    // fsync the containing directory so the rename itself survives a crash;
    // best-effort (some filesystems refuse O_RDONLY dir fsync).
    std::string dir = to;
    size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash + 1);
    int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    IoMetrics::Get().deletes->Increment();
    if (::unlink(path.c_str()) != 0) {
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return PosixError("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace treelattice
