#ifndef TREELATTICE_IO_ENV_H_
#define TREELATTICE_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"

namespace treelattice {

/// A file opened for sequential appending. Writers must call Close() (or
/// let Sync() + destructor run) and check every Status: an Append that
/// fails may have written a prefix of the data (torn write), which is
/// exactly what the atomic-save protocol in WriteFileAtomic defends
/// against.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Flushes buffered data and forces it to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the file. Idempotent; further Appends fail.
  virtual Status Close() = 0;
};

/// A file opened for positional reads. Thread-compatible: concurrent Read
/// calls at distinct offsets are safe on the Posix implementation (pread).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset` into `*out` (replacing its
  /// contents). A short result (including empty) at end-of-file is not an
  /// error; callers that need exactly `n` bytes must loop or use
  /// ReadFileToString.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
};

/// Narrow filesystem abstraction in the RocksDB Env style. All persistence
/// in TreeLattice goes through an Env so tests can substitute a
/// FaultInjectingEnv and exercise every failure path that a production
/// filesystem can produce.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;

  /// The process-wide Posix environment.
  static Env* Default();
};

/// Crash-safe whole-file write: writes `contents` to `path + ".tmp"`,
/// fsyncs, closes, then renames over `path`. On any failure the temp file
/// is deleted and `path` is left untouched (either the old version or
/// absent) — a reader can never observe a partially written `path`.
Status WriteFileAtomic(Env* env, const std::string& path,
                       std::string_view contents);

/// Reads the whole of `path` into `*out`, looping over short reads.
Status ReadFileToString(Env* env, const std::string& path, std::string* out);

}  // namespace treelattice

#endif  // TREELATTICE_IO_ENV_H_
