#include "serve/admin.h"

#include <string_view>

#include "serve/serve_metrics.h"
#include "serve/slow_log.h"

namespace treelattice {
namespace serve {

namespace {

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// The request target without its query string or fragment.
std::string_view PathOnly(std::string_view target) {
  const size_t cut = target.find_first_of("?#");
  return cut == std::string_view::npos ? target : target.substr(0, cut);
}

AdminResponse NotFound(std::string_view path) {
  AdminResponse response;
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "no such endpoint: ";
  response.body.append(path);
  response.body.push_back('\n');
  return response;
}

}  // namespace

Result<std::optional<AdminRequest>> ParseAdminRequestHead(
    std::string* in, size_t max_head_bytes) {
  // A head ends at the first blank line; tolerate bare-LF clients.
  size_t head_end = in->find("\r\n\r\n");
  size_t consumed = head_end + 4;
  if (head_end == std::string::npos) {
    head_end = in->find("\n\n");
    consumed = head_end + 2;
  }
  if (head_end == std::string::npos) {
    if (in->size() > max_head_bytes) {
      return Status::InvalidArgument("admin request head exceeds " +
                                     std::to_string(max_head_bytes) +
                                     " bytes");
    }
    return std::optional<AdminRequest>();  // incomplete — read more
  }
  std::string_view head(in->data(), head_end);
  const size_t line_end = head.find_first_of("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) {
    return Status::InvalidArgument("malformed admin request line");
  }
  const size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos || target_end == method_end + 1) {
    return Status::InvalidArgument("malformed admin request line");
  }
  AdminRequest request;
  request.method = std::string(request_line.substr(0, method_end));
  request.target = std::string(
      request_line.substr(method_end + 1, target_end - method_end - 1));
  in->erase(0, consumed);
  return std::optional<AdminRequest>(std::move(request));
}

std::string RenderHttpResponse(const AdminResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out.append(ReasonPhrase(response.status));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  if (!response.omit_body) out.append(response.body);
  return out;
}

AdminResponse HandleAdminRequest(const AdminRequest& request,
                                 const AdminHooks& hooks) {
  AdminMetrics& metrics = AdminMetrics::Get();
  metrics.requests->Increment();
  AdminResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "only GET and HEAD are supported\n";
    metrics.responses_error->Increment();
    return response;
  }
  const std::string_view path = PathOnly(request.target);
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = hooks.metrics_text ? hooks.metrics_text() : std::string();
  } else if (path == "/healthz") {
    const introspect::HealthReport report =
        introspect::EvaluateHealth(hooks.status ? hooks.status()
                                                : StatusSnapshot());
    response.status = report.ready ? 200 : 503;
    response.body = introspect::HealthzJson(report);
  } else if (path == "/statusz") {
    response.body = introspect::StatuszJson(hooks.status ? hooks.status()
                                                         : StatusSnapshot());
  } else if (path == "/slowz") {
    response.body = introspect::SlowzJson(hooks.slow_log);
  } else if (path == "/") {
    response.content_type = "text/plain; charset=utf-8";
    response.body =
        "treelattice admin endpoints:\n"
        "  /metrics   Prometheus text of the live metrics registry\n"
        "  /healthz   readiness (200 ok / 503 with a reason)\n"
        "  /statusz   full serving status as JSON\n"
        "  /slowz     slow-query log, newest first\n";
  } else {
    response = NotFound(path);
    metrics.responses_error->Increment();
  }
  if (request.method == "HEAD") response.omit_body = true;
  metrics.bytes_out->Increment(response.omit_body ? 0 : response.body.size());
  return response;
}

}  // namespace serve
}  // namespace treelattice
