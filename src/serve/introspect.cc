#include "serve/introspect.h"

#include "serve/slow_log.h"
#include "util/json.h"

namespace treelattice {
namespace serve {
namespace introspect {

namespace {

/// The shared core of '#stats' and /statusz: server tallies, then the
/// "net" block when a transport exists, then the slow-query tallies.
void WriteStatusBody(const StatusSnapshot& status, JsonWriter* w) {
  w->Key("submitted").Uint(status.server.submitted);
  w->Key("shed").Uint(status.server.shed);
  w->Key("ok").Uint(status.server.ok);
  w->Key("errors").Uint(status.server.errors);
  w->Key("degraded").Uint(status.server.degraded);
  w->Key("cache_hits").Uint(status.server.cache_hits);
  w->Key("cache_misses").Uint(status.server.cache_misses);
  w->Key("queue_depth").Uint(status.server.queue_depth);
  w->Key("queue_capacity").Uint(status.queue_capacity);
  w->Key("snapshot_version").Int(status.snapshot_version);
  if (status.has_net) {
    const TransportStats& net = status.net;
    w->Key("net").BeginObject();
    w->Key("accepted").Uint(net.accepted);
    w->Key("rejected").Uint(net.rejected);
    w->Key("active").Uint(net.active);
    w->Key("frames").Uint(net.frames);
    w->Key("frames_oversized").Uint(net.frames_oversized);
    w->Key("requests_admitted").Uint(net.requests_admitted);
    w->Key("responses_delivered").Uint(net.responses_delivered);
    w->Key("responses_orphaned").Uint(net.responses_orphaned);
    w->Key("backpressure_stalls").Uint(net.backpressure_stalls);
    w->Key("resets").Uint(net.resets);
    w->Key("bytes_in").Uint(net.bytes_in);
    w->Key("bytes_out").Uint(net.bytes_out);
    w->Key("idle_timeouts").Uint(net.idle_timeouts);
    w->Key("request_timeouts").Uint(net.request_timeouts);
    w->Key("poller_errors").Uint(net.poller_errors);
    w->Key("injected_faults").Uint(net.injected_faults);
    w->EndObject();
  }
  w->Key("slow").BeginObject();
  w->Key("threshold_ms").Double(status.slow_threshold_millis);
  w->Key("recorded").Uint(status.slow_queries);
  w->EndObject();
}

void WriteSlowEntry(const SlowQueryLog::Entry& entry, JsonWriter* w) {
  w->BeginObject();
  w->Key("req").Uint(entry.req_id);
  w->Key("query").String(entry.query);
  w->Key("ok").Bool(entry.ok);
  if (entry.ok) {
    w->Key("rung").String(entry.rung);
    w->Key("cached").Bool(entry.cached);
    w->Key("degraded").Bool(entry.degraded);
  } else {
    w->Key("error_code").String(entry.error_code);
  }
  w->Key("snapshot_version").Int(entry.snapshot_version);
  w->Key("shape").BeginObject();
  w->Key("size").Uint(entry.twig_size);
  w->Key("depth").Uint(entry.twig_depth);
  w->Key("fanout").Uint(entry.twig_fanout);
  w->EndObject();
  w->Key("work_steps").Uint(entry.work_steps);
  if (entry.batch_size > 0) w->Key("batch_size").Uint(entry.batch_size);
  w->Key("stages_micros").BeginObject();
  w->Key("admit").Uint(entry.admit_micros);
  w->Key("queue_wait").Uint(entry.queue_wait_micros);
  w->Key("estimate").Uint(entry.estimate_micros);
  w->Key("serialize").Uint(entry.serialize_micros);
  w->Key("flush").Uint(entry.flush_micros);
  w->EndObject();
  w->Key("framed_micros").Uint(entry.framed_micros);
  w->Key("total_ms").Double(entry.total_millis);
  w->EndObject();
}

}  // namespace

std::string StatsJsonLine(const StatusSnapshot& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("stats").BeginObject();
  WriteStatusBody(status, &w);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string StatuszJson(const StatusSnapshot& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("snapshot_version").Int(status.snapshot_version);
  w.Key("snapshot_salvaged").Bool(status.snapshot_salvaged);
  w.Key("uptime_seconds").Double(status.uptime_seconds);
  w.Key("draining").Bool(status.draining);
  w.Key("workers").Int(status.workers);
  w.Key("drain_micros").Double(status.has_net ? status.net.drain_micros : 0.0);
  w.Key("stats").BeginObject();
  WriteStatusBody(status, &w);
  w.EndObject();
  w.Key("build").BeginObject();
#if defined(__VERSION__)
  w.Key("compiler").String(__VERSION__);
#else
  w.Key("compiler").String("unknown");
#endif
  w.Key("cxx_standard").Int(static_cast<int64_t>(__cplusplus));
#if defined(NDEBUG)
  w.Key("optimized").Bool(true);
#else
  w.Key("optimized").Bool(false);
#endif
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

HealthReport EvaluateHealth(const StatusSnapshot& status) {
  HealthReport report;
  if (status.snapshot_version <= 0) {
    report.reason = "no snapshot loaded";
    return report;
  }
  if (status.draining) {
    report.reason = "draining";
    return report;
  }
  if (status.queue_capacity > 0 &&
      status.server.queue_depth >= status.queue_capacity) {
    report.reason = "admission queue saturated";
    return report;
  }
  report.ready = true;
  report.reason = "ok";
  return report;
}

std::string HealthzJson(const HealthReport& report) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(report.ready);
  w.Key("reason").String(report.reason);
  w.EndObject();
  return w.TakeString();
}

std::string SlowzJson(const SlowQueryLog* log) {
  JsonWriter w;
  w.BeginObject();
  w.Key("slowz").BeginObject();
  if (log == nullptr) {
    w.Key("enabled").Bool(false);
  } else {
    w.Key("enabled").Bool(log->options().threshold_millis > 0.0);
    w.Key("threshold_ms").Double(log->options().threshold_millis);
    w.Key("capacity").Uint(log->options().capacity);
    w.Key("total_recorded").Uint(log->total_recorded());
    w.Key("entries").BeginArray();
    for (const SlowQueryLog::Entry& entry : log->Snapshot()) {
      WriteSlowEntry(entry, &w);
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace introspect
}  // namespace serve
}  // namespace treelattice
