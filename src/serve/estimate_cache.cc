#include "serve/estimate_cache.h"

#include <chrono>

#include "util/hash.h"

namespace treelattice {
namespace serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Records cache.probe_micros on every exit path of Get.
class ProbeTimer {
 public:
  ProbeTimer(bool timed, std::chrono::steady_clock::time_point start)
      : timed_(timed), start_(start) {}
  ~ProbeTimer() {
    if (!timed_) return;
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    CacheMetrics::Get().probe_micros->Record(
        static_cast<uint64_t>(micros.count()));
  }

 private:
  const bool timed_;
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace

EstimateCache::EstimateCache(Options options)
    : config_fingerprint_(options.config_fingerprint) {
  const size_t shard_count =
      RoundUpPow2(options.shards > 0 ? static_cast<size_t>(options.shards) : 1);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shard_count - 1;
  const size_t capacity = options.capacity > 0 ? options.capacity : 1;
  per_shard_capacity_ = capacity / shard_count;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

uint64_t EstimateCache::KeyFor(uint64_t code_hash) const {
  return HashCombine(config_fingerprint_, code_hash);
}

EstimateCache::Shard& EstimateCache::ShardFor(uint64_t key) {
  // The index within a shard uses the key directly (unordered_map mixes
  // it again); shard selection uses the high bits so the two do not
  // correlate.
  return *shards_[static_cast<size_t>(key >> 48) & shard_mask_];
}

void EstimateCache::SyncShardVersion(Shard& shard, int64_t snapshot_version) {
  if (shard.version == snapshot_version) return;
  if (!shard.lru.empty()) {
    shard.lru.clear();
    shard.index.clear();
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().invalidations->Increment();
  }
  shard.version = snapshot_version;
}

std::optional<double> EstimateCache::Get(int64_t snapshot_version,
                                         uint64_t code_hash,
                                         std::string_view code) {
  // Probe latency is worth a clock pair only while telemetry is on.
  const bool timed = obs::Enabled();
  const std::chrono::steady_clock::time_point probe_start =
      timed ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point();
  ProbeTimer probe_timer(timed, probe_start);
  const uint64_t key = KeyFor(code_hash);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  SyncShardVersion(shard, snapshot_version);
  auto it = shard.index.find(key);
  if (it != shard.index.end() && it->second->code == code) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
    hits_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().hits->Increment();
    return it->second->estimate;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().misses->Increment();
  return std::nullopt;
}

void EstimateCache::GetBatch(int64_t snapshot_version,
                             const uint64_t* code_hashes,
                             const std::string_view* codes, size_t n,
                             std::optional<double>* results) {
  if (n == 0) return;
  const bool timed = obs::Enabled();
  const std::chrono::steady_clock::time_point probe_start =
      timed ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point();
  ProbeTimer probe_timer(timed, probe_start);
  uint64_t batch_hits = 0;
  // Shard-grouped pass: lock each shard once and answer every key that
  // maps to it. The scan per shard is linear in n, but the shard count is
  // a small constant, so the whole filter is O(shards * n) comparisons
  // and exactly `shards` lock acquisitions in the worst case.
  for (size_t s = 0; s < shards_.size(); ++s) {
    bool shard_has_keys = false;
    for (size_t i = 0; i < n && !shard_has_keys; ++i) {
      const uint64_t key = KeyFor(code_hashes[i]);
      shard_has_keys = (static_cast<size_t>(key >> 48) & shard_mask_) == s;
    }
    if (!shard_has_keys) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    SyncShardVersion(shard, snapshot_version);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = KeyFor(code_hashes[i]);
      if ((static_cast<size_t>(key >> 48) & shard_mask_) != s) continue;
      results[i] = std::nullopt;
      auto it = shard.index.find(key);
      if (it != shard.index.end() && it->second->code == codes[i]) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
        results[i] = it->second->estimate;
        ++batch_hits;
      }
    }
  }
  hits_.fetch_add(batch_hits, std::memory_order_relaxed);
  misses_.fetch_add(n - batch_hits, std::memory_order_relaxed);
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.hits->Increment(batch_hits);
  metrics.misses->Increment(n - batch_hits);
}

void EstimateCache::Put(int64_t snapshot_version, uint64_t code_hash,
                        std::string_view code, double estimate) {
  const uint64_t key = KeyFor(code_hash);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  SyncShardVersion(shard, snapshot_version);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Same key: refresh. A 64-bit collision between distinct codes simply
    // overwrites the slot — correctness is preserved because Get verifies
    // the code before serving.
    it->second->code.assign(code);
    it->second->estimate = estimate;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().evictions->Increment();
  }
  Entry entry;
  entry.key = key;
  entry.code.assign(code);
  entry.estimate = estimate;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
}

void EstimateCache::Invalidate() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!shard->lru.empty()) {
      shard->lru.clear();
      shard->index.clear();
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().invalidations->Increment();
    }
    shard->version = -1;
  }
}

size_t EstimateCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

EstimateCache::Stats EstimateCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serve
}  // namespace treelattice
