#ifndef TREELATTICE_SERVE_CONN_H_
#define TREELATTICE_SERVE_CONN_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request_trace.h"
#include "util/deadline.h"

namespace treelattice {
namespace serve {

/// Incremental NDJSON frame extractor for the TCP transport: bytes go in
/// in arbitrary chunks (short reads split frames anywhere, including the
/// middle of a UTF-8 sequence — the framer is byte-oriented and never
/// inspects encoding), complete newline-terminated lines come out. A frame
/// that exceeds `max_frame_bytes` without a newline fails *that frame*
/// only: one kOversized event is emitted when the limit trips, the
/// overlong line's bytes are discarded through its terminating newline,
/// and the next frame parses normally. Embedded NUL and '\r' bytes are
/// data ('\r' immediately before the newline is stripped, telnet-style);
/// empty lines produce no event.
///
/// Byte conservation (fuzz-checked, tests/fuzz/fuzz_framing.cc):
///   consumed() == Σ (emitted line bytes + 1 newline each)
///               + dropped() + pending().
/// dropped() counts oversize discards plus framing overhead that produces
/// no event: stripped '\r's and blank lines.
class NdjsonFramer {
 public:
  explicit NdjsonFramer(size_t max_frame_bytes);

  enum class EventKind {
    kLine,       // one complete frame; `line` excludes the newline
    kOversized,  // frame grew past max_frame_bytes; its bytes are dropped
  };
  struct Event {
    EventKind kind = EventKind::kLine;
    std::string line;
  };

  /// Appends `data` and appends any completed events to `out`.
  void Feed(std::string_view data, std::vector<Event>* out);

  /// Bytes of the current incomplete frame buffered (0 while discarding).
  size_t pending() const { return discarding_ ? 0 : buffer_.size(); }
  /// True when bytes are buffered or an oversized frame is being skipped —
  /// i.e. the peer owes us a newline (the slowloris timer keys off this).
  bool mid_frame() const { return discarding_ || !buffer_.empty(); }
  /// Total bytes ever fed / dropped by oversize discards.
  uint64_t consumed() const { return consumed_; }
  uint64_t dropped() const { return dropped_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  bool discarding_ = false;
  uint64_t consumed_ = 0;
  uint64_t dropped_ = 0;
};

/// Per-connection state owned by the transport's event loop. Connections
/// move through a small state machine (DESIGN.md §11):
///
///   kOpen ──peer EOF──▶ kHalfClosed ──buffers+in-flight drained──▶ close
///     │                     │
///     └──RST/write error────┴──▶ close now (in-flight work cancelled)
///
/// kOpen: reading frames, writing responses. kHalfClosed: the peer
/// finished sending (orderly shutdown); everything already received is
/// still answered and flushed — a pipelined client that half-closes after
/// its last request loses nothing. An abortive close (ECONNRESET/EPIPE)
/// instead cancels in-flight work through `cancel`: nobody is listening,
/// so finishing the estimate would only burn a worker.
struct Conn {
  Conn(uint64_t id_in, int fd_in, size_t max_frame_bytes)
      : id(id_in),
        fd(fd_in),
        framer(max_frame_bytes),
        cancel(std::make_shared<CancelToken>()) {}

  enum class State { kOpen, kHalfClosed };

  const uint64_t id;  // monotonic; never reused, unlike the fd
  const int fd;
  State state = State::kOpen;
  NdjsonFramer framer;

  /// Pending output. `out_offset` marks how much of `out` is already
  /// written; compacted when fully flushed.
  std::string out;
  size_t out_offset = 0;
  size_t pending_out() const { return out.size() - out_offset; }

  /// Lifetime byte positions on the output stream — `out` is compacted,
  /// so flush markers (below) anchor to these instead of offsets into it.
  uint64_t total_enqueued = 0;
  uint64_t total_flushed = 0;

  /// A response line awaiting its socket flush: once `total_flushed`
  /// reaches `bytes_end`, the response's last byte hit the kernel and the
  /// trace can stamp "flushed" and finalize. FIFO by construction (bytes
  /// flush in enqueue order).
  struct PendingFinalize {
    uint64_t bytes_end = 0;  // total_enqueued right after the line
    RequestTrace trace;
    RequestOutcome outcome;
  };
  std::deque<PendingFinalize> pending_finalize;

  /// Readiness interest as last told to the poller.
  bool want_read = true;
  bool want_write = false;
  /// Reading stopped because pending_out() crossed the high-water mark;
  /// reads resume below the low-water mark (write backpressure).
  bool paused = false;

  /// Requests submitted to the Server whose responses have not yet come
  /// back. Shared with every in-flight request of this connection; an
  /// abortive close cancels them all at once.
  uint64_t in_flight = 0;
  std::shared_ptr<CancelToken> cancel;

  /// Per-connection fallback id assignment for bare-query lines (JSON
  /// envelopes may carry their own id), mirroring the stdin protocol.
  uint64_t next_client_id = 0;

  std::chrono::steady_clock::time_point last_activity;
  /// When the current partial frame started growing; meaningful only
  /// while framer.mid_frame() (slowloris timer).
  std::chrono::steady_clock::time_point frame_started;

  bool idle() const { return in_flight == 0 && pending_out() == 0; }
};

/// Per-connection state of the admin plane (serve/admin.h): strictly
/// request → response → close, so the state is just the two buffers. The
/// transport's loop owns these alongside the serving Conns; they share
/// the idle-timeout sweep but none of the framing or routing machinery.
struct AdminConn {
  explicit AdminConn(int fd_in) : fd(fd_in) {}

  const int fd;
  std::string in;   // bytes read so far, until the head parses
  std::string out;  // rendered response being flushed
  size_t out_offset = 0;
  size_t pending_out() const { return out.size() - out_offset; }
  /// Response fully rendered; close once `out` drains.
  bool responding = false;

  std::chrono::steady_clock::time_point last_activity;
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_CONN_H_
