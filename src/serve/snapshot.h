#ifndef TREELATTICE_SERVE_SNAPSHOT_H_
#define TREELATTICE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "io/env.h"
#include "summary/lattice_summary.h"
#include "util/thread_annotations.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace serve {

/// An immutable serving unit: a loaded summary plus the label dictionary
/// it was built with. Snapshots are shared read-only between all worker
/// threads via shared_ptr; a hot reload builds a fresh snapshot and swaps
/// the pointer, so in-flight queries keep the snapshot they started with.
struct SummarySnapshot {
  SummarySnapshot(LatticeSummary summary_in, LabelDict dict_in)
      : summary(std::move(summary_in)), dict(std::move(dict_in)) {}

  LatticeSummary summary;
  LabelDict dict;
  /// Monotonic install counter, stamped by SnapshotHolder::Swap.
  int64_t version = 0;
  /// True when the snapshot was salvaged from a damaged file.
  bool salvaged = false;
  /// Where it came from, for logs ("path" or "path (salvaged: ...)").
  std::string source;
};

/// The atomic swap point between the reload path and the query path.
/// Readers Get() a shared_ptr (a mutex-guarded copy — the portable
/// rendering of an atomic shared_ptr swap); writers Swap() in a whole new
/// snapshot. The holder never exposes a partially built snapshot and old
/// snapshots die only when the last in-flight query drops its reference.
class SnapshotHolder {
 public:
  /// The current snapshot; nullptr before the first Swap.
  std::shared_ptr<const SummarySnapshot> Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Installs `snapshot` as current, stamping it with the next version
  /// number (1-based). Returns that version.
  int64_t Swap(std::shared_ptr<SummarySnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot->version = ++version_;
    current_ = std::move(snapshot);
    return version_;
  }

  /// Version of the current snapshot; 0 before the first Swap.
  int64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const SummarySnapshot> current_ TL_GUARDED_BY(mu_);
  int64_t version_ TL_GUARDED_BY(mu_) = 0;
};

/// Policy for (re)loading a summary file into a SnapshotHolder.
struct ReloadOptions {
  /// Load attempts before giving up (transient I/O faults heal; a file
  /// being replaced by an atomic rename can briefly fail to open).
  int attempts = 3;
  /// Sleep before each retry, doubling per attempt; 0 disables sleeping
  /// (deterministic tests).
  double backoff_millis = 10.0;
  /// Accept a salvaged (partially corrupt) load. Startup turns this on —
  /// a degraded snapshot beats no snapshot; hot reloads leave it off so a
  /// truncated file on disk never replaces a good serving snapshot.
  bool accept_salvaged = false;
};

/// Loads `path` through `env` and swaps the result into `holder`,
/// retrying per `options`. On any failure — unreadable file, corruption,
/// salvage when not accepted, missing dictionary — the holder keeps its
/// previous snapshot untouched and the last error is returned
/// (serve.reload_failures counts it). Success bumps serve.reloads and the
/// serve.snapshot_version gauge.
Status ReloadSummary(Env* env, const std::string& path,
                     const ReloadOptions& options, SnapshotHolder* holder);

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_SNAPSHOT_H_
