#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/estimate_scratch.h"
#include "serve/serve_metrics.h"
#include "twig/twig.h"
#include "util/hash.h"
#include "util/json.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace serve {

namespace {

/// Mirrors the CLI's query heuristic: anything that looks like a path
/// expression goes through the XPath compiler, everything else is twig
/// syntax.
Result<Twig> ParseQueryText(const std::string& text, LabelDict* dict) {
  if (text.find('/') != std::string::npos ||
      text.find('[') != std::string::npos) {
    return CompileXPath(text, dict);
  }
  return Twig::Parse(text, dict);
}

std::string_view Trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Stable fingerprint of the estimator configuration a cache serves, so a
/// cache can never be (mis)shared across configs that would produce
/// different estimates for the same query.
uint64_t EstimatorConfigFingerprint(const DegradingEstimator::Options& o) {
  uint64_t fp = HashBytes("degrading-ladder-v1");
  fp = HashCombine(fp, o.primary.voting ? 1 : 0);
  fp = HashCombine(fp, static_cast<uint64_t>(o.primary.max_votes_per_level));
  fp = HashCombine(fp, static_cast<uint64_t>(o.primary.aggregation));
  fp = HashCombine(fp, static_cast<uint64_t>(o.fixed_size.k));
  fp = HashCombine(fp, static_cast<uint64_t>(o.markov.order));
  return fp;
}

}  // namespace

std::string ServeResponse::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  // "id" stays first: line-oriented consumers (smoke tests, shell greps)
  // key on the '{"id":' prefix.
  w.Key("id").Uint(id);
  w.Key("req").Uint(req);
  w.Key("query").String(query);
  w.Key("ok").Bool(ok);
  if (ok) {
    w.Key("estimate").Double(estimate);
    w.Key("rung").String(rung);
    w.Key("degraded").Bool(degraded);
    w.Key("cached").Bool(cached);
  } else {
    w.Key("error").BeginObject();
    w.Key("code").String(error_code);
    w.Key("message").String(error_message);
    w.EndObject();
  }
  w.Key("wall_micros").Double(wall_micros);
  w.Key("snapshot_version").Int(snapshot_version);
  w.EndObject();
  return w.TakeString();
}

namespace {

/// Shared envelope decoding for single lines and batch array elements.
Result<ServeRequest> ParseRequestEnvelope(const JsonValue& parsed) {
  if (!parsed.is_object()) {
    return Status::InvalidArgument("request JSON must be an object");
  }
  ServeRequest request;
  const JsonValue* query = parsed.Find("query");
  if (query == nullptr || !query->is_string() || query->string_value.empty()) {
    return Status::InvalidArgument(
        "request JSON needs a non-empty string \"query\" member");
  }
  request.query = query->string_value;
  if (const JsonValue* deadline = parsed.Find("deadline_ms")) {
    if (!deadline->is_number() || deadline->number_value < 0.0) {
      return Status::InvalidArgument(
          "\"deadline_ms\" must be a non-negative number");
    }
    request.deadline_millis = deadline->number_value;
  }
  if (const JsonValue* steps = parsed.Find("max_steps")) {
    if (!steps->is_number() || steps->number_value < 0.0) {
      return Status::InvalidArgument(
          "\"max_steps\" must be a non-negative number");
    }
    request.max_work_steps = static_cast<uint64_t>(steps->number_value);
  }
  if (const JsonValue* id = parsed.Find("id")) {
    if (!id->is_number() || id->number_value < 0.0) {
      return Status::InvalidArgument("\"id\" must be a non-negative number");
    }
    request.id = static_cast<uint64_t>(id->number_value);
  }
  return request;
}

}  // namespace

Result<ServeRequest> ParseRequestLine(std::string_view line) {
  std::string_view trimmed = Trimmed(line);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  ServeRequest request;
  if (trimmed.front() != '{') {
    request.query = std::string(trimmed);
    return request;
  }
  Result<JsonValue> parsed = ParseJson(trimmed);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed request JSON: " +
                                   parsed.status().message());
  }
  return ParseRequestEnvelope(*parsed);
}

bool IsBatchRequestLine(std::string_view line) {
  std::string_view trimmed = Trimmed(line);
  return !trimmed.empty() && trimmed.front() == '[';
}

Result<ServeBatch> ParseBatchRequestLine(std::string_view line,
                                         size_t max_items) {
  std::string_view trimmed = Trimmed(line);
  Result<JsonValue> parsed = ParseJson(trimmed);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed batch JSON: " +
                                   parsed.status().message());
  }
  if (!parsed->is_array()) {
    return Status::InvalidArgument("batch request must be a JSON array");
  }
  if (parsed->array.empty()) {
    return Status::InvalidArgument("batch request array must not be empty");
  }
  if (max_items > 0 && parsed->array.size() > max_items) {
    return Status::InvalidArgument(
        "batch request carries " + std::to_string(parsed->array.size()) +
        " queries; the limit is " + std::to_string(max_items));
  }
  ServeBatch batch;
  batch.items.reserve(parsed->array.size());
  for (const JsonValue& element : parsed->array) {
    if (element.is_string()) {
      if (element.string_value.empty()) {
        return Status::InvalidArgument(
            "batch element queries must be non-empty strings");
      }
      ServeRequest request;
      request.query = element.string_value;
      batch.items.push_back(std::move(request));
      continue;
    }
    Result<ServeRequest> request = ParseRequestEnvelope(element);
    if (!request.ok()) return request.status();
    batch.items.push_back(std::move(*request));
  }
  return batch;
}

std::string ServeBatchResponse::ToJsonLine() const {
  JsonWriter w;
  w.BeginArray();
  for (const ServeResponse& item : items) w.Raw(item.ToJsonLine());
  w.EndArray();
  return w.TakeString();
}

Server::Server(SnapshotHolder* snapshots, ServerOptions options,
               ResponseSink sink, BatchResponseSink batch_sink)
    : snapshots_(snapshots),
      options_(std::move(options)),
      sink_(std::move(sink)),
      batch_sink_(std::move(batch_sink)) {
  if (options_.enable_estimate_cache && options_.estimate_cache_capacity > 0) {
    EstimateCache::Options cache_options;
    cache_options.capacity = options_.estimate_cache_capacity;
    cache_options.shards = options_.estimate_cache_shards;
    cache_options.config_fingerprint =
        EstimatorConfigFingerprint(options_.estimator);
    cache_ = std::make_unique<EstimateCache>(cache_options);
  }
  const int workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Shutdown(); }

bool Server::Submit(ServeRequest request) {
  ServeMetrics& metrics = ServeMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queued_queries_ < options_.queue_capacity) {
      request.trace.StampAdmitted();
      Work work;
      work.single = std::move(request);
      queue_.push_back(std::move(work));
      ++queued_queries_;
      submitted_.fetch_add(1, std::memory_order_relaxed);
      metrics.requests->Increment();
      metrics.queue_depth_peak->SetMax(static_cast<int64_t>(queued_queries_));
      metrics.queue_depth->Set(static_cast<int64_t>(queued_queries_));
      work_available_.notify_one();
      return true;
    }
  }
  // Shed: answer immediately (from the submitting thread) so every
  // request gets exactly one response even under overload.
  shed_.fetch_add(1, std::memory_order_relaxed);
  metrics.shed->Increment();
  ServeResponse response;
  response.id = request.id;
  response.req = request.trace.req_id;
  response.trace = request.trace;
  response.query = request.query;
  response.ok = false;
  response.error_code =
      std::string(StatusCodeToString(StatusCode::kResourceExhausted));
  response.error_message = "admission queue full; request shed";
  Emit(response);
  return false;
}

bool Server::SubmitBatch(ServeBatch batch) {
  ServeMetrics& metrics = ServeMetrics::Get();
  const size_t queries = batch.items.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // All-or-nothing admission: a batch needs one slot per query so a
    // burst of batch lines cannot oversubscribe the queue N-fold.
    if (!stopping_ && queries > 0 &&
        queued_queries_ + queries <= options_.queue_capacity) {
      batch.trace.StampAdmitted();
      Work work;
      work.batch = std::make_unique<ServeBatch>(std::move(batch));
      queue_.push_back(std::move(work));
      queued_queries_ += queries;
      submitted_.fetch_add(queries, std::memory_order_relaxed);
      metrics.requests->Increment(queries);
      metrics.queue_depth_peak->SetMax(static_cast<int64_t>(queued_queries_));
      metrics.queue_depth->Set(static_cast<int64_t>(queued_queries_));
      work_available_.notify_one();
      return true;
    }
  }
  // Shed the whole batch: one ResourceExhausted response per query,
  // delivered as one batch response — exactly-once per query, never a
  // partially answered batch.
  shed_.fetch_add(queries, std::memory_order_relaxed);
  metrics.shed->Increment(queries);
  BatchMetrics::Get().shed_queries->Increment(queries);
  ServeBatchResponse response;
  response.trace = batch.trace;
  response.items.reserve(queries);
  for (const ServeRequest& item : batch.items) {
    ServeResponse shed;
    shed.id = item.id;
    shed.req = batch.trace.req_id;
    shed.query = item.query;
    shed.ok = false;
    shed.error_code =
        std::string(StatusCodeToString(StatusCode::kResourceExhausted));
    shed.error_message = "admission queue full; batch shed";
    response.items.push_back(std::move(shed));
  }
  EmitBatch(std::move(response));
  return false;
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

Server::Stats Server::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queued_queries_;
  }
  if (cache_ != nullptr) {
    EstimateCache::Stats cache_stats = cache_->GetStats();
    stats.cache_hits = cache_stats.hits;
    stats.cache_misses = cache_stats.misses;
  }
  return stats;
}

void Server::WorkerLoop() {
  // Per-worker caches, rebuilt whenever the serving snapshot changes:
  // the estimator binds to the snapshot's summary, and the dictionary is
  // a private copy because query compilation interns labels (a label the
  // snapshot has never seen gets a fresh id that misses every summary
  // lookup, yielding the natural estimate of zero).
  std::shared_ptr<const SummarySnapshot> snapshot;
  std::unique_ptr<DegradingEstimator> estimator;
  std::unique_ptr<LabelDict> dict;
  // Worker-lifetime scratch: the estimator memo and split buffers stay
  // warm across every request this thread answers.
  EstimateScratch scratch;

  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this]() TL_REQUIRES(mu_) {
                             return stopping_ || !queue_.empty();
                           });
      if (queue_.empty()) return;  // stopping_ && drained
      work = std::move(queue_.front());
      queue_.pop_front();
      queued_queries_ -= work.queries();
      if (work.batch != nullptr) {
        work.batch->trace.StampDequeued();
      } else {
        work.single.trace.StampDequeued();
      }
      ServeMetrics::Get().queue_depth->Set(
          static_cast<int64_t>(queued_queries_));
    }

    std::shared_ptr<const SummarySnapshot> current = snapshots_->Get();
    if (current != snapshot) {
      snapshot = std::move(current);
      if (snapshot != nullptr) {
        dict = std::make_unique<LabelDict>(snapshot->dict);
        estimator = std::make_unique<DegradingEstimator>(&snapshot->summary,
                                                         options_.estimator);
      } else {
        dict.reset();
        estimator.reset();
      }
    }

    if (options_.worker_delay_millis > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.worker_delay_millis));
    }

    const int64_t version = snapshot != nullptr ? snapshot->version : 0;
    if (work.batch != nullptr) {
      EmitBatch(ProcessBatch(*work.batch, estimator.get(), dict.get(),
                             version, &scratch));
    } else {
      Emit(Process(work.single, estimator.get(), dict.get(), version,
                   &scratch));
    }
  }
}

ServeResponse Server::Process(const ServeRequest& request,
                              DegradingEstimator* estimator, LabelDict* dict,
                              int64_t snapshot_version,
                              EstimateScratch* scratch) {
  const auto start = std::chrono::steady_clock::now();
  ServeResponse response;
  response.id = request.id;
  response.req = request.trace.req_id;
  response.trace = request.trace;
  response.query = request.query;
  response.snapshot_version = snapshot_version;

  Status error = Status::OK();
  if (estimator == nullptr || dict == nullptr) {
    error = Status::NotFound("no summary snapshot loaded");
  } else {
    Result<Twig> query = ParseQueryText(request.query, dict);
    if (!query.ok()) {
      error = query.status();
    } else {
      if (response.trace.active) {
        // Twig shape features: the slow-query log keys on them.
        response.trace.twig_size = static_cast<uint32_t>(query->size());
        uint32_t depth = 0, fanout = 0;
        for (int i = 0; i < query->size(); ++i) {
          depth = std::max(depth, static_cast<uint32_t>(query->Depth(i)));
          fanout =
              std::max(fanout, static_cast<uint32_t>(query->children(i).size()));
        }
        response.trace.twig_depth = depth;
        response.trace.twig_fanout = fanout;
      }
      const double deadline_millis = request.deadline_millis > 0.0
                                         ? request.deadline_millis
                                         : options_.default_deadline_millis;
      EstimateOptions estimate_options;
      if (deadline_millis > 0.0) {
        estimate_options = EstimateOptions::WithDeadlineMillis(deadline_millis);
      }
      estimate_options.max_work_steps = request.max_work_steps > 0
                                            ? request.max_work_steps
                                            : options_.default_max_work_steps;
      estimate_options.scratch = scratch;
      if (response.trace.active) {
        estimate_options.work_steps = &response.trace.work_steps;
      }
      // Budget-governed means the *value* may depend on the budget (a
      // deadline or step cap can truncate work). A cancel token alone
      // does not: a run that completes despite being cancellable produced
      // the exact answer, so it stays cacheable.
      const bool governed = estimate_options.governed();
      estimate_options.cancel = request.cancel.get();
      if (cache_ != nullptr) {
        // Any request may read the cache: entries are exact full-effort
        // primary answers, so a governed request served from cache gets a
        // strictly better result than its budget could buy.
        if (std::optional<double> hit =
                cache_->Get(snapshot_version, query->CanonicalHash(),
                            query->CanonicalCode())) {
          response.ok = true;
          response.estimate = *hit;
          response.rung = std::string(
              DegradingEstimator::RungName(DegradingEstimator::Rung::kPrimary));
          response.degraded = false;
          response.cached = true;
        }
      }
      if (!response.cached) {
        Result<DegradingEstimator::DegradedEstimate> estimate =
            estimator->EstimateDegraded(*query, estimate_options);
        if (!estimate.ok()) {
          error = estimate.status();
        } else {
          response.ok = true;
          response.estimate = estimate->estimate;
          response.rung =
              std::string(DegradingEstimator::RungName(estimate->rung));
          response.degraded = estimate->degraded;
          // Insert policy: only exact answers. A governed run — even one
          // that finished on the primary rung — may have been lucky with
          // its budget; replaying it later is fine, but the cheap and
          // airtight rule is to cache ungoverned primary results only.
          if (cache_ != nullptr && !governed && !estimate->degraded &&
              estimate->rung == DegradingEstimator::Rung::kPrimary) {
            cache_->Put(snapshot_version, query->CanonicalHash(),
                        query->CanonicalCode(), estimate->estimate);
          }
        }
      }
    }
  }
  if (!response.ok) {
    response.error_code = std::string(StatusCodeToString(error.code()));
    response.error_message = error.message();
  }
  response.wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  response.trace.StampEstimated();
  return response;
}

ServeBatchResponse Server::ProcessBatch(const ServeBatch& batch,
                                        DegradingEstimator* estimator,
                                        LabelDict* dict,
                                        int64_t snapshot_version,
                                        EstimateScratch* scratch) {
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  const size_t n = batch.items.size();
  BatchMetrics& batch_metrics = BatchMetrics::Get();
  batch_metrics.lines->Increment();
  batch_metrics.queries->Increment(n);
  batch_metrics.size->Record(n);

  ServeBatchResponse out;
  out.trace = batch.trace;
  out.trace.batch_size = static_cast<uint32_t>(n);
  out.items.resize(n);

  // Per-item parse. Parse failures (and the no-snapshot case) answer
  // immediately; everything else yields a compiled twig.
  std::vector<Twig> twigs;
  twigs.reserve(n);
  std::vector<uint32_t> twig_of(n, kNone);
  for (size_t i = 0; i < n; ++i) {
    const ServeRequest& item = batch.items[i];
    ServeResponse& response = out.items[i];
    response.id = item.id;
    response.req = batch.trace.req_id;
    response.query = item.query;
    response.snapshot_version = snapshot_version;
    Status error = Status::OK();
    if (estimator == nullptr || dict == nullptr) {
      error = Status::NotFound("no summary snapshot loaded");
    } else {
      Result<Twig> query = ParseQueryText(item.query, dict);
      if (!query.ok()) {
        error = query.status();
      } else {
        twig_of[i] = static_cast<uint32_t>(twigs.size());
        twigs.push_back(std::move(*query));
      }
    }
    if (!error.ok()) {
      response.error_code = std::string(StatusCodeToString(error.code()));
      response.error_message = error.message();
    }
  }

  // Within-batch dedup on the canonical (hash, code): rep_of[i] names the
  // first item with an identical twig; only representatives reach the
  // cache and the estimator (serve.batch.dup_queries counts the rest).
  std::vector<uint32_t> rep_of(n, kNone);
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_hash;
  uint64_t dup_queries = 0;
  for (size_t i = 0; i < n; ++i) {
    if (twig_of[i] == kNone) continue;
    const Twig& twig = twigs[twig_of[i]];
    const uint64_t hash = twig.CanonicalHash();  // tl-lint: allow(canonical-in-loop)
    std::vector<uint32_t>& bucket = by_hash[hash];
    for (uint32_t candidate : bucket) {
      if (twigs[twig_of[candidate]].CanonicalCode() == twig.CanonicalCode()) {  // tl-lint: allow(canonical-in-loop)
        rep_of[i] = candidate;
        break;
      }
    }
    if (rep_of[i] == kNone) {
      rep_of[i] = static_cast<uint32_t>(i);
      bucket.push_back(static_cast<uint32_t>(i));
    } else {
      ++dup_queries;
    }
  }
  batch_metrics.dup_queries->Increment(dup_queries);

  // Cache hit-filter: one grouped probe over the representatives, so only
  // misses reach the estimator (a cached entry is always the exact
  // ungoverned primary answer — see ServerOptions::enable_estimate_cache).
  std::vector<uint32_t> reps;
  reps.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (twig_of[i] != kNone && rep_of[i] == static_cast<uint32_t>(i)) {
      reps.push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<bool> answered(reps.size(), false);
  if (cache_ != nullptr && !reps.empty()) {
    std::vector<uint64_t> hashes(reps.size());
    std::vector<std::string_view> codes(reps.size());
    std::vector<std::optional<double>> cached(reps.size());
    for (size_t r = 0; r < reps.size(); ++r) {
      const Twig& twig = twigs[twig_of[reps[r]]];
      hashes[r] = twig.CanonicalHash();  // tl-lint: allow(canonical-in-loop)
      codes[r] = twig.CanonicalCode();  // tl-lint: allow(canonical-in-loop)
    }
    cache_->GetBatch(snapshot_version, hashes.data(), codes.data(),
                     reps.size(), cached.data());
    uint64_t batch_cache_hits = 0;
    for (size_t r = 0; r < reps.size(); ++r) {
      if (!cached[r].has_value()) continue;
      ServeResponse& response = out.items[reps[r]];
      response.ok = true;
      response.estimate = *cached[r];
      response.rung = std::string(
          DegradingEstimator::RungName(DegradingEstimator::Rung::kPrimary));
      response.degraded = false;
      response.cached = true;
      answered[r] = true;
      ++batch_cache_hits;
    }
    batch_metrics.cache_hits->Increment(batch_cache_hits);
  }

  // Estimate the remaining representatives with one batch-scoped memo:
  // every sub-twig shared across the batch is probed and voted exactly
  // once. Memo entries are exact per-code values inserted only after full
  // computation, so sharing cannot change any result (DESIGN.md §14);
  // fallback rungs deliberately drop back to a fresh per-call memo.
  size_t memo_budget = 0;
  for (size_t r = 0; r < reps.size(); ++r) {
    if (answered[r]) continue;
    const size_t size =
        static_cast<size_t>(twigs[twig_of[reps[r]]].size());
    memo_budget += size * size;
  }
  ScopedBatchScratch batch_guard(scratch, memo_budget);
  for (size_t r = 0; r < reps.size(); ++r) {
    if (answered[r]) continue;
    const auto item_start = std::chrono::steady_clock::now();
    const ServeRequest& item = batch.items[reps[r]];
    ServeResponse& response = out.items[reps[r]];
    const Twig& twig = twigs[twig_of[reps[r]]];
    const double deadline_millis = item.deadline_millis > 0.0
                                       ? item.deadline_millis
                                       : options_.default_deadline_millis;
    EstimateOptions estimate_options;
    if (deadline_millis > 0.0) {
      estimate_options = EstimateOptions::WithDeadlineMillis(deadline_millis);
    }
    estimate_options.max_work_steps = item.max_work_steps > 0
                                          ? item.max_work_steps
                                          : options_.default_max_work_steps;
    estimate_options.scratch = scratch;
    if (out.trace.active) {
      estimate_options.work_steps = &out.trace.work_steps;
    }
    // Same cacheability rule as Process: a cancel token alone does not
    // make the value budget-dependent.
    const bool governed = estimate_options.governed();
    estimate_options.cancel = batch.cancel.get();
    Result<DegradingEstimator::DegradedEstimate> estimate =
        estimator->EstimateDegraded(twig, estimate_options);
    if (!estimate.ok()) {
      response.error_code =
          std::string(StatusCodeToString(estimate.status().code()));
      response.error_message = estimate.status().message();
    } else {
      response.ok = true;
      response.estimate = estimate->estimate;
      response.rung =
          std::string(DegradingEstimator::RungName(estimate->rung));
      response.degraded = estimate->degraded;
      if (cache_ != nullptr && !governed && !estimate->degraded &&
          estimate->rung == DegradingEstimator::Rung::kPrimary) {
        cache_->Put(snapshot_version, twig.CanonicalHash(),  // tl-lint: allow(canonical-in-loop)
                    twig.CanonicalCode(), estimate->estimate);  // tl-lint: allow(canonical-in-loop)
      }
    }
    response.wall_micros = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - item_start)
                               .count();
  }

  // Scatter representative outcomes to their duplicates (the per-item id
  // and query text stay the duplicate's own).
  for (size_t i = 0; i < n; ++i) {
    if (twig_of[i] == kNone || rep_of[i] == static_cast<uint32_t>(i)) continue;
    const ServeResponse& from = out.items[rep_of[i]];
    ServeResponse& to = out.items[i];
    to.ok = from.ok;
    to.estimate = from.estimate;
    to.rung = from.rung;
    to.degraded = from.degraded;
    to.cached = from.cached;
    to.error_code = from.error_code;
    to.error_message = from.error_message;
    to.wall_micros = from.wall_micros;
  }

  out.trace.StampEstimated();
  return out;
}

void Server::EmitBatch(ServeBatchResponse response) {
  ServeMetrics& metrics = ServeMetrics::Get();
  for (const ServeResponse& item : response.items) {
    if (item.ok) {
      ok_.fetch_add(1, std::memory_order_relaxed);
      metrics.responses_ok->Increment();
      if (item.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics.responses_error->Increment();
    }
    metrics.latency_micros->Record(
        item.wall_micros > 0.0 ? static_cast<uint64_t>(item.wall_micros) : 0);
  }
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (batch_sink_ != nullptr) {
    batch_sink_(std::move(response));
  } else {
    for (const ServeResponse& item : response.items) sink_(item);
  }
}

void Server::Emit(const ServeResponse& response) {
  ServeMetrics& metrics = ServeMetrics::Get();
  if (response.ok) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses_ok->Increment();
    if (response.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses_error->Increment();
  }
  metrics.latency_micros->Record(
      response.wall_micros > 0.0 ? static_cast<uint64_t>(response.wall_micros)
                                 : 0);
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_(response);
}

}  // namespace serve
}  // namespace treelattice
