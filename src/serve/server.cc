#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/estimate_scratch.h"
#include "serve/serve_metrics.h"
#include "twig/twig.h"
#include "util/hash.h"
#include "util/json.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace serve {

namespace {

/// Mirrors the CLI's query heuristic: anything that looks like a path
/// expression goes through the XPath compiler, everything else is twig
/// syntax.
Result<Twig> ParseQueryText(const std::string& text, LabelDict* dict) {
  if (text.find('/') != std::string::npos ||
      text.find('[') != std::string::npos) {
    return CompileXPath(text, dict);
  }
  return Twig::Parse(text, dict);
}

std::string_view Trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Stable fingerprint of the estimator configuration a cache serves, so a
/// cache can never be (mis)shared across configs that would produce
/// different estimates for the same query.
uint64_t EstimatorConfigFingerprint(const DegradingEstimator::Options& o) {
  uint64_t fp = HashBytes("degrading-ladder-v1");
  fp = HashCombine(fp, o.primary.voting ? 1 : 0);
  fp = HashCombine(fp, static_cast<uint64_t>(o.primary.max_votes_per_level));
  fp = HashCombine(fp, static_cast<uint64_t>(o.primary.aggregation));
  fp = HashCombine(fp, static_cast<uint64_t>(o.fixed_size.k));
  fp = HashCombine(fp, static_cast<uint64_t>(o.markov.order));
  return fp;
}

}  // namespace

std::string ServeResponse::ToJsonLine() const {
  JsonWriter w;
  w.BeginObject();
  // "id" stays first: line-oriented consumers (smoke tests, shell greps)
  // key on the '{"id":' prefix.
  w.Key("id").Uint(id);
  w.Key("req").Uint(req);
  w.Key("query").String(query);
  w.Key("ok").Bool(ok);
  if (ok) {
    w.Key("estimate").Double(estimate);
    w.Key("rung").String(rung);
    w.Key("degraded").Bool(degraded);
    w.Key("cached").Bool(cached);
  } else {
    w.Key("error").BeginObject();
    w.Key("code").String(error_code);
    w.Key("message").String(error_message);
    w.EndObject();
  }
  w.Key("wall_micros").Double(wall_micros);
  w.Key("snapshot_version").Int(snapshot_version);
  w.EndObject();
  return w.TakeString();
}

Result<ServeRequest> ParseRequestLine(std::string_view line) {
  std::string_view trimmed = Trimmed(line);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  ServeRequest request;
  if (trimmed.front() != '{') {
    request.query = std::string(trimmed);
    return request;
  }
  Result<JsonValue> parsed = ParseJson(trimmed);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed request JSON: " +
                                   parsed.status().message());
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request JSON must be an object");
  }
  const JsonValue* query = parsed->Find("query");
  if (query == nullptr || !query->is_string() || query->string_value.empty()) {
    return Status::InvalidArgument(
        "request JSON needs a non-empty string \"query\" member");
  }
  request.query = query->string_value;
  if (const JsonValue* deadline = parsed->Find("deadline_ms")) {
    if (!deadline->is_number() || deadline->number_value < 0.0) {
      return Status::InvalidArgument(
          "\"deadline_ms\" must be a non-negative number");
    }
    request.deadline_millis = deadline->number_value;
  }
  if (const JsonValue* steps = parsed->Find("max_steps")) {
    if (!steps->is_number() || steps->number_value < 0.0) {
      return Status::InvalidArgument(
          "\"max_steps\" must be a non-negative number");
    }
    request.max_work_steps = static_cast<uint64_t>(steps->number_value);
  }
  if (const JsonValue* id = parsed->Find("id")) {
    if (!id->is_number() || id->number_value < 0.0) {
      return Status::InvalidArgument("\"id\" must be a non-negative number");
    }
    request.id = static_cast<uint64_t>(id->number_value);
  }
  return request;
}

Server::Server(SnapshotHolder* snapshots, ServerOptions options,
               ResponseSink sink)
    : snapshots_(snapshots),
      options_(std::move(options)),
      sink_(std::move(sink)) {
  if (options_.enable_estimate_cache && options_.estimate_cache_capacity > 0) {
    EstimateCache::Options cache_options;
    cache_options.capacity = options_.estimate_cache_capacity;
    cache_options.shards = options_.estimate_cache_shards;
    cache_options.config_fingerprint =
        EstimatorConfigFingerprint(options_.estimator);
    cache_ = std::make_unique<EstimateCache>(cache_options);
  }
  const int workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Shutdown(); }

bool Server::Submit(ServeRequest request) {
  ServeMetrics& metrics = ServeMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queue_.size() < options_.queue_capacity) {
      request.trace.StampAdmitted();
      queue_.push_back(std::move(request));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      metrics.requests->Increment();
      metrics.queue_depth_peak->SetMax(static_cast<int64_t>(queue_.size()));
      metrics.queue_depth->Set(static_cast<int64_t>(queue_.size()));
      work_available_.notify_one();
      return true;
    }
  }
  // Shed: answer immediately (from the submitting thread) so every
  // request gets exactly one response even under overload.
  shed_.fetch_add(1, std::memory_order_relaxed);
  metrics.shed->Increment();
  ServeResponse response;
  response.id = request.id;
  response.req = request.trace.req_id;
  response.trace = request.trace;
  response.query = request.query;
  response.ok = false;
  response.error_code =
      std::string(StatusCodeToString(StatusCode::kResourceExhausted));
  response.error_message = "admission queue full; request shed";
  Emit(response);
  return false;
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

Server::Stats Server::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
  }
  if (cache_ != nullptr) {
    EstimateCache::Stats cache_stats = cache_->GetStats();
    stats.cache_hits = cache_stats.hits;
    stats.cache_misses = cache_stats.misses;
  }
  return stats;
}

void Server::WorkerLoop() {
  // Per-worker caches, rebuilt whenever the serving snapshot changes:
  // the estimator binds to the snapshot's summary, and the dictionary is
  // a private copy because query compilation interns labels (a label the
  // snapshot has never seen gets a fresh id that misses every summary
  // lookup, yielding the natural estimate of zero).
  std::shared_ptr<const SummarySnapshot> snapshot;
  std::unique_ptr<DegradingEstimator> estimator;
  std::unique_ptr<LabelDict> dict;
  // Worker-lifetime scratch: the estimator memo and split buffers stay
  // warm across every request this thread answers.
  EstimateScratch scratch;

  for (;;) {
    ServeRequest request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this]() TL_REQUIRES(mu_) {
                             return stopping_ || !queue_.empty();
                           });
      if (queue_.empty()) return;  // stopping_ && drained
      request = std::move(queue_.front());
      queue_.pop_front();
      request.trace.StampDequeued();
      ServeMetrics::Get().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }

    std::shared_ptr<const SummarySnapshot> current = snapshots_->Get();
    if (current != snapshot) {
      snapshot = std::move(current);
      if (snapshot != nullptr) {
        dict = std::make_unique<LabelDict>(snapshot->dict);
        estimator = std::make_unique<DegradingEstimator>(&snapshot->summary,
                                                         options_.estimator);
      } else {
        dict.reset();
        estimator.reset();
      }
    }

    if (options_.worker_delay_millis > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.worker_delay_millis));
    }

    ServeResponse response =
        Process(request, estimator.get(), dict.get(),
                snapshot != nullptr ? snapshot->version : 0, &scratch);
    Emit(response);
  }
}

ServeResponse Server::Process(const ServeRequest& request,
                              DegradingEstimator* estimator, LabelDict* dict,
                              int64_t snapshot_version,
                              EstimateScratch* scratch) {
  const auto start = std::chrono::steady_clock::now();
  ServeResponse response;
  response.id = request.id;
  response.req = request.trace.req_id;
  response.trace = request.trace;
  response.query = request.query;
  response.snapshot_version = snapshot_version;

  Status error = Status::OK();
  if (estimator == nullptr || dict == nullptr) {
    error = Status::NotFound("no summary snapshot loaded");
  } else {
    Result<Twig> query = ParseQueryText(request.query, dict);
    if (!query.ok()) {
      error = query.status();
    } else {
      if (response.trace.active) {
        // Twig shape features: the slow-query log keys on them.
        response.trace.twig_size = static_cast<uint32_t>(query->size());
        uint32_t depth = 0, fanout = 0;
        for (int i = 0; i < query->size(); ++i) {
          depth = std::max(depth, static_cast<uint32_t>(query->Depth(i)));
          fanout =
              std::max(fanout, static_cast<uint32_t>(query->children(i).size()));
        }
        response.trace.twig_depth = depth;
        response.trace.twig_fanout = fanout;
      }
      const double deadline_millis = request.deadline_millis > 0.0
                                         ? request.deadline_millis
                                         : options_.default_deadline_millis;
      EstimateOptions estimate_options;
      if (deadline_millis > 0.0) {
        estimate_options = EstimateOptions::WithDeadlineMillis(deadline_millis);
      }
      estimate_options.max_work_steps = request.max_work_steps > 0
                                            ? request.max_work_steps
                                            : options_.default_max_work_steps;
      estimate_options.scratch = scratch;
      if (response.trace.active) {
        estimate_options.work_steps = &response.trace.work_steps;
      }
      // Budget-governed means the *value* may depend on the budget (a
      // deadline or step cap can truncate work). A cancel token alone
      // does not: a run that completes despite being cancellable produced
      // the exact answer, so it stays cacheable.
      const bool governed = estimate_options.governed();
      estimate_options.cancel = request.cancel.get();
      if (cache_ != nullptr) {
        // Any request may read the cache: entries are exact full-effort
        // primary answers, so a governed request served from cache gets a
        // strictly better result than its budget could buy.
        if (std::optional<double> hit =
                cache_->Get(snapshot_version, query->CanonicalHash(),
                            query->CanonicalCode())) {
          response.ok = true;
          response.estimate = *hit;
          response.rung = std::string(
              DegradingEstimator::RungName(DegradingEstimator::Rung::kPrimary));
          response.degraded = false;
          response.cached = true;
        }
      }
      if (!response.cached) {
        Result<DegradingEstimator::DegradedEstimate> estimate =
            estimator->EstimateDegraded(*query, estimate_options);
        if (!estimate.ok()) {
          error = estimate.status();
        } else {
          response.ok = true;
          response.estimate = estimate->estimate;
          response.rung =
              std::string(DegradingEstimator::RungName(estimate->rung));
          response.degraded = estimate->degraded;
          // Insert policy: only exact answers. A governed run — even one
          // that finished on the primary rung — may have been lucky with
          // its budget; replaying it later is fine, but the cheap and
          // airtight rule is to cache ungoverned primary results only.
          if (cache_ != nullptr && !governed && !estimate->degraded &&
              estimate->rung == DegradingEstimator::Rung::kPrimary) {
            cache_->Put(snapshot_version, query->CanonicalHash(),
                        query->CanonicalCode(), estimate->estimate);
          }
        }
      }
    }
  }
  if (!response.ok) {
    response.error_code = std::string(StatusCodeToString(error.code()));
    response.error_message = error.message();
  }
  response.wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  response.trace.StampEstimated();
  return response;
}

void Server::Emit(const ServeResponse& response) {
  ServeMetrics& metrics = ServeMetrics::Get();
  if (response.ok) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses_ok->Increment();
    if (response.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses_error->Increment();
  }
  metrics.latency_micros->Record(
      response.wall_micros > 0.0 ? static_cast<uint64_t>(response.wall_micros)
                                 : 0);
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_(response);
}

}  // namespace serve
}  // namespace treelattice
