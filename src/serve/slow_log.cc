#include "serve/slow_log.h"

#include <utility>

#include "serve/serve_metrics.h"

namespace treelattice {
namespace serve {

SlowQueryLog::SlowQueryLog(Options options) : options_(options) {
  // Reserve up front so Record never reallocates under the lock.
  std::lock_guard<std::mutex> lock(mu_);
  ring_.reserve(options_.capacity > 0 ? options_.capacity : 1);
}

void SlowQueryLog::Record(Entry entry) {
  total_.fetch_add(1, std::memory_order_relaxed);
  StageMetrics::Get().slow_queries->Increment();
  const size_t capacity = options_.capacity > 0 ? options_.capacity : 1;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity) {
    ring_.push_back(std::move(entry));
    return;
  }
  if (next_ >= ring_.size()) next_ = 0;
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % ring_.size();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::vector<Entry> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(ring_.size());
  // Newest first: walk backwards from the insertion cursor. While the ring
  // is still filling, next_ is 0 and the newest entry is at the back.
  const size_t n = ring_.size();
  const size_t newest = ring_.size() < options_.capacity || n == 0
                            ? n
                            : next_;  // one past the newest entry
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(newest + n - 1 - i) % n]);
  }
  return out;
}

}  // namespace serve
}  // namespace treelattice
