#ifndef TREELATTICE_SERVE_INTROSPECT_H_
#define TREELATTICE_SERVE_INTROSPECT_H_

#include <cstdint>
#include <string>

#include "serve/server.h"

namespace treelattice {
namespace serve {

class SlowQueryLog;

/// Transport tallies, decoupled from the Transport class so status
/// rendering does not need transport.h (which needs conn.h, admin.h, ...).
/// Transport aliases this as Transport::Stats.
struct TransportStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;        // turned away at the connection cap
  uint64_t active = 0;          // open right now
  uint64_t frames = 0;          // complete request lines parsed
  uint64_t frames_oversized = 0;
  uint64_t requests_admitted = 0;  // submitted to the Server
  uint64_t responses_delivered = 0;
  uint64_t responses_orphaned = 0;  // connection died first
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t idle_timeouts = 0;
  uint64_t request_timeouts = 0;  // slowloris closes
  uint64_t backpressure_stalls = 0;
  uint64_t resets = 0;  // abortive closes (RST/EPIPE/injected)
  uint64_t poller_errors = 0;  // EventPoller failures (normally zero)
  uint64_t injected_faults = 0;
  double drain_micros = 0.0;  // shutdown-to-loop-exit, once Run returns
};

/// One coherent view of the serving process, assembled in one place and
/// rendered by every introspection surface — the '#stats' control line,
/// GET /statusz, and GET /healthz all read the same snapshot, so the
/// surfaces can never drift apart (DESIGN.md §12).
struct StatusSnapshot {
  Server::Stats server;
  size_t queue_capacity = 0;
  int workers = 0;
  int64_t snapshot_version = 0;  // 0 = no snapshot loaded
  bool snapshot_salvaged = false;
  bool draining = false;
  double uptime_seconds = 0.0;
  /// TCP front end present (false in stdin mode — `net` is then unset).
  bool has_net = false;
  TransportStats net;
  /// Slow-query log tallies; threshold 0 = log absent or disabled.
  uint64_t slow_queries = 0;
  double slow_threshold_millis = 0.0;
};

namespace introspect {

/// The '#stats' response line (no trailing newline): the historical
/// {"stats":{...}} record, now with queue depth, slow-query tallies, and —
/// when a TCP transport is present — the full "net" block.
std::string StatsJsonLine(const StatusSnapshot& status);

/// The GET /statusz body: everything in StatsJsonLine plus uptime,
/// drain state, worker/queue configuration, and build info.
std::string StatuszJson(const StatusSnapshot& status);

/// Readiness verdict for GET /healthz.
struct HealthReport {
  bool ready = false;
  std::string reason;  // "ok" when ready
};

/// Ready iff a snapshot is loaded, the process is not draining, and the
/// admission queue has headroom — the conditions under which a new
/// request would actually be answered rather than shed.
HealthReport EvaluateHealth(const StatusSnapshot& status);

/// The GET /healthz body: {"ok":...,"reason":...}.
std::string HealthzJson(const HealthReport& report);

/// The GET /slowz body: threshold, tallies, and the ring newest-first.
/// `log` may be null (slow logging not configured).
std::string SlowzJson(const SlowQueryLog* log);

}  // namespace introspect

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_INTROSPECT_H_
