#ifndef TREELATTICE_SERVE_SERVE_METRICS_H_
#define TREELATTICE_SERVE_SERVE_METRICS_H_

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace treelattice {
namespace serve {

/// Serving telemetry (see obs/metric_names.h for the registry):
///   serve.requests          requests admitted to the queue
///   serve.responses_ok      successful estimates returned
///   serve.responses_error   error responses (parse, budget, internal)
///   serve.shed              requests rejected by a full admission queue
///   serve.queue_depth_peak  (gauge) high-water mark of the queue
///   serve.latency_micros    (histogram) submit-to-response latency
///   serve.reloads           successful summary hot-swaps
///   serve.reload_failures   reloads that kept the previous snapshot
///   serve.snapshot_version  (gauge) version of the serving snapshot
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* responses_ok;
  obs::Counter* responses_error;
  obs::Counter* shed;
  obs::Gauge* queue_depth_peak;
  obs::Histogram* latency_micros;
  obs::Counter* reloads;
  obs::Counter* reload_failures;
  obs::Gauge* snapshot_version;

  static ServeMetrics& Get() {
    static ServeMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return ServeMetrics{registry->counter(names::kServeRequests),
                          registry->counter(names::kServeResponsesOk),
                          registry->counter(names::kServeResponsesError),
                          registry->counter(names::kServeShed),
                          registry->gauge(names::kServeQueueDepthPeak),
                          registry->histogram(names::kServeLatencyMicros),
                          registry->counter(names::kServeReloads),
                          registry->counter(names::kServeReloadFailures),
                          registry->gauge(names::kServeSnapshotVersion)};
    }();
    return m;
  }
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_SERVE_METRICS_H_
