#ifndef TREELATTICE_SERVE_SERVE_METRICS_H_
#define TREELATTICE_SERVE_SERVE_METRICS_H_

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace treelattice {
namespace serve {

/// Serving telemetry (see obs/metric_names.h for the registry):
///   serve.requests          requests admitted to the queue
///   serve.responses_ok      successful estimates returned
///   serve.responses_error   error responses (parse, budget, internal)
///   serve.shed              requests rejected by a full admission queue
///   serve.queue_depth_peak  (gauge) high-water mark of the queue
///   serve.latency_micros    (histogram) submit-to-response latency
///   serve.reloads           successful summary hot-swaps
///   serve.reload_failures   reloads that kept the previous snapshot
///   serve.snapshot_version  (gauge) version of the serving snapshot
///   serve.queue_depth       (gauge) admission-queue depth right now
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* responses_ok;
  obs::Counter* responses_error;
  obs::Counter* shed;
  obs::Gauge* queue_depth_peak;
  obs::Histogram* latency_micros;
  obs::Counter* reloads;
  obs::Counter* reload_failures;
  obs::Gauge* snapshot_version;
  obs::Gauge* queue_depth;

  static ServeMetrics& Get() {
    static ServeMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return ServeMetrics{registry->counter(names::kServeRequests),
                          registry->counter(names::kServeResponsesOk),
                          registry->counter(names::kServeResponsesError),
                          registry->counter(names::kServeShed),
                          registry->gauge(names::kServeQueueDepthPeak),
                          registry->histogram(names::kServeLatencyMicros),
                          registry->counter(names::kServeReloads),
                          registry->counter(names::kServeReloadFailures),
                          registry->gauge(names::kServeSnapshotVersion),
                          registry->gauge(names::kServeQueueDepth)};
    }();
    return m;
  }
};

/// Batch-envelope telemetry (serve/server.cc, DESIGN.md §14):
///   serve.batch.lines         JSON array request lines admitted
///   serve.batch.queries       queries carried inside batch lines
///   serve.batch.dup_queries   queries answered by an identical twig
///                             earlier in the same batch (within-batch
///                             dedup before cache/estimator dispatch)
///   serve.batch.cache_hits    distinct batch queries answered from the
///                             estimate cache's batch hit-filter
///   serve.batch.size          (histogram) queries per batch line
///   serve.batch.shed_queries  queries shed because a whole batch line
///                             did not fit the admission queue
struct BatchMetrics {
  obs::Counter* lines;
  obs::Counter* queries;
  obs::Counter* dup_queries;
  obs::Counter* cache_hits;
  obs::Histogram* size;
  obs::Counter* shed_queries;

  static BatchMetrics& Get() {
    static BatchMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return BatchMetrics{registry->counter(names::kServeBatchLines),
                          registry->counter(names::kServeBatchQueries),
                          registry->counter(names::kServeBatchDupQueries),
                          registry->counter(names::kServeBatchCacheHits),
                          registry->histogram(names::kServeBatchSize),
                          registry->counter(names::kServeBatchShedQueries)};
    }();
    return m;
  }
};

/// Per-request stage-timeline telemetry (serve/request_trace.cc): one
/// histogram per adjacent pair of RequestTrace stamps, plus the sampled
/// slow-query tally. See DESIGN.md §12 for the stage taxonomy.
///   serve.stage.admit_micros      framed -> admitted (parse + submit)
///   serve.stage.queue_wait_micros admitted -> dequeued (queue time)
///   serve.stage.estimate_micros   dequeued -> estimated (worker time)
///   serve.stage.serialize_micros  estimated -> serialized (JSON render)
///   serve.stage.flush_micros      serialized -> flushed (socket write)
///   serve.stage.total_micros      framed -> last stamp
///   serve.slow_queries            requests recorded in the slow-query log
struct StageMetrics {
  obs::Histogram* admit_micros;
  obs::Histogram* queue_wait_micros;
  obs::Histogram* estimate_micros;
  obs::Histogram* serialize_micros;
  obs::Histogram* flush_micros;
  obs::Histogram* total_micros;
  obs::Counter* slow_queries;

  static StageMetrics& Get() {
    static StageMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return StageMetrics{
          registry->histogram(names::kServeStageAdmitMicros),
          registry->histogram(names::kServeStageQueueWaitMicros),
          registry->histogram(names::kServeStageEstimateMicros),
          registry->histogram(names::kServeStageSerializeMicros),
          registry->histogram(names::kServeStageFlushMicros),
          registry->histogram(names::kServeStageTotalMicros),
          registry->counter(names::kServeSlowQueries)};
    }();
    return m;
  }
};

/// Admin-endpoint telemetry (serve/admin.cc, serve/transport.cc):
///   admin.requests         HTTP requests answered (any status)
///   admin.responses_error  4xx/5xx responses (404, 405, oversized head)
///   admin.active           (gauge) admin connections open right now
///   admin.bytes_out        admin response bytes written
struct AdminMetrics {
  obs::Counter* requests;
  obs::Counter* responses_error;
  obs::Gauge* active;
  obs::Counter* bytes_out;

  static AdminMetrics& Get() {
    static AdminMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return AdminMetrics{registry->counter(names::kAdminRequests),
                          registry->counter(names::kAdminResponsesError),
                          registry->gauge(names::kAdminActive),
                          registry->counter(names::kAdminBytesOut)};
    }();
    return m;
  }
};

/// TCP transport telemetry (serve/transport.cc):
///   serve.net.accepted            connections accepted and served
///   serve.net.rejected            connections turned away at the cap
///   serve.net.active              (gauge) connections open right now
///   serve.net.frames              complete request lines framed
///   serve.net.frames_oversized    frames failed for exceeding the limit
///   serve.net.bytes_in/bytes_out  socket traffic
///   serve.net.idle_timeouts       idle connections closed
///   serve.net.request_timeouts    slowloris (mid-frame) closes
///   serve.net.backpressure_stalls reads paused at the write high-water
///   serve.net.resets              abortive closes (RST/EPIPE/injected)
///   serve.net.responses_orphaned  responses whose connection died first
///   serve.net.injected_faults     synthetic socket faults taken
///   serve.net.drain_micros        (gauge) last graceful-drain duration
///   serve.net.loop_lag_micros     (histogram) event-loop iteration time —
///                                 how long one poll batch kept the loop
///                                 away from its next Wait
///   serve.net.dispatch_batch      (histogram) readiness events per batch
///   serve.net.poller_errors       EventPoller Add/Modify/Remove failures —
///                                 normally zero; a nonzero value means a
///                                 connection's readiness interest went
///                                 stale and the timeout sweep reaped it
struct NetMetrics {
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Gauge* active;
  obs::Counter* frames;
  obs::Counter* frames_oversized;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* idle_timeouts;
  obs::Counter* request_timeouts;
  obs::Counter* backpressure_stalls;
  obs::Counter* resets;
  obs::Counter* responses_orphaned;
  obs::Counter* injected_faults;
  obs::Gauge* drain_micros;
  obs::Histogram* loop_lag_micros;
  obs::Histogram* dispatch_batch;
  obs::Counter* poller_errors;

  static NetMetrics& Get() {
    static NetMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return NetMetrics{registry->counter(names::kNetAccepted),
                        registry->counter(names::kNetRejected),
                        registry->gauge(names::kNetActive),
                        registry->counter(names::kNetFrames),
                        registry->counter(names::kNetFramesOversized),
                        registry->counter(names::kNetBytesIn),
                        registry->counter(names::kNetBytesOut),
                        registry->counter(names::kNetIdleTimeouts),
                        registry->counter(names::kNetRequestTimeouts),
                        registry->counter(names::kNetBackpressureStalls),
                        registry->counter(names::kNetResets),
                        registry->counter(names::kNetResponsesOrphaned),
                        registry->counter(names::kNetInjectedFaults),
                        registry->gauge(names::kNetDrainMicros),
                        registry->histogram(names::kNetLoopLagMicros),
                        registry->histogram(names::kNetDispatchBatch),
                        registry->counter(names::kNetPollerErrors)};
    }();
    return m;
  }
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_SERVE_METRICS_H_
