#ifndef TREELATTICE_SERVE_SERVE_METRICS_H_
#define TREELATTICE_SERVE_SERVE_METRICS_H_

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace treelattice {
namespace serve {

/// Serving telemetry (see obs/metric_names.h for the registry):
///   serve.requests          requests admitted to the queue
///   serve.responses_ok      successful estimates returned
///   serve.responses_error   error responses (parse, budget, internal)
///   serve.shed              requests rejected by a full admission queue
///   serve.queue_depth_peak  (gauge) high-water mark of the queue
///   serve.latency_micros    (histogram) submit-to-response latency
///   serve.reloads           successful summary hot-swaps
///   serve.reload_failures   reloads that kept the previous snapshot
///   serve.snapshot_version  (gauge) version of the serving snapshot
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* responses_ok;
  obs::Counter* responses_error;
  obs::Counter* shed;
  obs::Gauge* queue_depth_peak;
  obs::Histogram* latency_micros;
  obs::Counter* reloads;
  obs::Counter* reload_failures;
  obs::Gauge* snapshot_version;

  static ServeMetrics& Get() {
    static ServeMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return ServeMetrics{registry->counter(names::kServeRequests),
                          registry->counter(names::kServeResponsesOk),
                          registry->counter(names::kServeResponsesError),
                          registry->counter(names::kServeShed),
                          registry->gauge(names::kServeQueueDepthPeak),
                          registry->histogram(names::kServeLatencyMicros),
                          registry->counter(names::kServeReloads),
                          registry->counter(names::kServeReloadFailures),
                          registry->gauge(names::kServeSnapshotVersion)};
    }();
    return m;
  }
};

/// TCP transport telemetry (serve/transport.cc):
///   serve.net.accepted            connections accepted and served
///   serve.net.rejected            connections turned away at the cap
///   serve.net.active              (gauge) connections open right now
///   serve.net.frames              complete request lines framed
///   serve.net.frames_oversized    frames failed for exceeding the limit
///   serve.net.bytes_in/bytes_out  socket traffic
///   serve.net.idle_timeouts       idle connections closed
///   serve.net.request_timeouts    slowloris (mid-frame) closes
///   serve.net.backpressure_stalls reads paused at the write high-water
///   serve.net.resets              abortive closes (RST/EPIPE/injected)
///   serve.net.responses_orphaned  responses whose connection died first
///   serve.net.injected_faults     synthetic socket faults taken
///   serve.net.drain_micros        (gauge) last graceful-drain duration
struct NetMetrics {
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Gauge* active;
  obs::Counter* frames;
  obs::Counter* frames_oversized;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* idle_timeouts;
  obs::Counter* request_timeouts;
  obs::Counter* backpressure_stalls;
  obs::Counter* resets;
  obs::Counter* responses_orphaned;
  obs::Counter* injected_faults;
  obs::Gauge* drain_micros;

  static NetMetrics& Get() {
    static NetMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return NetMetrics{registry->counter(names::kNetAccepted),
                        registry->counter(names::kNetRejected),
                        registry->gauge(names::kNetActive),
                        registry->counter(names::kNetFrames),
                        registry->counter(names::kNetFramesOversized),
                        registry->counter(names::kNetBytesIn),
                        registry->counter(names::kNetBytesOut),
                        registry->counter(names::kNetIdleTimeouts),
                        registry->counter(names::kNetRequestTimeouts),
                        registry->counter(names::kNetBackpressureStalls),
                        registry->counter(names::kNetResets),
                        registry->counter(names::kNetResponsesOrphaned),
                        registry->counter(names::kNetInjectedFaults),
                        registry->gauge(names::kNetDrainMicros)};
    }();
    return m;
  }
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_SERVE_METRICS_H_
