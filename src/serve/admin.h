#ifndef TREELATTICE_SERVE_ADMIN_H_
#define TREELATTICE_SERVE_ADMIN_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/introspect.h"
#include "util/result.h"

namespace treelattice {
namespace serve {

class SlowQueryLog;

/// The admin plane of `treelattice serve` (DESIGN.md §12): a deliberately
/// tiny HTTP/1.1 subset — enough for curl and a Prometheus scraper, and
/// nothing more — served from the transport's own event loop on a second
/// acceptor. One request per connection (every response is
/// `Connection: close`), GET/HEAD only, request bodies ignored.
///
/// Endpoints:
///   /metrics   Prometheus text from the live metrics registry
///   /healthz   readiness: 200 {"ok":true,...} or 503 with the reason
///   /statusz   the full StatusSnapshot as JSON (plus build info)
///   /slowz     the slow-query ring, newest first
///   /          plain-text index of the above
///
/// This module is pure protocol: parsing, dispatch, and rendering on
/// std::string buffers. The transport owns sockets and the event loop.

/// One parsed request head. Only the request line matters to us; headers
/// are consumed and ignored.
struct AdminRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string target;  // origin-form, e.g. "/metrics?name=x"
};

/// Incrementally parses one request head from the front of `*in`,
/// consuming it (through the blank line) on success. Returns nullopt when
/// the head is still incomplete — feed more bytes and call again. Fails on
/// a malformed request line or a head larger than `max_head_bytes`.
Result<std::optional<AdminRequest>> ParseAdminRequestHead(
    std::string* in, size_t max_head_bytes);

/// What an endpoint produced, before HTTP framing.
struct AdminResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// HEAD: frame the headers (with the real Content-Length) but no body.
  bool omit_body = false;
};

/// Frames `response` as a complete HTTP/1.1 message with Content-Length
/// and `Connection: close`.
std::string RenderHttpResponse(const AdminResponse& response);

/// What the admin plane is allowed to see. All callbacks run on the
/// transport's loop thread — keep them quick.
struct AdminHooks {
  /// The one coherent status snapshot (/healthz and /statusz).
  std::function<StatusSnapshot()> status;
  /// Prometheus rendering of the live registry (/metrics).
  std::function<std::string()> metrics_text;
  /// May be null: /slowz then reports enabled=false.
  const SlowQueryLog* slow_log = nullptr;
};

/// Dispatches one request to its endpoint. Never throws, never fails:
/// unknown targets get 404, non-GET/HEAD methods 405. Also bumps the
/// admin.* metrics.
AdminResponse HandleAdminRequest(const AdminRequest& request,
                                 const AdminHooks& hooks);

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_ADMIN_H_
