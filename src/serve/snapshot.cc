#include "serve/snapshot.h"

#include <chrono>
#include <thread>
#include <utility>

#include "serve/serve_metrics.h"
#include "summary/summary_format.h"
#include "xml/dict_codec.h"

namespace treelattice {
namespace serve {

namespace {

/// One load attempt: summary (either format), then the dictionary —
/// embedded for v2, the .dict sidecar for v1.
Result<std::shared_ptr<SummarySnapshot>> LoadAttempt(
    Env* env, const std::string& path, const ReloadOptions& options) {
  Result<LoadedSummary> loaded = LoadSummary(env, path);
  if (!loaded.ok()) return loaded.status();
  if (loaded->salvaged && !options.accept_salvaged) {
    return Status::Corruption("summary at " + path + " is damaged (" +
                              loaded->corruption_detail +
                              "); refusing salvaged reload");
  }

  LabelDict dict;
  if (loaded->dict) {
    dict = std::move(*loaded->dict);
  } else {
    Result<LabelDict> sidecar = LoadLabelDict(env, path + ".dict");
    if (!sidecar.ok()) {
      return Status(sidecar.status().code(),
                    "no label dictionary for " + path +
                        " (v2 embeds one; v1 needs the .dict sidecar): " +
                        sidecar.status().message());
    }
    dict = std::move(*sidecar);
  }

  auto snapshot = std::make_shared<SummarySnapshot>(
      std::move(loaded->summary), std::move(dict));
  snapshot->salvaged = loaded->salvaged;
  snapshot->source =
      loaded->salvaged ? path + " (salvaged: " + loaded->corruption_detail + ")"
                       : path;
  return snapshot;
}

}  // namespace

Status ReloadSummary(Env* env, const std::string& path,
                     const ReloadOptions& options, SnapshotHolder* holder) {
  ServeMetrics& metrics = ServeMetrics::Get();
  Status last = Status::Internal("reload never attempted");
  const int attempts = options.attempts > 0 ? options.attempts : 1;
  double backoff = options.backoff_millis;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
      backoff *= 2.0;
    }
    Result<std::shared_ptr<SummarySnapshot>> snapshot =
        LoadAttempt(env, path, options);
    if (snapshot.ok()) {
      int64_t version = holder->Swap(std::move(*snapshot));
      metrics.reloads->Increment();
      metrics.snapshot_version->Set(version);
      return Status::OK();
    }
    last = snapshot.status();
  }
  metrics.reload_failures->Increment();
  return last;
}

}  // namespace serve
}  // namespace treelattice
