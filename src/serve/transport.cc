#include "serve/transport.h"

#include <cerrno>
#include <chrono>
#include <unistd.h>
#include <utility>

#include "obs/metrics.h"
#include "serve/admin.h"
#include "serve/serve_metrics.h"
#include "serve/slow_log.h"
#include "util/json.h"

namespace treelattice {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

bool IsResetErrno(int error) {
  return error == ECONNRESET || error == EPIPE || error == ETIMEDOUT;
}

/// Longest an admin connection may sit idle (request not arrived, or
/// response unread). Admin exchanges are one round trip; anything parked
/// this long is a stuck scraper.
constexpr double kAdminIdleMillis = 10000.0;

/// Largest admin request head we will buffer before answering 400.
constexpr size_t kAdminMaxHeadBytes = 16384;

/// The response-side slice of a ServeResponse that the trace finalizer
/// keeps (serve/request_trace.h).
RequestOutcome OutcomeOf(const ServeResponse& response) {
  RequestOutcome outcome;
  outcome.query = response.query;
  outcome.rung = response.rung;
  outcome.error_code = response.error_code;
  outcome.ok = response.ok;
  outcome.cached = response.cached;
  outcome.degraded = response.degraded;
  outcome.snapshot_version = response.snapshot_version;
  return outcome;
}

/// The trace-finalizer slice of a whole batch line: ok only when every
/// item succeeded, degraded/cached when any item was, first error wins.
RequestOutcome OutcomeOfBatch(const ServeBatchResponse& response) {
  RequestOutcome outcome;
  outcome.query = "[batch:" + std::to_string(response.items.size()) + "]";
  outcome.ok = true;
  for (const ServeResponse& item : response.items) {
    if (!item.ok && outcome.error_code.empty()) {
      outcome.ok = false;
      outcome.error_code = item.error_code;
    }
    outcome.degraded = outcome.degraded || item.degraded;
    outcome.cached = outcome.cached || item.cached;
    outcome.snapshot_version = item.snapshot_version;
  }
  return outcome;
}

}  // namespace

Transport::Transport(SnapshotHolder* snapshots, ServerOptions server_options,
                     Options options, ControlHandler control)
    : snapshots_(snapshots),
      options_(std::move(options)),
      control_(std::move(control)),
      poller_(options_.force_poll),
      io_(options_.faults) {
  started_ = Clock::now();
  // The server's sink runs on worker threads: it only copies the response
  // into the completion queue and nudges the loop — sockets stay owned by
  // the loop thread.
  server_ = std::make_unique<Server>(
      snapshots, std::move(server_options),
      [this](const ServeResponse& response) {
        bool was_empty;
        {
          std::lock_guard<std::mutex> lock(completion_mu_);
          was_empty = completions_.empty();
          completions_.push_back(Completion{response.id, response, nullptr});
        }
        if (was_empty) wake_.Wake();
      },
      [this](ServeBatchResponse response) {
        // Batch lines route by the trace's process-unique request id; the
        // whole array is one completion unit.
        const uint64_t internal_id = response.trace.req_id;
        bool was_empty;
        {
          std::lock_guard<std::mutex> lock(completion_mu_);
          was_empty = completions_.empty();
          completions_.push_back(Completion{
              internal_id, ServeResponse{},
              std::make_unique<ServeBatchResponse>(std::move(response))});
        }
        if (was_empty) wake_.Wake();
      });
}

Transport::~Transport() {
  // Run() already tore everything down in the normal lifecycle; this
  // covers construction-then-destruction without Run (e.g. Listen failed).
  for (auto& [fd, conn] : conns_) {
    conn->cancel->Cancel();
    close(fd);
  }
  conns_.clear();
  for (auto& [fd, conn] : admin_conns_) close(fd);
  admin_conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (admin_listen_fd_ >= 0) close(admin_listen_fd_);
  server_->Shutdown();
}

Result<uint16_t> Transport::Listen() {
  if (listen_fd_ >= 0) return port_;
  Result<int> fd = ListenTcp(options_.host, options_.port, options_.backlog);
  if (!fd.ok()) return fd.status();
  Result<uint16_t> port = BoundPort(*fd);
  if (!port.ok()) {
    close(*fd);
    return port.status();
  }
  listen_fd_ = *fd;
  port_ = *port;
  if (options_.admin_enabled && admin_listen_fd_ < 0) {
    Result<int> admin_fd =
        ListenTcp(options_.admin_host, options_.admin_port, 16);
    if (!admin_fd.ok()) return admin_fd.status();
    Result<uint16_t> admin_port = BoundPort(*admin_fd);
    if (!admin_port.ok()) {
      close(*admin_fd);
      return admin_port.status();
    }
    admin_listen_fd_ = *admin_fd;
    admin_port_ = *admin_port;
  }
  return port_;
}

void Transport::RequestShutdown() {
  stop_requested_.store(true, std::memory_order_release);
  wake_.Wake();
}

Transport::Stats Transport::GetStats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.frames_oversized = frames_oversized_.load(std::memory_order_relaxed);
  stats.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  stats.responses_delivered =
      responses_delivered_.load(std::memory_order_relaxed);
  stats.responses_orphaned =
      responses_orphaned_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.request_timeouts = request_timeouts_.load(std::memory_order_relaxed);
  stats.backpressure_stalls =
      backpressure_stalls_.load(std::memory_order_relaxed);
  stats.resets = resets_.load(std::memory_order_relaxed);
  stats.poller_errors = poller_errors_.load(std::memory_order_relaxed);
  stats.injected_faults = io_.injected_faults();
  stats.drain_micros = drain_micros_.load(std::memory_order_relaxed);
  return stats;
}

int Transport::WaitTimeoutMillis() const {
  // The sweep granularity bounds how late a timeout can fire; a quarter of
  // the tightest configured timeout keeps that error small without waking
  // a quiet server aggressively.
  double tightest = 500.0;
  if (options_.idle_timeout_millis > 0.0) {
    tightest = std::min(tightest, options_.idle_timeout_millis / 4.0);
  }
  if (options_.request_timeout_millis > 0.0) {
    tightest = std::min(tightest, options_.request_timeout_millis / 4.0);
  }
  if (draining_) tightest = std::min(tightest, 20.0);
  return tightest < 1.0 ? 1 : static_cast<int>(tightest);
}

Status Transport::Run(const volatile std::sig_atomic_t* stop_flag) {
  if (listen_fd_ < 0) {
    Result<uint16_t> port = Listen();
    if (!port.ok()) return port.status();
  }
  if (!wake_.ok()) return Status::Internal("transport wake pipe failed");
  TL_RETURN_IF_ERROR(poller_.Add(listen_fd_, true, false));
  TL_RETURN_IF_ERROR(poller_.Add(wake_.read_fd(), true, false));
  if (admin_listen_fd_ >= 0) {
    TL_RETURN_IF_ERROR(poller_.Add(admin_listen_fd_, true, false));
  }

  started_ = Clock::now();
  last_sweep_ = Clock::now();
  std::vector<EventPoller::Event> events;
  Status loop_status = Status::OK();
  for (;;) {
    if (!draining_ && (stop_requested_.load(std::memory_order_acquire) ||
                       (stop_flag != nullptr && *stop_flag != 0))) {
      BeginDrain();
    }
    if (draining_) {
      if (conns_.empty()) break;
      const double elapsed = MillisSince(drain_started_, Clock::now());
      const double soft = options_.drain_deadline_millis;
      if (!drain_cancelled_ && elapsed >= soft) {
        // Soft deadline: whatever has not finished is cancelled; workers
        // trip their governors and the error responses flush normally.
        for (auto& [fd, conn] : conns_) conn->cancel->Cancel();
        drain_cancelled_ = true;
      }
      if (elapsed >= 2.0 * soft) {
        // Hard deadline: stop waiting for unflushable peers.
        break;
      }
    }

    Status s = poller_.Wait(WaitTimeoutMillis(), &events);
    if (!s.ok()) {
      loop_status = s;
      break;
    }
    // Re-check the stop request before dispatching: a shutdown that landed
    // while we were in Wait must be visible to every event in this batch —
    // otherwise an admin probe racing the wake could still read "ready",
    // and a serving accept could slip in after the operator said stop.
    if (!draining_ && (stop_requested_.load(std::memory_order_acquire) ||
                       (stop_flag != nullptr && *stop_flag != 0))) {
      BeginDrain();
    }
    // Loop health: how many fds fired, and how long this batch keeps the
    // loop away from its next Wait (recorded at the bottom).
    const Clock::time_point dispatch_started = Clock::now();
    for (const EventPoller::Event& event : events) {
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      if (event.fd == listen_fd_) {
        if (!draining_) AcceptNew();
        continue;
      }
      if (event.fd == admin_listen_fd_) {
        // The admin plane accepts during drain: /healthz reports it.
        AcceptAdmin();
        continue;
      }
      if (auto admin_it = admin_conns_.find(event.fd);
          admin_it != admin_conns_.end()) {
        AdminConn* admin_conn = admin_it->second.get();
        if (event.error) {
          CloseAdminConn(admin_conn);
          continue;
        }
        if (event.writable) {
          FlushAdmin(admin_conn);
          admin_it = admin_conns_.find(event.fd);
          if (admin_it == admin_conns_.end()) continue;
          admin_conn = admin_it->second.get();
        }
        if (event.readable) ReadAdmin(admin_conn);
        continue;
      }
      auto it = conns_.find(event.fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn* conn = it->second.get();
      if (event.error) {
        // EPOLLERR/EPOLLHUP: the peer reset (or the socket died). A clean
        // half-close arrives as readable-EOF instead, never here.
        resets_.fetch_add(1, std::memory_order_relaxed);
        NetMetrics::Get().resets->Increment();
        CloseConn(conn, /*abortive=*/true);
        continue;
      }
      if (event.writable) {
        FlushConn(conn);
        it = conns_.find(event.fd);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      if (event.readable) ReadConn(conn);
    }
    DrainCompletions();

    const Clock::time_point now = Clock::now();
    if (!events.empty()) {
      NetMetrics& metrics = NetMetrics::Get();
      metrics.dispatch_batch->Record(events.size());
      metrics.loop_lag_micros->Record(static_cast<uint64_t>(
          MillisSince(dispatch_started, now) * 1000.0));
    }
    if (MillisSince(last_sweep_, now) >= WaitTimeoutMillis()) {
      SweepTimeouts();
      last_sweep_ = now;
    }
  }

  // Loop exited: account the drain, release every socket, and only then
  // stop the workers — Server::Shutdown answers everything still queued,
  // so the final completion sweep can account each one as orphaned.
  const Clock::time_point drain_end = Clock::now();
  for (auto& [fd, conn] : conns_) {
    conn->cancel->Cancel();
    FinalizeUnflushed(conn.get());
    RemoveFromPoller(fd);
    close(fd);
    active_.fetch_sub(1, std::memory_order_relaxed);
    NetMetrics::Get().active->Add(-1);
  }
  conns_.clear();
  conn_fd_by_id_.clear();
  for (auto& [fd, conn] : admin_conns_) {
    RemoveFromPoller(fd);
    close(fd);
    AdminMetrics::Get().active->Add(-1);
  }
  admin_conns_.clear();
  if (listen_fd_ >= 0) {
    RemoveFromPoller(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (admin_listen_fd_ >= 0) {
    RemoveFromPoller(admin_listen_fd_);
    close(admin_listen_fd_);
    admin_listen_fd_ = -1;
  }
  // tl-analyze: allow(loop-blocking) -- drain path: the event loop has
  // exited; joining the workers here is the whole point of the drain
  server_->Shutdown();
  DrainCompletions();
  RemoveFromPoller(wake_.read_fd());

  if (draining_) {
    const double micros =
        MillisSince(drain_started_, drain_end) * 1000.0;
    drain_micros_.store(micros, std::memory_order_relaxed);
    NetMetrics::Get().drain_micros->Set(static_cast<int64_t>(micros));
  }
  NetMetrics::Get().injected_faults->Increment(io_.injected_faults() -
                                               metered_faults_);
  metered_faults_ = io_.injected_faults();
  return loop_status;
}

void Transport::BeginDrain() {
  draining_ = true;
  drain_started_ = Clock::now();
  drain_cancelled_ = false;
  if (listen_fd_ >= 0) {
    RemoveFromPoller(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading everywhere; close connections with nothing left to say.
  // (Bytes already buffered but not yet newline-terminated are abandoned —
  // the peer never finished asking.)
  std::vector<int> idle_fds;
  for (auto& [fd, conn] : conns_) {
    UpdateInterest(conn.get());
    if (conn->idle()) idle_fds.push_back(fd);
  }
  for (int fd : idle_fds) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) CloseConn(it->second.get(), /*abortive=*/false);
  }
}

void Transport::AcceptNew() {
  NetMetrics& metrics = NetMetrics::Get();
  for (;;) {
    NetIoResult accepted = io_.Accept(listen_fd_);
    if (accepted.kind == NetIoResult::Kind::kWouldBlock) return;
    if (accepted.kind != NetIoResult::Kind::kOk) return;  // listener hiccup
    const int fd = accepted.fd;
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Turn-away: the one write this connection gets. Best effort — a
      // flooder that cannot even take one line is simply closed.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics.rejected->Increment();
      ServeResponse response;
      response.ok = false;
      response.error_code =
          std::string(StatusCodeToString(StatusCode::kResourceExhausted));
      response.error_message = "connection limit reached; retry later";
      std::string line = response.ToJsonLine();
      line.push_back('\n');
      NetIoResult wrote = io_.Write(fd, line.data(), line.size());
      if (wrote.ok()) {
        bytes_out_.fetch_add(wrote.bytes, std::memory_order_relaxed);
        metrics.bytes_out->Increment(wrote.bytes);
      }
      close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    metrics.accepted->Increment();
    metrics.active->Add(1);
    const uint64_t id = ++next_conn_id_;
    auto conn = std::make_unique<Conn>(id, fd, options_.max_frame_bytes);
    conn->last_activity = Clock::now();
    if (!poller_.Add(fd, true, false).ok()) {
      active_.fetch_sub(1, std::memory_order_relaxed);
      metrics.active->Add(-1);
      close(fd);
      continue;
    }
    conn->want_read = true;
    conn->want_write = false;
    Conn* raw = conn.get();
    conn_fd_by_id_[id] = fd;
    conns_[fd] = std::move(conn);
    // The client may have pipelined its whole burst before we accepted.
    ReadConn(raw);
  }
}

void Transport::ReadConn(Conn* conn) {
  NetMetrics& metrics = NetMetrics::Get();
  char buf[4096];
  std::vector<NdjsonFramer::Event> events;
  // Bounded rounds per readiness event so one firehose connection cannot
  // starve the rest of the loop (level-triggered: the rest arrives next
  // iteration).
  for (int round = 0; round < 16; ++round) {
    if (conn->state != Conn::State::kOpen || conn->paused || draining_) break;
    NetIoResult got = io_.Read(conn->fd, buf, sizeof(buf));
    if (got.kind == NetIoResult::Kind::kWouldBlock) break;
    if (got.kind == NetIoResult::Kind::kEof) {
      // Orderly half-close: the peer finished sending. Everything already
      // framed still gets answered and flushed before we close.
      conn->state = Conn::State::kHalfClosed;
      if (conn->idle()) {
        CloseConn(conn, /*abortive=*/false);
        return;
      }
      break;
    }
    if (got.kind == NetIoResult::Kind::kError) {
      if (IsResetErrno(got.error)) {
        resets_.fetch_add(1, std::memory_order_relaxed);
        metrics.resets->Increment();
      }
      CloseConn(conn, /*abortive=*/true);
      return;
    }
    bytes_in_.fetch_add(got.bytes, std::memory_order_relaxed);
    metrics.bytes_in->Increment(got.bytes);
    conn->last_activity = Clock::now();
    const bool was_mid_frame = conn->framer.mid_frame();
    events.clear();
    conn->framer.Feed(std::string_view(buf, got.bytes), &events);
    for (NdjsonFramer::Event& event : events) {
      HandleFrame(conn, std::move(event));
    }
    if (conn->framer.mid_frame() && (!was_mid_frame || !events.empty())) {
      // A fresh partial frame started (or progress was made): restart the
      // slowloris clock.
      conn->frame_started = conn->last_activity;
    }
  }
  UpdateInterest(conn);
}

void Transport::HandleFrame(Conn* conn, NdjsonFramer::Event event) {
  NetMetrics& metrics = NetMetrics::Get();
  if (event.kind == NdjsonFramer::EventKind::kOversized) {
    // Fail the request, keep the connection: the framer is already
    // discarding through the frame's terminating newline.
    frames_oversized_.fetch_add(1, std::memory_order_relaxed);
    metrics.frames_oversized->Increment();
    EnqueueErrorLine(conn, ++conn->next_client_id, /*req=*/0, "",
                     StatusCode::kInvalidArgument,
                     "request line exceeds max frame size of " +
                         std::to_string(options_.max_frame_bytes) + " bytes");
    return;
  }
  frames_.fetch_add(1, std::memory_order_relaxed);
  metrics.frames->Increment();
  const std::string& line = event.line;
  if (line.front() == '#') {
    HandleControlLine(conn, line);
    return;
  }
  // The internal id doubles as the process-unique request id ("req" in
  // the response): Begin the trace before parsing so parse time lands in
  // the admit stage.
  const uint64_t internal_id = ++next_internal_id_;
  RequestTrace trace = RequestTrace::Begin(internal_id);
  if (IsBatchRequestLine(line)) {
    // Batch envelope: one line in, one array line out. Admission is
    // per-query (the Server sheds the whole batch atomically when the
    // queue cannot take all of it), so is conservation: the route records
    // the query count and DrainCompletions accounts every one.
    Result<ServeBatch> batch =
        ParseBatchRequestLine(line, server_->options().queue_capacity);
    if (!batch.ok()) {
      EnqueueErrorLine(conn, ++conn->next_client_id, internal_id, "",
                       batch.status().code(), batch.status().message());
      return;
    }
    const uint32_t queries = static_cast<uint32_t>(batch->items.size());
    trace.batch_size = queries;
    batch->trace = trace;
    batch->cancel = conn->cancel;
    routes_[internal_id] =
        Route{conn->id, /*client_id=*/0, queries};
    ++conn->in_flight;
    requests_admitted_.fetch_add(queries, std::memory_order_relaxed);
    server_->SubmitBatch(std::move(*batch));
    return;
  }
  Result<ServeRequest> request = ParseRequestLine(line);
  uint64_t client_id = ++conn->next_client_id;
  if (!request.ok()) {
    EnqueueErrorLine(conn, client_id, internal_id, line,
                     request.status().code(), request.status().message());
    return;
  }
  if (request->id != 0) client_id = request->id;
  routes_[internal_id] = Route{conn->id, client_id};
  request->id = internal_id;
  request->trace = trace;
  request->cancel = conn->cancel;
  ++conn->in_flight;
  requests_admitted_.fetch_add(1, std::memory_order_relaxed);
  // A full admission queue sheds synchronously: the sink fires before
  // Submit returns and the completion path below answers it like any
  // other response — exactly one response per admitted frame, always.
  server_->Submit(std::move(*request));
}

void Transport::HandleControlLine(Conn* conn, const std::string& line) {
  if (line == "#stats") {
    EnqueueLine(conn, StatsJsonLine());
    return;
  }
  if (control_ != nullptr) {
    std::string response = control_(line);
    if (!response.empty()) {
      EnqueueLine(conn, response);
      return;
    }
  }
  EnqueueErrorLine(conn, ++conn->next_client_id, /*req=*/0, line,
                   StatusCode::kInvalidArgument, "unknown control line");
}

void Transport::EnqueueLine(Conn* conn, std::string_view line) {
  conn->out.append(line);
  conn->out.push_back('\n');
  conn->total_enqueued += line.size() + 1;
  if (!conn->paused &&
      conn->pending_out() > options_.write_high_water) {
    // Backpressure: stop reading until the peer drains its responses.
    // Its further pipelined requests wait in kernel buffers, not here.
    conn->paused = true;
    backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::Get().backpressure_stalls->Increment();
  }
  UpdateInterest(conn);
}

void Transport::EnqueueErrorLine(Conn* conn, uint64_t id, uint64_t req,
                                 std::string_view query, StatusCode code,
                                 std::string_view message) {
  ServeResponse response;
  response.id = id;
  // Transport-level errors never reach the Server, but they still carry a
  // process-unique request id — every response line is correlatable.
  response.req = req != 0 ? req : ++next_internal_id_;
  response.query = std::string(query);
  response.ok = false;
  response.error_code = std::string(StatusCodeToString(code));
  response.error_message = std::string(message);
  EnqueueLine(conn, response.ToJsonLine());
}

void Transport::FlushConn(Conn* conn) {
  NetMetrics& metrics = NetMetrics::Get();
  while (conn->pending_out() > 0) {
    NetIoResult wrote = io_.Write(conn->fd, conn->out.data() + conn->out_offset,
                                  conn->pending_out());
    if (wrote.kind == NetIoResult::Kind::kWouldBlock) break;
    if (!wrote.ok()) {
      // EPIPE/ECONNRESET on write: nobody is listening any more; finishing
      // the in-flight estimates would only burn workers.
      if (IsResetErrno(wrote.error)) {
        resets_.fetch_add(1, std::memory_order_relaxed);
        metrics.resets->Increment();
      }
      CloseConn(conn, /*abortive=*/true);
      return;
    }
    conn->out_offset += wrote.bytes;
    conn->total_flushed += wrote.bytes;
    bytes_out_.fetch_add(wrote.bytes, std::memory_order_relaxed);
    metrics.bytes_out->Increment(wrote.bytes);
    conn->last_activity = Clock::now();
  }
  FinalizeFlushed(conn);
  if (conn->pending_out() == 0) {
    conn->out.clear();
    conn->out_offset = 0;
  }
  if (conn->paused && conn->pending_out() < options_.write_low_water) {
    conn->paused = false;
  }
  if (conn->idle() &&
      (conn->state == Conn::State::kHalfClosed || draining_)) {
    CloseConn(conn, /*abortive=*/false);
    return;
  }
  UpdateInterest(conn);
}

void Transport::UpdateInterest(Conn* conn) {
  const bool want_read =
      conn->state == Conn::State::kOpen && !conn->paused && !draining_;
  const bool want_write = conn->pending_out() > 0;
  if (want_read == conn->want_read && want_write == conn->want_write) return;
  conn->want_read = want_read;
  conn->want_write = want_write;
  Status modified = poller_.Modify(conn->fd, want_read, want_write);
  if (!modified.ok()) {
    // The kernel's view of this fd is now stale, so the loop may never see
    // it ready again. Count the error (normally zero; see #stats) and let
    // the idle/slowloris sweep reap the connection: a poller failure
    // degrades to a timeout instead of a silent forever-hang. Closing here
    // would invalidate the conns_ iterator of BeginDrain's caller.
    CountPollerError();
  }
}

void Transport::RemoveFromPoller(int fd) {
  Status removed = poller_.Remove(fd);
  // Interest-map bookkeeping is erased even when the kernel-side
  // deregistration errors, and every caller closes the fd next, which
  // completes the epoll detach either way. Still counted: an unexpected
  // epoll_ctl failure should be visible, not silent.
  if (!removed.ok()) CountPollerError();
}

void Transport::CountPollerError() {
  poller_errors_.fetch_add(1, std::memory_order_relaxed);
  NetMetrics::Get().poller_errors->Increment();
}

void Transport::CloseConn(Conn* conn, bool abortive) {
  if (abortive) {
    // Cancel in-flight work: the governor trips on its next charge and the
    // response (kCancelled) comes back to be accounted as orphaned.
    conn->cancel->Cancel();
  }
  // Lines still buffered never reach the wire; their traces end at
  // "serialized" and are accounted now.
  FinalizeUnflushed(conn);
  RemoveFromPoller(conn->fd);
  close(conn->fd);
  active_.fetch_sub(1, std::memory_order_relaxed);
  NetMetrics::Get().active->Add(-1);
  conn_fd_by_id_.erase(conn->id);
  conns_.erase(conn->fd);  // destroys *conn — must be last
}

void Transport::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  NetMetrics& metrics = NetMetrics::Get();
  for (Completion& completion : batch) {
    auto route_it = routes_.find(completion.internal_id);
    if (route_it == routes_.end()) continue;  // should not happen
    const Route route = route_it->second;
    routes_.erase(route_it);
    auto fd_it = conn_fd_by_id_.find(route.conn_id);
    if (fd_it == conn_fd_by_id_.end()) {
      // The connection died before its answer was ready. Not silent: the
      // work was cancelled at close and the drop is counted here — and the
      // trace finalizes with its last real stamp (never serialized).
      // Conservation is per-query: a dead batch line orphans every query
      // it carried.
      responses_orphaned_.fetch_add(route.queries, std::memory_order_relaxed);
      metrics.responses_orphaned->Increment(route.queries);
      if (completion.batch != nullptr) {
        FinalizeRequestTrace(completion.batch->trace,
                             OutcomeOfBatch(*completion.batch),
                             options_.slow_log);
      } else {
        FinalizeRequestTrace(completion.response.trace,
                             OutcomeOf(completion.response), options_.slow_log);
      }
      continue;
    }
    Conn* conn = conns_.at(fd_it->second).get();
    --conn->in_flight;
    responses_delivered_.fetch_add(route.queries, std::memory_order_relaxed);
    RequestTrace trace;
    std::string line;
    RequestOutcome outcome;
    if (completion.batch != nullptr) {
      // One array line answers the whole batch; per-item ids are whatever
      // the client put in its envelopes (positional matching otherwise).
      trace = completion.batch->trace;
      line = completion.batch->ToJsonLine();
      outcome = OutcomeOfBatch(*completion.batch);
    } else {
      completion.response.id = route.client_id;
      trace = completion.response.trace;
      line = completion.response.ToJsonLine();
      outcome = OutcomeOf(completion.response);
    }
    trace.StampSerialized();
    EnqueueLine(conn, line);
    if (trace.active) {
      // The flush stamp waits for the kernel to take the line's last byte;
      // the marker anchors to the output stream's lifetime byte position.
      Conn::PendingFinalize marker;
      marker.bytes_end = conn->total_enqueued;
      marker.trace = trace;
      marker.outcome = std::move(outcome);
      conn->pending_finalize.push_back(std::move(marker));
    }
    // Opportunistic flush: saves one poller round-trip per response and
    // lets half-closed/draining connections finish immediately.
    FlushConn(conn);
  }
}

void Transport::FinalizeFlushed(Conn* conn) {
  while (!conn->pending_finalize.empty() &&
         conn->pending_finalize.front().bytes_end <= conn->total_flushed) {
    Conn::PendingFinalize marker = std::move(conn->pending_finalize.front());
    conn->pending_finalize.pop_front();
    marker.trace.StampFlushed();
    FinalizeRequestTrace(marker.trace, marker.outcome, options_.slow_log);
  }
}

void Transport::FinalizeUnflushed(Conn* conn) {
  for (Conn::PendingFinalize& marker : conn->pending_finalize) {
    FinalizeRequestTrace(marker.trace, marker.outcome, options_.slow_log);
  }
  conn->pending_finalize.clear();
}

void Transport::SweepTimeouts() {
  const Clock::time_point now = Clock::now();
  NetMetrics& metrics = NetMetrics::Get();
  std::vector<int> victims_idle;
  std::vector<int> victims_slow;
  for (auto& [fd, conn] : conns_) {
    if (options_.request_timeout_millis > 0.0 && conn->framer.mid_frame() &&
        MillisSince(conn->frame_started, now) >
            options_.request_timeout_millis) {
      victims_slow.push_back(fd);
      continue;
    }
    if (options_.idle_timeout_millis > 0.0 && conn->in_flight == 0 &&
        MillisSince(conn->last_activity, now) >
            options_.idle_timeout_millis) {
      // Covers both the silent connection and the one whose responses
      // cannot be delivered (peer stopped reading): neither made progress.
      victims_idle.push_back(fd);
    }
  }
  for (int fd : victims_slow) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    request_timeouts_.fetch_add(1, std::memory_order_relaxed);
    metrics.request_timeouts->Increment();
    // Best-effort parting error, then the slowloris is gone.
    EnqueueErrorLine(conn, ++conn->next_client_id, /*req=*/0, "",
                     StatusCode::kDeadlineExceeded,
                     "request frame not completed in time");
    std::string_view out(conn->out.data() + conn->out_offset,
                         conn->pending_out());
    NetIoResult wrote = io_.Write(conn->fd, out.data(), out.size());
    if (wrote.ok()) {
      bytes_out_.fetch_add(wrote.bytes, std::memory_order_relaxed);
      metrics.bytes_out->Increment(wrote.bytes);
    }
    CloseConn(conn, /*abortive=*/true);
  }
  for (int fd : victims_idle) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
    metrics.idle_timeouts->Increment();
    CloseConn(it->second.get(), /*abortive=*/false);
  }
  // Admin connections are one short exchange; sweep stragglers.
  std::vector<int> admin_victims;
  for (auto& [fd, conn] : admin_conns_) {
    if (MillisSince(conn->last_activity, now) > kAdminIdleMillis) {
      admin_victims.push_back(fd);
    }
  }
  for (int fd : admin_victims) {
    auto it = admin_conns_.find(fd);
    if (it != admin_conns_.end()) CloseAdminConn(it->second.get());
  }
}

StatusSnapshot Transport::BuildStatus() const {
  StatusSnapshot status;
  status.server = server_->GetStats();
  status.queue_capacity = server_->options().queue_capacity;
  status.workers = server_->options().workers;
  status.snapshot_version = snapshots_->version();
  if (std::shared_ptr<const SummarySnapshot> snap = snapshots_->Get()) {
    status.snapshot_salvaged = snap->salvaged;
  }
  status.draining = draining_;
  status.uptime_seconds = MillisSince(started_, Clock::now()) / 1000.0;
  status.has_net = true;
  status.net = GetStats();
  if (options_.slow_log != nullptr) {
    status.slow_queries = options_.slow_log->total_recorded();
    status.slow_threshold_millis = options_.slow_log->options().threshold_millis;
  }
  return status;
}

std::string Transport::StatsJsonLine() const {
  // One snapshot path for every surface: '#stats' here, /statusz and
  // /healthz in the admin plane — the JSON can never drift apart.
  return introspect::StatsJsonLine(BuildStatus());
}

void Transport::AcceptAdmin() {
  AdminMetrics& metrics = AdminMetrics::Get();
  for (;;) {
    NetIoResult accepted = io_.Accept(admin_listen_fd_);
    if (accepted.kind != NetIoResult::Kind::kOk) return;
    const int fd = accepted.fd;
    if (static_cast<int>(admin_conns_.size()) >=
        options_.max_admin_connections) {
      close(fd);  // no protocol courtesy: the admin plane is best-effort
      continue;
    }
    auto conn = std::make_unique<AdminConn>(fd);
    conn->last_activity = Clock::now();
    if (!poller_.Add(fd, true, false).ok()) {
      close(fd);
      continue;
    }
    metrics.active->Add(1);
    AdminConn* raw = conn.get();
    admin_conns_[fd] = std::move(conn);
    // The scraper may have sent its whole request already.
    ReadAdmin(raw);
  }
}

void Transport::ReadAdmin(AdminConn* conn) {
  char buf[4096];
  while (!conn->responding) {
    NetIoResult got = io_.Read(conn->fd, buf, sizeof(buf));
    if (got.kind == NetIoResult::Kind::kWouldBlock) return;
    if (got.kind != NetIoResult::Kind::kOk) {
      // EOF or error before a full request head: nothing to answer.
      CloseAdminConn(conn);
      return;
    }
    conn->in.append(buf, got.bytes);
    conn->last_activity = Clock::now();
    Result<std::optional<AdminRequest>> head =
        ParseAdminRequestHead(&conn->in, kAdminMaxHeadBytes);
    if (!head.ok()) {
      AdminResponse bad;
      bad.status = 400;
      bad.content_type = "text/plain; charset=utf-8";
      bad.body = head.status().message() + "\n";
      AdminMetrics::Get().responses_error->Increment();
      conn->out = RenderHttpResponse(bad);
      conn->responding = true;
      break;
    }
    if (!head->has_value()) continue;  // head incomplete — keep reading
    AdminHooks hooks;
    hooks.status = [this] { return BuildStatus(); };
    hooks.metrics_text = [] {
      return obs::MetricsRegistry::Default()->ToPrometheusText();
    };
    hooks.slow_log = options_.slow_log;
    conn->out = RenderHttpResponse(HandleAdminRequest(**head, hooks));
    conn->responding = true;
    break;
  }
  FlushAdmin(conn);
}

void Transport::FlushAdmin(AdminConn* conn) {
  while (conn->pending_out() > 0) {
    NetIoResult wrote = io_.Write(conn->fd, conn->out.data() + conn->out_offset,
                                  conn->pending_out());
    if (wrote.kind == NetIoResult::Kind::kWouldBlock) {
      Status modified = poller_.Modify(conn->fd, false, true);
      if (!modified.ok()) {
        // Write interest could not be registered: the response would never
        // flush. Admin exchanges are one-shot, so drop the connection —
        // the scraper retries — rather than leave it wedged.
        CountPollerError();
        CloseAdminConn(conn);
      }
      return;
    }
    if (!wrote.ok()) {
      CloseAdminConn(conn);
      return;
    }
    conn->out_offset += wrote.bytes;
    conn->last_activity = Clock::now();
  }
  // Response fully on the wire (or nothing to say yet): one exchange per
  // connection, so a finished response closes it.
  if (conn->responding) CloseAdminConn(conn);
}

void Transport::CloseAdminConn(AdminConn* conn) {
  RemoveFromPoller(conn->fd);
  close(conn->fd);
  AdminMetrics::Get().active->Add(-1);
  admin_conns_.erase(conn->fd);  // destroys *conn — must be last
}

}  // namespace serve
}  // namespace treelattice
