#ifndef TREELATTICE_SERVE_TRANSPORT_H_
#define TREELATTICE_SERVE_TRANSPORT_H_

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/conn.h"
#include "util/analysis_annotations.h"
#include "serve/introspect.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/event_poller.h"
#include "util/net.h"
#include "util/thread_annotations.h"

namespace treelattice {
namespace serve {

/// The TCP front end of `treelattice serve`: a single-threaded,
/// non-blocking event loop (epoll, poll fallback — util/event_poller.h)
/// that accepts many concurrent connections, frames pipelined NDJSON
/// requests (the same envelope protocol as stdin mode), feeds the Server's
/// bounded admission queue, and routes each response back to the
/// connection that asked — workers never touch a socket, the loop never
/// blocks on one.
///
/// Robustness governance, per connection (DESIGN.md §11):
///   * max-connections cap — over the cap, a connection is accepted only
///     long enough to receive a ResourceExhausted turn-away line.
///   * write backpressure — a connection whose response backlog exceeds
///     `write_high_water` stops being read (its pipelined requests stay in
///     its kernel socket buffer) and resumes below `write_low_water`, so a
///     client that never reads cannot grow server memory without bound.
///   * idle + mid-frame timeouts — a connection with no traffic, or one
///     dribbling a frame byte-by-byte (slowloris), is closed.
///   * max frame size — an overlong line fails that request with a JSON
///     error; the connection and process live on.
///   * half-close vs. abort — peer EOF still gets every buffered request
///     answered and flushed; RST/EPIPE cancels in-flight work through the
///     connection's CancelToken and closes immediately.
///
/// Graceful drain: RequestShutdown() (or the `stop_flag` handed to Run,
/// flipped from a signal handler) closes the acceptor, stops reading,
/// answers and flushes everything in flight, then closes. Requests still
/// unfinished at `drain_deadline_millis` are cancelled; connections that
/// cannot flush by twice the deadline are force-closed. Run returns only
/// when every admitted request has been delivered or accounted orphaned.
///
/// Fault injection: `Options::faults` seeds the NetIo shim (short
/// reads/writes, EAGAIN storms, injected ECONNRESET) the same way
/// FaultInjectingEnv seeds file I/O — the soak tests run the whole
/// transport under these storms and assert exactly-once delivery.
// tl-analyze: allow(guard-coverage) -- single-threaded by design: the loop
// thread owns every field; the only cross-thread state, completions_, is
// TL_GUARDED_BY(completion_mu_), and cross-thread tallies are atomics
class Transport {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral (tests, benches)
    int backlog = 128;
    /// Connections served concurrently; above this, accept + turn away.
    int max_connections = 1024;
    /// Longest accepted request line, newline excluded.
    size_t max_frame_bytes = 1 << 20;
    /// Close a connection with no in-flight work and no traffic for this
    /// long. <= 0 disables.
    double idle_timeout_millis = 300000.0;
    /// Close a connection that holds a frame open (bytes buffered, no
    /// newline) for this long — the slowloris defense. <= 0 disables.
    double request_timeout_millis = 30000.0;
    /// Stop reading a connection whose pending output exceeds high water;
    /// resume below low water.
    size_t write_high_water = 1 << 20;
    size_t write_low_water = 1 << 18;
    /// Soft drain budget on shutdown; see class comment.
    double drain_deadline_millis = 5000.0;
    /// Force the poll(2) backend even where epoll is available.
    bool force_poll = false;
    /// Deterministic socket-fault seeding (0 = off).
    NetFaultConfig faults;

    /// Admin plane (DESIGN.md §12): when enabled, a second acceptor on
    /// the same event loop answers GET /metrics, /healthz, /statusz and
    /// /slowz over a minimal HTTP/1.1 subset (serve/admin.h). The admin
    /// listener stays open during drain so /healthz can report it.
    bool admin_enabled = false;
    std::string admin_host = "127.0.0.1";
    uint16_t admin_port = 0;  // 0 = ephemeral
    /// Admin connections beyond this are refused at accept.
    int max_admin_connections = 32;
    /// Slow-query ring fed by request finalization and served by /slowz.
    /// Not owned; may be null (no slow-query logging). Must outlive Run.
    SlowQueryLog* slow_log = nullptr;
  };

  /// Handles control lines ('#'-prefixed) the transport does not answer
  /// itself ("#stats" is built in). Returns the complete JSON response
  /// line (without newline); an empty return produces a generic error
  /// response. Runs on the loop thread — keep it quick.
  using ControlHandler = std::function<std::string(std::string_view line)>;

  /// Constructs the transport and its internal Server (worker pool +
  /// admission queue) over `snapshots`, which must outlive the transport.
  Transport(SnapshotHolder* snapshots, ServerOptions server_options,
            Options options, ControlHandler control = nullptr);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Binds and listens (the admin listener too, when enabled). Returns
  /// the bound serving port (resolves port 0).
  Result<uint16_t> Listen();
  uint16_t port() const { return port_; }
  /// Bound admin port; 0 when the admin plane is disabled.
  uint16_t admin_port() const { return admin_port_; }

  /// Runs the event loop on the calling thread until a shutdown request
  /// drains it (see class comment). `stop_flag`, when given, is polled
  /// every iteration — the CLI points it at its sig_atomic_t signal flag
  /// (signals interrupt the poller wait, so reaction is immediate).
  TL_EVENT_LOOP Status Run(const volatile std::sig_atomic_t* stop_flag = nullptr);

  /// Thread-safe; nudges Run to begin the graceful drain.
  void RequestShutdown();

  Server::Stats GetServerStats() const { return server_->GetStats(); }

  /// Field docs live on TransportStats (serve/introspect.h) — the struct
  /// is standalone so status rendering needs no transport dependency.
  using Stats = TransportStats;
  Stats GetStats() const;

 private:
  struct Route {
    uint64_t conn_id = 0;
    uint64_t client_id = 0;
    /// Queries the routed line carries (1 for a single request, N for a
    /// batch envelope). Conservation is per-query: delivering or orphaning
    /// the line accounts all of them (DESIGN.md §14).
    uint32_t queries = 1;
  };
  struct Completion {
    uint64_t internal_id = 0;
    ServeResponse response;
    /// Non-null for a batch line: the whole array response, delivered (or
    /// orphaned) as one unit. `response` is unused then.
    std::unique_ptr<ServeBatchResponse> batch;
  };

  // Event-loop internals; all run on the loop thread.
  void AcceptNew();
  void ReadConn(Conn* conn);
  void FlushConn(Conn* conn);
  void HandleFrame(Conn* conn, NdjsonFramer::Event event);
  void HandleControlLine(Conn* conn, const std::string& line);
  void EnqueueLine(Conn* conn, std::string_view line);
  /// `req` is the process-unique request id echoed in the error line; 0
  /// lets the transport assign a fresh one.
  void EnqueueErrorLine(Conn* conn, uint64_t id, uint64_t req,
                        std::string_view query, StatusCode code,
                        std::string_view message);
  void UpdateInterest(Conn* conn);
  /// Teardown-path poller deregistration: counts (never propagates) a
  /// failed Remove — the caller closes the fd right after, which finishes
  /// the kernel-side deregistration either way.
  void RemoveFromPoller(int fd);
  /// Tallies one EventPoller failure (serve.net.poller_errors + #stats).
  void CountPollerError();
  void CloseConn(Conn* conn, bool abortive);
  void DrainCompletions();
  void SweepTimeouts();
  void BeginDrain();
  int WaitTimeoutMillis() const;
  std::string StatsJsonLine() const;
  /// Finalizes every response line whose bytes reached the kernel
  /// (flush markers up to conn->total_flushed).
  void FinalizeFlushed(Conn* conn);
  /// Finalizes everything still pending on `conn` without a flush stamp —
  /// the connection is going away before those bytes hit the wire.
  void FinalizeUnflushed(Conn* conn);
  /// The one coherent status view every introspection surface renders
  /// ('#stats', /statusz, /healthz). Loop thread only.
  StatusSnapshot BuildStatus() const;

  // Admin plane (all on the loop thread; serve/admin.h has the protocol).
  void AcceptAdmin();
  void ReadAdmin(AdminConn* conn);
  void FlushAdmin(AdminConn* conn);
  void CloseAdminConn(AdminConn* conn);

  SnapshotHolder* const snapshots_;
  const Options options_;
  const ControlHandler control_;
  std::unique_ptr<Server> server_;

  EventPoller poller_;
  NetIo io_;
  WakePipe wake_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int admin_listen_fd_ = -1;
  uint16_t admin_port_ = 0;
  std::unordered_map<int, std::unique_ptr<AdminConn>> admin_conns_;  // by fd
  /// When Run started — /statusz uptime.
  std::chrono::steady_clock::time_point started_;

  uint64_t next_conn_id_ = 0;
  uint64_t next_internal_id_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<uint64_t, int> conn_fd_by_id_;
  std::unordered_map<uint64_t, Route> routes_;  // internal id -> conn
  std::chrono::steady_clock::time_point last_sweep_;

  // Drain state (loop thread).
  bool draining_ = false;
  bool drain_cancelled_ = false;
  std::chrono::steady_clock::time_point drain_started_;

  std::atomic<bool> stop_requested_{false};
  /// Injected-fault count already flushed to the metrics registry.
  uint64_t metered_faults_ = 0;

  std::mutex completion_mu_;
  std::vector<Completion> completions_ TL_GUARDED_BY(completion_mu_);

  // Counters; loop thread writes, any thread reads via GetStats.
  std::atomic<uint64_t> accepted_{0}, rejected_{0}, active_{0}, frames_{0},
      frames_oversized_{0}, requests_admitted_{0}, responses_delivered_{0},
      responses_orphaned_{0}, bytes_in_{0}, bytes_out_{0}, idle_timeouts_{0},
      request_timeouts_{0}, backpressure_stalls_{0}, resets_{0},
      poller_errors_{0};
  std::atomic<double> drain_micros_{0.0};
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_TRANSPORT_H_
