#ifndef TREELATTICE_SERVE_ESTIMATE_CACHE_H_
#define TREELATTICE_SERVE_ESTIMATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metric_names.h"
#include "util/analysis_annotations.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace treelattice {
namespace serve {

/// Cache telemetry (see obs/metric_names.h for the registry):
///   cache.hits           estimate served straight from the cache
///   cache.misses         lookups that fell through to the estimator
///   cache.evictions      LRU entries displaced by capacity pressure
///   cache.invalidations  shard clears caused by a snapshot swap
///   cache.probe_micros   (histogram) Get latency, hit or miss — shard
///                        lock wait shows up here under contention
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* invalidations;
  obs::Histogram* probe_micros;

  // One-time registration into a function-local static (see
  // EstimatorMetrics::Get).
  TL_ALLOC_OK static CacheMetrics& Get() {
    static CacheMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return CacheMetrics{registry->counter(names::kCacheHits),
                          registry->counter(names::kCacheMisses),
                          registry->counter(names::kCacheEvictions),
                          registry->counter(names::kCacheInvalidations),
                          registry->histogram(names::kCacheProbeMicros)};
    }();
    return m;
  }
};

/// A sharded, snapshot-scoped LRU cache of exact (ungoverned, primary-rung)
/// estimates, keyed by canonical query code under one estimator
/// configuration.
///
/// Scoping contract: every Get/Put carries the snapshot version the caller
/// is serving from. A shard belongs to exactly one version at a time; the
/// first access under a different version clears it, so an estimate
/// computed against snapshot N can never answer a request served from
/// snapshot M != N — a `#reload` hot-swap implicitly drops the whole cache
/// without any cross-thread coordination beyond the per-shard mutex.
///
/// Insert policy is the caller's: only cache results that are exact for
/// the configuration (ungoverned, non-degraded primary answers) — a
/// deadline-truncated estimate must never be replayed to a request with a
/// healthier budget.
///
/// The map key is the 64-bit canonical-code hash combined with the
/// configured fingerprint; the stored code string is verified on every hit,
/// so hash collisions degrade to misses, never wrong answers.
class EstimateCache {
 public:
  struct Options {
    /// Total entries across all shards (at least one per shard).
    size_t capacity = 1024;
    /// Shard count; rounded up to a power of two, at least 1.
    int shards = 8;
    /// Fingerprint of the estimator configuration this cache serves;
    /// folded into every key so distinct configs never alias.
    uint64_t config_fingerprint = 0;
  };

  explicit EstimateCache(Options options);

  EstimateCache(const EstimateCache&) = delete;
  EstimateCache& operator=(const EstimateCache&) = delete;

  /// Cached estimate for `code` under `snapshot_version`, or nullopt.
  /// `code_hash` must equal HashBytes(code).
  TL_HOT std::optional<double> Get(int64_t snapshot_version,
                                   uint64_t code_hash, std::string_view code);

  /// Batch hit-filter (DESIGN.md §14): probes `n` keys in one pass,
  /// visiting each shard at most once (one lock acquisition per shard per
  /// batch, not per query). results[i] receives the cached estimate for
  /// (code_hashes[i], codes[i]) or nullopt. One cache.probe_micros sample
  /// covers the whole pass; hits/misses count per key.
  TL_HOT void GetBatch(int64_t snapshot_version, const uint64_t* code_hashes,
                       const std::string_view* codes, size_t n,
                       std::optional<double>* results);

  /// Caches `estimate` for `code` under `snapshot_version` (overwriting any
  /// entry for the same code), evicting the least recently used entry of
  /// the shard when full.
  // Allocates by design: an insert copies the code string into the entry
  // (the cache must own its keys past the request's lifetime).
  TL_ALLOC_OK void Put(int64_t snapshot_version, uint64_t code_hash,
                       std::string_view code, double estimate);

  /// Explicitly drops every entry (all shards), e.g. on shutdown paths
  /// that want deterministic teardown. Snapshot swaps do NOT need this —
  /// the version check already fences them.
  void Invalidate();

  /// Live entries across all shards (test/diagnostic aid).
  size_t size() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    std::string code;
    double estimate = 0.0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Snapshot version the shard's entries belong to; -1 = empty/fresh.
    int64_t version TL_GUARDED_BY(mu) = -1;
    /// MRU at the front.
    std::list<Entry> lru TL_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        TL_GUARDED_BY(mu);
  };

  uint64_t KeyFor(uint64_t code_hash) const;
  Shard& ShardFor(uint64_t key);

  /// Clears `shard` if it belongs to a different snapshot version,
  /// claiming it for `snapshot_version`. Returns with shard.version ==
  /// snapshot_version.
  void SyncShardVersion(Shard& shard, int64_t snapshot_version)
      TL_REQUIRES(shard.mu);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 1;
  uint64_t config_fingerprint_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_ESTIMATE_CACHE_H_
