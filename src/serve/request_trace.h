#ifndef TREELATTICE_SERVE_REQUEST_TRACE_H_
#define TREELATTICE_SERVE_REQUEST_TRACE_H_

#include <cstdint>
#include <string>

namespace treelattice {
namespace serve {

class SlowQueryLog;

/// Per-request stage timeline (DESIGN.md §12), carried with the request
/// through the admission queue and back with its response:
///
///   framed ──▶ admitted ──▶ dequeued ──▶ estimated ──▶ serialized ──▶ flushed
///   (line      (queued      (worker      (answer       (JSON          (bytes
///    parsed)    for a        picked       computed)     rendered)      on the
///               worker)      it up)                                    wire)
///
/// Stamps are microseconds on the steady clock since a process-wide epoch;
/// 0 means "this stage never happened" (an error response skips estimate,
/// an orphaned response never flushes). Adjacent deltas feed the
/// serve.stage.* histograms and, over the slow threshold, the slow-query
/// log — see Finalize below.
///
/// `req_id` is assigned unconditionally (responses always echo it);
/// everything else is recorded only while `active`, which Begin() derives
/// from obs::Enabled() so TREELATTICE_OBS=off zero-costs the stamps (one
/// branch per stage, no clock reads).
struct RequestTrace {
  /// Snapshot of obs::Enabled() at Begin; every stamp site checks it.
  bool active = false;
  /// Process-unique 64-bit request id, echoed as "req" in the response.
  uint64_t req_id = 0;

  uint64_t framed_micros = 0;
  uint64_t admitted_micros = 0;
  uint64_t dequeued_micros = 0;
  uint64_t estimated_micros = 0;
  uint64_t serialized_micros = 0;
  uint64_t flushed_micros = 0;

  /// Twig shape features, filled once the query parses (slow-log keys).
  uint32_t twig_size = 0;
  uint32_t twig_depth = 0;
  uint32_t twig_fanout = 0;
  /// Governor work steps (summary probes, splits, sweeps) the estimate
  /// charged, accumulated across every ladder rung.
  uint64_t work_steps = 0;
  /// Queries carried by the request line: 0 for a single-query line, N
  /// for a batch envelope of N queries (DESIGN.md §14). Slow-log entries
  /// carry it so a slow batch line is distinguishable from a slow query.
  uint32_t batch_size = 0;

  /// Microseconds since the process-wide trace epoch (steady clock).
  static uint64_t NowMicros();

  /// A trace stamped "framed" now; active iff observability is enabled.
  static RequestTrace Begin(uint64_t req_id);

  void StampAdmitted() {
    if (active) admitted_micros = NowMicros();
  }
  void StampDequeued() {
    if (active) dequeued_micros = NowMicros();
  }
  void StampEstimated() {
    if (active) estimated_micros = NowMicros();
  }
  void StampSerialized() {
    if (active) serialized_micros = NowMicros();
  }
  void StampFlushed() {
    if (active) flushed_micros = NowMicros();
  }
};

/// What the request turned into — the slice of the response the finalizer
/// needs for the slow-query log. Owned strings: finalization can outlive
/// the response (it waits for the socket flush).
struct RequestOutcome {
  std::string query;
  std::string rung;        // empty on error
  std::string error_code;  // empty on success
  bool ok = false;
  bool cached = false;
  bool degraded = false;
  int64_t snapshot_version = 0;
};

/// Terminal accounting for one request: records every stage delta whose
/// two stamps exist into the serve.stage.* histograms, and — when the
/// request's total (first stamp to last stamp) is over `slow_log`'s
/// threshold — appends a slow-query entry with the full timeline and the
/// twig shape features. No-op when the trace is inactive; `slow_log` may
/// be null (histograms only).
void FinalizeRequestTrace(const RequestTrace& trace,
                          const RequestOutcome& outcome,
                          SlowQueryLog* slow_log);

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_REQUEST_TRACE_H_
