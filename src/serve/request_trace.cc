#include "serve/request_trace.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "serve/serve_metrics.h"
#include "serve/slow_log.h"

namespace treelattice {
namespace serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Positive delta between two stamps, or 0 when either stage is absent.
uint64_t StageDelta(uint64_t from, uint64_t to) {
  return (from != 0 && to != 0 && to > from) ? to - from : 0;
}

}  // namespace

uint64_t RequestTrace::NowMicros() {
  // Process-lifetime epoch: first call pins it, every stamp is relative.
  // +1 keeps stamps strictly positive — 0 is the "stage absent" sentinel,
  // and the very first stamp of the process lands exactly on the epoch.
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 SteadyClock::now() - epoch)
                 .count()) +
         1;
}

RequestTrace RequestTrace::Begin(uint64_t req_id) {
  RequestTrace trace;
  trace.req_id = req_id;
  trace.active = obs::Enabled();
  if (trace.active) trace.framed_micros = NowMicros();
  return trace;
}

void FinalizeRequestTrace(const RequestTrace& trace,
                          const RequestOutcome& outcome,
                          SlowQueryLog* slow_log) {
  if (!trace.active) return;

  const uint64_t admit =
      StageDelta(trace.framed_micros, trace.admitted_micros);
  const uint64_t queue_wait =
      StageDelta(trace.admitted_micros, trace.dequeued_micros);
  const uint64_t estimate =
      StageDelta(trace.dequeued_micros, trace.estimated_micros);
  const uint64_t serialize =
      StageDelta(trace.estimated_micros, trace.serialized_micros);
  const uint64_t flush =
      StageDelta(trace.serialized_micros, trace.flushed_micros);
  // The last stage this request reached; errors and orphans stop early.
  uint64_t last = trace.framed_micros;
  for (uint64_t stamp :
       {trace.admitted_micros, trace.dequeued_micros, trace.estimated_micros,
        trace.serialized_micros, trace.flushed_micros}) {
    if (stamp > last) last = stamp;
  }
  const uint64_t total = StageDelta(trace.framed_micros, last);

  StageMetrics& metrics = StageMetrics::Get();
  if (trace.admitted_micros != 0) metrics.admit_micros->Record(admit);
  if (trace.dequeued_micros != 0) metrics.queue_wait_micros->Record(queue_wait);
  if (trace.estimated_micros != 0) metrics.estimate_micros->Record(estimate);
  if (trace.serialized_micros != 0) {
    metrics.serialize_micros->Record(serialize);
  }
  if (trace.flushed_micros != 0) metrics.flush_micros->Record(flush);
  metrics.total_micros->Record(total);

  if (slow_log == nullptr) return;
  const double total_millis = static_cast<double>(total) / 1000.0;
  if (!slow_log->ShouldRecord(total_millis)) return;
  SlowQueryLog::Entry entry;
  entry.req_id = trace.req_id;
  entry.query = outcome.query;
  entry.rung = outcome.rung;
  entry.error_code = outcome.error_code;
  entry.ok = outcome.ok;
  entry.cached = outcome.cached;
  entry.degraded = outcome.degraded;
  entry.snapshot_version = outcome.snapshot_version;
  entry.twig_size = trace.twig_size;
  entry.twig_depth = trace.twig_depth;
  entry.twig_fanout = trace.twig_fanout;
  entry.work_steps = trace.work_steps;
  entry.batch_size = trace.batch_size;
  entry.framed_micros = trace.framed_micros;
  entry.admit_micros = admit;
  entry.queue_wait_micros = queue_wait;
  entry.estimate_micros = estimate;
  entry.serialize_micros = serialize;
  entry.flush_micros = flush;
  entry.total_millis = total_millis;
  slow_log->Record(std::move(entry));
}

}  // namespace serve
}  // namespace treelattice
