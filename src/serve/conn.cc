#include "serve/conn.h"

namespace treelattice {
namespace serve {

NdjsonFramer::NdjsonFramer(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes > 0 ? max_frame_bytes : 1) {}

void NdjsonFramer::Feed(std::string_view data, std::vector<Event>* out) {
  consumed_ += data.size();
  while (!data.empty()) {
    const size_t newline = data.find('\n');
    if (discarding_) {
      // Skipping the tail of an oversized frame: everything through its
      // terminating newline is dropped.
      if (newline == std::string_view::npos) {
        dropped_ += data.size();
        return;
      }
      dropped_ += newline + 1;
      data.remove_prefix(newline + 1);
      discarding_ = false;
      continue;
    }
    if (newline == std::string_view::npos) {
      // No complete frame yet; buffer, unless that would blow the limit.
      if (buffer_.size() + data.size() > max_frame_bytes_) {
        dropped_ += buffer_.size() + data.size();
        buffer_.clear();
        buffer_.shrink_to_fit();
        discarding_ = true;
        Event event;
        event.kind = EventKind::kOversized;
        out->push_back(std::move(event));
        return;
      }
      buffer_.append(data);
      return;
    }
    // A newline lands in this chunk. The completed frame is buffer_ plus
    // the chunk's prefix — check the limit before materializing it.
    if (buffer_.size() + newline > max_frame_bytes_) {
      dropped_ += buffer_.size() + newline + 1;
      buffer_.clear();
      buffer_.shrink_to_fit();
      data.remove_prefix(newline + 1);
      Event event;
      event.kind = EventKind::kOversized;
      out->push_back(std::move(event));
      continue;
    }
    Event event;
    event.kind = EventKind::kLine;
    if (buffer_.empty()) {
      event.line.assign(data.substr(0, newline));
    } else {
      event.line = std::move(buffer_);
      event.line.append(data.substr(0, newline));
      buffer_.clear();
    }
    data.remove_prefix(newline + 1);
    if (!event.line.empty() && event.line.back() == '\r') {
      event.line.pop_back();
      ++dropped_;  // the stripped '\r' (keeps byte conservation exact)
    }
    if (event.line.empty()) {
      ++dropped_;  // blank line: its newline produced no event
    } else {
      out->push_back(std::move(event));
    }
  }
}

}  // namespace serve
}  // namespace treelattice
