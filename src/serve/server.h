#ifndef TREELATTICE_SERVE_SERVER_H_
#define TREELATTICE_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/degrading_estimator.h"
#include "serve/estimate_cache.h"
#include "serve/request_trace.h"
#include "serve/snapshot.h"
#include "util/deadline.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace treelattice {
namespace serve {

/// One estimation request, as admitted to the queue.
struct ServeRequest {
  uint64_t id = 0;
  /// Query text: twig syntax "a(b,c)" or the XPath subset "/a/b[c]"
  /// (anything containing '/' or '[' is treated as XPath).
  std::string query;
  /// Per-request deadline; <= 0 uses the server default.
  double deadline_millis = 0.0;
  /// Per-request work-step cap; 0 uses the server default.
  uint64_t max_work_steps = 0;
  /// Cooperative cancellation, shared with the submitter (the TCP
  /// transport cancels a connection's in-flight requests when the peer
  /// resets). Null = not cancellable. Shared ownership keeps the token
  /// alive even after the connection that spawned it is gone.
  std::shared_ptr<CancelToken> cancel;
  /// Stage timeline, stamped as the request moves through the pipeline
  /// (serve/request_trace.h). Begin() it at framing; the server stamps
  /// admitted/dequeued/estimated and hands it back on the response.
  RequestTrace trace;
};

/// One response, delivered to the sink exactly once per submitted request.
struct ServeResponse {
  uint64_t id = 0;
  /// Process-unique request id (RequestTrace::req_id), echoed as "req" in
  /// the wire JSON — the correlation key across logs, traces, and /slowz.
  uint64_t req = 0;
  std::string query;
  bool ok = false;
  double estimate = 0.0;
  /// Degradation-ladder rung that answered: "primary", "fixed-size", or
  /// "markov-path" (empty on error).
  std::string rung;
  bool degraded = false;
  /// True when the estimate was served from the snapshot-scoped cache
  /// (always an exact ungoverned primary-rung answer).
  bool cached = false;
  std::string error_code;     // StatusCodeToString(code) when !ok
  std::string error_message;  // human detail when !ok
  double wall_micros = 0.0;
  /// Version of the snapshot that served the request (0 if none).
  int64_t snapshot_version = 0;
  /// The request's stage timeline, carried back for the final stamps
  /// (serialized, flushed) and terminal accounting by the sink's owner.
  RequestTrace trace;

  /// The newline-free JSON wire rendering of this response.
  std::string ToJsonLine() const;
};

/// Parses one request line of the serve protocol: either a bare query
/// string, or a JSON envelope
///   {"query": "a(b,c)", "deadline_ms": 50, "max_steps": 100000, "id": 7}
/// with every field but "query" optional. Lines are trimmed; the id, when
/// absent, is left 0 for the caller to assign.
Result<ServeRequest> ParseRequestLine(std::string_view line);

/// A batch of queries admitted and answered as one unit: one JSON array
/// request line carrying N queries, one JSON array response line carrying
/// their N results in the same order (DESIGN.md §14).
struct ServeBatch {
  std::vector<ServeRequest> items;
  /// One timeline for the whole line; batch_size records the query count.
  RequestTrace trace;
  /// Cancels every query of the batch (the transport ties it to the
  /// submitting connection).
  std::shared_ptr<CancelToken> cancel;
};

/// The response to one batch line; items are positional (items[i] answers
/// the batch's i-th query).
struct ServeBatchResponse {
  std::vector<ServeResponse> items;
  RequestTrace trace;

  /// The newline-free JSON wire rendering: an array of the per-item
  /// response objects.
  std::string ToJsonLine() const;
};

/// True when a trimmed request line is a batch envelope (leading '[').
bool IsBatchRequestLine(std::string_view line);

/// Parses a batch request line: a JSON array whose elements are query
/// strings or per-query envelopes (the same shapes ParseRequestLine
/// accepts). Rejects empty arrays and, when `max_items` > 0, arrays with
/// more than `max_items` elements.
Result<ServeBatch> ParseBatchRequestLine(std::string_view line,
                                         size_t max_items = 0);

struct ServerOptions {
  /// Worker threads answering queries.
  int workers = 4;
  /// Bounded admission queue; submissions beyond this are shed with
  /// kResourceExhausted instead of growing memory without limit.
  size_t queue_capacity = 128;
  /// Default per-request deadline; 0 = none.
  double default_deadline_millis = 0.0;
  /// Default per-request work-step cap; 0 = none.
  uint64_t default_max_work_steps = 0;
  /// Degradation-ladder configuration shared by all workers.
  DegradingEstimator::Options estimator;
  /// Artificial per-request processing delay — a load-shaping aid for
  /// tests and benches that need to force queue pressure deterministically.
  double worker_delay_millis = 0.0;
  /// Snapshot-scoped LRU cache of exact ungoverned primary estimates.
  /// Governed (deadline/step-budget) answers are never inserted; any
  /// request may still be answered from it, since a cached entry is always
  /// the exact full-effort answer. Swapping the snapshot implicitly drops
  /// every cached entry (version-fenced per shard).
  bool enable_estimate_cache = true;
  size_t estimate_cache_capacity = 1024;
  int estimate_cache_shards = 8;
};

/// A worker pool over a bounded admission queue, answering twig/XPath
/// selectivity queries from the current SummarySnapshot through the
/// degradation ladder.
///
/// Lifecycle: construction starts the workers; Shutdown() (or the
/// destructor) stops admission, drains everything already queued, and
/// joins the workers — a graceful drain, never a drop. Reloads happen
/// outside the server by swapping the SnapshotHolder; workers pick up the
/// new snapshot on their next request and in-flight queries finish on the
/// snapshot they started with.
class Server {
 public:
  using ResponseSink = std::function<void(const ServeResponse&)>;
  using BatchResponseSink = std::function<void(ServeBatchResponse)>;

  /// `snapshots` must outlive the server and should hold a snapshot
  /// before the first Submit (requests answered with no snapshot fail
  /// with kNotFound ... the server itself never crashes). `sink` is
  /// invoked exactly once per submitted request, possibly from a worker
  /// thread; invocations are serialized by the server. `batch_sink`, when
  /// given, receives exactly one ServeBatchResponse per SubmitBatch; when
  /// null, a batch's items fan out through `sink` individually.
  Server(SnapshotHolder* snapshots, ServerOptions options, ResponseSink sink,
         BatchResponseSink batch_sink = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits a request. When the queue is at capacity (or the server is
  /// shutting down) the request is shed: the sink immediately receives a
  /// kResourceExhausted error response and Submit returns false.
  bool Submit(ServeRequest request);

  /// Admits a whole batch as one queue entry. Capacity is accounted
  /// per-query: a batch of N queries needs N free slots, or the whole
  /// batch is shed with one kResourceExhausted response per query
  /// (exactly-once per query, never a partial batch).
  bool SubmitBatch(ServeBatch batch);

  /// Stops admission, waits for every queued request to be answered, and
  /// joins the workers. Idempotent.
  void Shutdown();

  struct Stats {
    uint64_t submitted = 0;
    uint64_t shed = 0;
    uint64_t ok = 0;
    uint64_t errors = 0;
    uint64_t degraded = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t queue_depth = 0;  // admission queue occupancy right now
  };
  Stats GetStats() const;

  const ServerOptions& options() const { return options_; }

 private:
  /// One admission-queue entry: a single request, or a whole batch
  /// (batch != nullptr). A batch occupies one entry but `queued_queries_`
  /// slots, so queue_capacity bounds queries, not lines.
  struct Work {
    ServeRequest single;
    std::unique_ptr<ServeBatch> batch;
    size_t queries() const { return batch != nullptr ? batch->items.size() : 1; }
  };

  void WorkerLoop();
  ServeResponse Process(const ServeRequest& request,
                        DegradingEstimator* estimator, LabelDict* dict,
                        int64_t snapshot_version, EstimateScratch* scratch);
  ServeBatchResponse ProcessBatch(const ServeBatch& batch,
                                  DegradingEstimator* estimator,
                                  LabelDict* dict, int64_t snapshot_version,
                                  EstimateScratch* scratch);
  void Emit(const ServeResponse& response);
  /// Per-item terminal accounting plus exactly one batch-sink invocation
  /// (or a per-item fan-out through sink_ when no batch sink is set).
  void EmitBatch(ServeBatchResponse response);

  SnapshotHolder* const snapshots_;
  const ServerOptions options_;
  const ResponseSink sink_;
  const BatchResponseSink batch_sink_;
  /// Shared by all workers; internally sharded. Null when disabled.
  // tl-analyze: allow(guard-coverage) -- pointer set in the constructor and
  // immutable afterwards; the cache itself locks per shard
  std::unique_ptr<EstimateCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Work> queue_ TL_GUARDED_BY(mu_);
  /// Queries across all queued entries (== queue_.size() when no batches
  /// are queued); the admission-capacity unit.
  size_t queued_queries_ TL_GUARDED_BY(mu_) = 0;
  bool stopping_ TL_GUARDED_BY(mu_) = false;

  std::mutex sink_mu_;  // serializes sink invocations

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> degraded_{0};

  // tl-analyze: allow(guard-coverage) -- filled by the constructor, joined
  // by Shutdown; both are single-threaded lifecycle phases
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_SERVER_H_
