#ifndef TREELATTICE_SERVE_SLOW_LOG_H_
#define TREELATTICE_SERVE_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace treelattice {
namespace serve {

/// A sampled ring of the slowest requests (DESIGN.md §12): every request
/// whose framed-to-flushed total crosses `threshold_millis` is recorded
/// with its full stage timeline and twig shape features; the newest
/// `capacity` entries are kept. Exported via the admin endpoint's /slowz
/// and the #stats record.
///
/// Lock discipline: the fast path (a request under threshold) never takes
/// the mutex — FinalizeRequestTrace checks ShouldRecord() first, which is
/// a plain comparison. Only over-threshold requests (rare by construction)
/// and /slowz snapshots lock.
class SlowQueryLog {
 public:
  struct Options {
    /// Requests slower than this are recorded; <= 0 disables recording.
    double threshold_millis = 250.0;
    /// Ring size: the newest N slow queries are kept.
    size_t capacity = 128;
  };

  struct Entry {
    uint64_t req_id = 0;
    std::string query;
    std::string rung;        // empty on error
    std::string error_code;  // empty on success
    bool ok = false;
    bool cached = false;
    bool degraded = false;
    int64_t snapshot_version = 0;
    // Twig shape features: node count, edge depth, max fan-out.
    uint32_t twig_size = 0;
    uint32_t twig_depth = 0;
    uint32_t twig_fanout = 0;
    uint64_t work_steps = 0;
    /// Queries in the request line (0 = single-query line, N = batch).
    uint32_t batch_size = 0;
    /// When the request was framed, micros since the process trace epoch.
    uint64_t framed_micros = 0;
    /// Stage deltas in micros; 0 = stage absent (see RequestTrace).
    uint64_t admit_micros = 0;
    uint64_t queue_wait_micros = 0;
    uint64_t estimate_micros = 0;
    uint64_t serialize_micros = 0;
    uint64_t flush_micros = 0;
    double total_millis = 0.0;
  };

  explicit SlowQueryLog(Options options);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Lock-free threshold check — the common (fast) path.
  bool ShouldRecord(double total_millis) const {
    return options_.threshold_millis > 0.0 &&
           total_millis >= options_.threshold_millis;
  }

  /// Appends `entry`, displacing the oldest once the ring is full. Also
  /// bumps the serve.slow_queries counter.
  void Record(Entry entry);

  /// The current ring contents, newest first.
  std::vector<Entry> Snapshot() const;

  /// Slow queries ever recorded (monotonic; not capped by the ring).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::vector<Entry> ring_ TL_GUARDED_BY(mu_);
  /// Insertion cursor once the ring reached capacity.
  size_t next_ TL_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> total_{0};
};

}  // namespace serve
}  // namespace treelattice

#endif  // TREELATTICE_SERVE_SLOW_LOG_H_
