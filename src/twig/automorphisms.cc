#include "twig/automorphisms.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/saturating.h"

namespace treelattice {

namespace {

uint64_t SaturatingFactorial(uint64_t n) {
  uint64_t result = 1;
  for (uint64_t i = 2; i <= n; ++i) result = SaturatingMul(result, i);
  return result;
}

/// Multiplies `out` by the factorials of the multiplicities of identical
/// codes among `codes`.
uint64_t MultiplicityFactorials(std::vector<std::string>& codes) {
  std::sort(codes.begin(), codes.end());
  uint64_t result = 1;
  size_t i = 0;
  while (i < codes.size()) {
    size_t j = i;
    while (j < codes.size() && codes[j] == codes[i]) ++j;
    result = SaturatingMul(result, SaturatingFactorial(j - i));
    i = j;
  }
  return result;
}

}  // namespace

std::vector<int> CollectSubtreeNodes(const Twig& twig, int root) {
  std::vector<int> nodes;
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    nodes.push_back(n);
    for (int c : twig.children(n)) stack.push_back(c);
  }
  return nodes;
}

uint64_t CountAutomorphisms(const Twig& twig) {
  if (twig.empty()) return 1;
  uint64_t result = 1;
  // Codes identify subtrees up to isomorphism; per node, each group of k
  // identical child subtrees contributes k! automorphisms.
  std::vector<std::string> child_codes;
  for (int node = 0; node < twig.size(); ++node) {
    const std::vector<int>& kids = twig.children(node);
    if (kids.size() < 2) continue;
    child_codes.clear();
    for (int c : kids) {
      Result<Twig> sub = twig.InducedSubtree(CollectSubtreeNodes(twig, c));
      // InducedSubtree cannot fail on a full subtree node set.
      child_codes.push_back(sub.ok() ? sub->CanonicalCode() : std::string());
    }
    result = SaturatingMul(result, MultiplicityFactorials(child_codes));
  }
  return result;
}

uint64_t CountOrderedVariants(const Twig& twig) {
  if (twig.empty()) return 1;
  // variants = prod over nodes fanout! / automorphisms, computed with the
  // same grouping to avoid overflow order issues.
  uint64_t all_orderings = 1;
  for (int node = 0; node < twig.size(); ++node) {
    all_orderings = SaturatingMul(
        all_orderings, SaturatingFactorial(twig.children(node).size()));
  }
  uint64_t automorphisms = CountAutomorphisms(twig);
  // Exact division holds mathematically; with saturation fall back to 1.
  if (automorphisms == 0 || all_orderings % automorphisms != 0) {
    return all_orderings;
  }
  return all_orderings / automorphisms;
}

}  // namespace treelattice
