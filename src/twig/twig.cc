#include "twig/twig.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

#include "util/hash.h"
#include "util/string_util.h"

namespace treelattice {

Twig::Twig(const Twig& other)
    : labels_(other.labels_),
      parents_(other.parents_),
      children_(other.children_.begin(),
                other.children_.begin() +
                    static_cast<std::ptrdiff_t>(other.labels_.size())) {
  // Clone a warm cache rather than recomputing it on first use: copies of
  // already-canonicalized twigs (workload storage, snapshot plumbing) keep
  // their O(1) code access.
  const CodeCache* cache = other.cache_.load(std::memory_order_acquire);
  if (cache != nullptr) {
    cache_.store(std::make_unique<CodeCache>(*cache).release(),
                 std::memory_order_relaxed);
  }
}

Twig& Twig::operator=(const Twig& other) {
  if (this == &other) return *this;
  labels_ = other.labels_;
  parents_ = other.parents_;
  children_.assign(other.children_.begin(),
                   other.children_.begin() +
                       static_cast<std::ptrdiff_t>(other.labels_.size()));
  InvalidateCache();
  const CodeCache* cache = other.cache_.load(std::memory_order_acquire);
  if (cache != nullptr) {
    cache_.store(std::make_unique<CodeCache>(*cache).release(),
                 std::memory_order_relaxed);
  }
  return *this;
}

Twig::Twig(Twig&& other) noexcept
    : labels_(std::move(other.labels_)),
      parents_(std::move(other.parents_)),
      children_(std::move(other.children_)),
      cache_(other.cache_.exchange(nullptr, std::memory_order_acq_rel)) {}

Twig& Twig::operator=(Twig&& other) noexcept {
  if (this == &other) return *this;
  labels_ = std::move(other.labels_);
  parents_ = std::move(other.parents_);
  children_ = std::move(other.children_);
  InvalidateCache();
  cache_.store(other.cache_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_relaxed);
  return *this;
}

Twig::~Twig() { delete cache_.load(std::memory_order_acquire); }

const Twig::CodeCache& Twig::EnsureCache() const {
  CodeCache* cache = cache_.load(std::memory_order_acquire);
  if (cache != nullptr) return *cache;
  auto fresh = std::make_unique<CodeCache>();
  fresh->code = ComputeCanonicalCode();
  fresh->hash = HashBytes(fresh->code);
  CodeCache* expected = nullptr;
  if (cache_.compare_exchange_strong(expected, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return *fresh.release();
  }
  // Another thread published first; both computed identical codes, so
  // dropping ours (unique_ptr cleanup) is safe.
  return *expected;
}

void Twig::InvalidateCache() {
  // Mutators require exclusive access, so plain (relaxed) access suffices.
  CodeCache* cache = cache_.load(std::memory_order_relaxed);
  if (cache == nullptr) return;
  cache_.store(nullptr, std::memory_order_relaxed);
  delete cache;
}

int Twig::AddNode(LabelId label, int parent) {
  assert((parent == -1) == labels_.empty());
  int id = size();
  labels_.push_back(label);
  parents_.push_back(parent);
  if (static_cast<size_t>(id) < children_.size()) {
    children_[static_cast<size_t>(id)].clear();  // recycle a retired slot
  } else {
    children_.emplace_back();
  }
  if (parent >= 0) children_[static_cast<size_t>(parent)].push_back(id);
  InvalidateCache();
  return id;
}

void Twig::Clear() {
  // children_ entries are retired in place (stale contents, kept capacity);
  // AddNode clears each slot as it is reused.
  labels_.clear();
  parents_.clear();
  InvalidateCache();
}

std::vector<int> Twig::RemovableNodes() const {
  std::vector<int> out;
  RemovableNodesInto(&out);
  return out;
}

void Twig::RemovableNodesInto(std::vector<int>* out) const {
  out->clear();
  if (size() <= 1) return;  // a single node cannot be removed
  for (int i = 0; i < size(); ++i) {
    if (IsLeaf(i)) {
      out->push_back(i);
    } else if (i == root() && children(i).size() == 1) {
      out->push_back(i);
    }
  }
}

Result<Twig> Twig::RemoveNode(int i, std::vector<int>* old_to_new) const {
  Twig out;
  Status status = RemoveNodeInto(i, &out, old_to_new);
  if (!status.ok()) return status;
  return out;
}

Status Twig::RemoveNodeInto(int i, Twig* out,
                            std::vector<int>* old_to_new) const {
  assert(out != this);
  if (i < 0 || i >= size()) {
    return Status::InvalidArgument("RemoveNode: index out of range");
  }
  if (size() <= 1) {
    return Status::InvalidArgument("RemoveNode: twig too small");
  }
  const bool is_root = (i == root());
  if (is_root) {
    if (children(i).size() != 1) {
      return Status::InvalidArgument(
          "RemoveNode: root with more than one child is not removable");
    }
  } else if (!IsLeaf(i)) {
    return Status::InvalidArgument("RemoveNode: interior node not removable");
  }

  // The split loop calls this for every vote at every recursion level;
  // thread_local scratch keeps it allocation-free once warm. (Mutating a
  // twig concurrently with reads is already forbidden, so thread_local is
  // the right scope.)
  thread_local std::vector<int> map_storage;
  std::vector<int>& map = old_to_new != nullptr ? *old_to_new : map_storage;
  map.assign(static_cast<size_t>(size()), -1);

  out->Clear();
  thread_local std::vector<int> stack;
  stack.clear();
  stack.push_back(root());
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    const std::vector<int>& kids = children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
    if (n == i) continue;
    int p = parent(n);
    int new_parent = (p == -1 || p == i) ? -1 : map[static_cast<size_t>(p)];
    map[static_cast<size_t>(n)] = out->AddNode(label(n), new_parent);
  }
  return Status::OK();
}

std::vector<int> Twig::PreorderNodes() const {
  std::vector<int> order;
  if (empty()) return order;
  order.reserve(static_cast<size_t>(size()));
  std::vector<int> stack = {root()};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    order.push_back(n);
    const std::vector<int>& kids = children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

Result<Twig> Twig::InducedSubtree(const std::vector<int>& nodes) const {
  if (nodes.empty()) {
    return Status::InvalidArgument("InducedSubtree: empty node set");
  }
  std::vector<bool> in_set(static_cast<size_t>(size()), false);
  for (int n : nodes) {
    if (n < 0 || n >= size()) {
      return Status::InvalidArgument("InducedSubtree: index out of range");
    }
    in_set[static_cast<size_t>(n)] = true;
  }
  std::vector<int> map(static_cast<size_t>(size()), -1);
  Twig out;
  int top_count = 0;
  for (int n : PreorderNodes()) {
    if (!in_set[static_cast<size_t>(n)]) continue;
    int p = parent(n);
    int new_parent = -1;
    if (p != -1 && in_set[static_cast<size_t>(p)]) {
      new_parent = map[static_cast<size_t>(p)];
    } else {
      ++top_count;
      if (top_count > 1) {
        return Status::InvalidArgument("InducedSubtree: node set not connected");
      }
    }
    map[static_cast<size_t>(n)] = out.AddNode(label(n), new_parent);
  }
  return out;
}

int Twig::Depth(int i) const {
  int d = 0;
  for (int n = i; parent(n) != -1; n = parent(n)) ++d;
  return d;
}

bool Twig::IsPath() const {
  for (int i = 0; i < size(); ++i) {
    if (children(i).size() > 1) return false;
  }
  return true;
}

std::string Twig::SubtreeCode(int i) const {
  // Iterative post-order (children before parents via reversed preorder):
  // a chain-shaped twig thousands of nodes deep must not overflow the
  // stack just to compute its code.
  std::vector<int> order;
  std::vector<int> stack = {i};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    order.push_back(n);
    const std::vector<int>& kids = children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  std::vector<std::string> codes(static_cast<size_t>(size()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int n = *it;
    std::string code = std::to_string(label(n));
    const std::vector<int>& kids = children(n);
    if (!kids.empty()) {
      std::vector<std::string> child_codes;
      child_codes.reserve(kids.size());
      for (int c : kids) {
        child_codes.push_back(std::move(codes[static_cast<size_t>(c)]));
      }
      std::sort(child_codes.begin(), child_codes.end());
      code.push_back('(');
      for (size_t k = 0; k < child_codes.size(); ++k) {
        if (k > 0) code.push_back(',');
        code += child_codes[k];
      }
      code.push_back(')');
    }
    codes[static_cast<size_t>(n)] = std::move(code);
  }
  return codes[static_cast<size_t>(i)];
}

const std::string& Twig::CanonicalCode() const { return EnsureCache().code; }

uint64_t Twig::CanonicalHash() const { return EnsureCache().hash; }

std::string Twig::ComputeCanonicalCode() const {
  if (empty()) return std::string();
  return SubtreeCode(root());
}

namespace {

/// Shared recursive-descent parser over "label(child,child,...)" where a
/// label is either an identifier (ParseText) or a decimal id (ParseCode).
struct TwigTextParser {
  /// Nesting bound. The parser itself is iterative, so this guards the
  /// recursive consumers downstream (estimator decomposition) and plain
  /// resource sanity, not the parse stack. Matches
  /// LatticeSummary::kMaxLevelCap (a pattern's depth cannot exceed its
  /// node count, which the summary caps at 4096), so no legitimate stored
  /// pattern is rejected while adversarial inputs — e.g. a corrupt summary
  /// section holding "0(0(0(..." a million parens deep — fail with a
  /// diagnostic.
  static constexpr int kMaxDepth = 4096;

  std::string_view text;
  size_t pos = 0;
  LabelDict* dict;  // null => labels are decimal ids

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t')) ++pos;
  }

  Result<LabelId> ParseLabel() {
    SkipSpace();
    size_t start = pos;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '(' || c == ')' || c == ',' || c == ' ' || c == '\t') break;
      ++pos;
    }
    if (pos == start) {
      return Status::ParseError("expected label at offset " +
                                std::to_string(start));
    }
    std::string_view name = text.substr(start, pos - start);
    if (dict != nullptr) return dict->Intern(name);
    // Decimal label id (canonical-code mode). Overflow-checked: LabelId is
    // a signed 32-bit id, and a corrupt code must not trip UB on its way
    // to a ParseError.
    LabelId id = 0;
    for (char c : name) {
      if (c < '0' || c > '9') {
        return Status::ParseError("expected numeric label id, got '" +
                                  std::string(name) + "'");
      }
      int digit = c - '0';
      if (id > (std::numeric_limits<LabelId>::max() - digit) / 10) {
        return Status::ParseError("label id out of range: '" +
                                  std::string(name) + "'");
      }
      id = id * 10 + digit;
    }
    return id;
  }

  Result<Twig> Run() {
    Twig twig;
    // Iterative descent: `open` is the chain of ancestors whose '(' is
    // still unclosed, so nesting depth consumes heap, never call stack.
    std::vector<int> open;
    int parent = -1;
    bool done = false;
    while (!done) {
      LabelId label;
      TL_ASSIGN_OR_RETURN(label, ParseLabel());
      int node = twig.AddNode(label, parent);
      SkipSpace();
      if (!AtEnd() && Peek() == '(') {
        if (static_cast<int>(open.size()) >= kMaxDepth) {
          return Status::ParseError("twig nesting deeper than " +
                                    std::to_string(kMaxDepth) +
                                    " at offset " + std::to_string(pos));
        }
        ++pos;  // consume '('
        open.push_back(node);
        parent = node;
        continue;
      }
      while (!open.empty() && !AtEnd() && Peek() == ')') {
        ++pos;
        open.pop_back();
        SkipSpace();
      }
      if (open.empty()) {
        done = true;
      } else if (AtEnd()) {
        return Status::ParseError("unterminated '('");
      } else if (Peek() == ',') {
        ++pos;
        parent = open.back();
      } else {
        return Status::ParseError("expected ',' or ')' at offset " +
                                  std::to_string(pos));
      }
    }
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos));
    }
    return twig;
  }
};

}  // namespace

Result<Twig> Twig::Parse(std::string_view text, LabelDict* dict) {
  if (dict == nullptr) {
    return Status::InvalidArgument("Twig::Parse: dict must not be null");
  }
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return Status::ParseError("empty twig text");
  TwigTextParser parser{trimmed, 0, dict};
  return parser.Run();
}

Result<Twig> Twig::FromCanonicalCode(std::string_view code) {
  if (code.empty()) return Status::ParseError("empty canonical code");
  TwigTextParser parser{code, 0, nullptr};
  return parser.Run();
}

Twig Twig::Canonicalized() const {
  if (empty()) return Twig();
  // Reconstruct from the canonical code: guaranteed canonical preorder.
  Result<Twig> result = FromCanonicalCode(CanonicalCode());
  assert(result.ok());
  return std::move(result).value();
}

std::string Twig::ToString(const LabelDict& dict) const {
  if (empty()) return "()";
  std::string out;
  // Iterative rendering in stored child order (not canonicalized).
  struct Frame {
    int node;
    size_t next_child;
  };
  std::vector<Frame> stack = {{root(), 0}};
  out.append(dict.Name(label(root())));
  while (!stack.empty()) {
    Frame& top = stack.back();
    const std::vector<int>& kids = children(top.node);
    if (top.next_child < kids.size()) {
      out.push_back(top.next_child == 0 ? '(' : ',');
      int child = kids[top.next_child++];
      out.append(dict.Name(label(child)));
      stack.push_back({child, 0});
    } else {
      if (!kids.empty()) out.push_back(')');
      stack.pop_back();
    }
  }
  return out;
}

std::string Twig::ToDebugString() const { return CanonicalCode(); }

}  // namespace treelattice
