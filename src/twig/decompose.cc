#include "twig/decompose.h"

#include <algorithm>

namespace treelattice {

Result<RecursiveSplit> SplitByLeafPair(const Twig& t, int u, int v) {
  RecursiveSplit split;
  std::vector<int> map_after_v;
  Status status = SplitByLeafPairInto(t, u, v, &split, &map_after_v);
  if (!status.ok()) return status;
  return split;
}

Status SplitByLeafPairInto(const Twig& t, int u, int v, RecursiveSplit* out,
                           std::vector<int>* map_scratch) {
  if (u == v) return Status::InvalidArgument("SplitByLeafPair: u == v");
  if (t.size() < 3) {
    return Status::InvalidArgument("SplitByLeafPair: twig smaller than 3");
  }
  TL_RETURN_IF_ERROR(t.RemoveNodeInto(v, &out->t1, map_scratch));
  TL_RETURN_IF_ERROR(t.RemoveNodeInto(u, &out->t2));
  int u_in_t1 = (*map_scratch)[static_cast<size_t>(u)];
  if (u_in_t1 < 0) {
    return Status::Internal("SplitByLeafPair: u vanished when removing v");
  }
  TL_RETURN_IF_ERROR(out->t1.RemoveNodeInto(u_in_t1, &out->overlap));
  return Status::OK();
}

std::vector<std::pair<int, int>> ValidLeafPairs(const Twig& t) {
  std::vector<std::pair<int, int>> pairs;
  std::vector<int> removable = t.RemovableNodes();
  for (size_t a = 0; a < removable.size(); ++a) {
    for (size_t b = a + 1; b < removable.size(); ++b) {
      if (SplitByLeafPair(t, removable[a], removable[b]).ok()) {
        pairs.emplace_back(removable[a], removable[b]);
      }
    }
  }
  return pairs;
}

Result<std::vector<CoverStep>> FixedSizeCover(const Twig& t, int k) {
  if (k < 2) return Status::InvalidArgument("FixedSizeCover: k must be >= 2");
  if (t.size() < k) {
    return Status::InvalidArgument("FixedSizeCover: twig smaller than k");
  }
  const std::vector<int> preorder = t.PreorderNodes();
  std::vector<bool> covered(static_cast<size_t>(t.size()), false);

  std::vector<CoverStep> steps;
  steps.reserve(static_cast<size_t>(t.size() - k + 1));

  // First cover: the first k preorder nodes (a preorder prefix is always a
  // connected subtree containing the root).
  std::vector<int> first(preorder.begin(), preorder.begin() + k);
  CoverStep step0;
  TL_ASSIGN_OR_RETURN(step0.subtree, t.InducedSubtree(first));
  steps.push_back(std::move(step0));
  for (int n : first) covered[static_cast<size_t>(n)] = true;

  // Subsequent covers: each uncovered preorder node v joins a connected set
  // S of k-1 already-covered nodes that contains parent(v). We prefer v's
  // ancestors (capturing vertical correlation), then extend S with covered
  // children of S members in preorder order.
  for (size_t idx = static_cast<size_t>(k); idx < preorder.size(); ++idx) {
    int v = preorder[idx];
    std::vector<int> selected;
    std::vector<bool> in_selected(static_cast<size_t>(t.size()), false);
    for (int a = t.parent(v); a != -1 && static_cast<int>(selected.size()) < k - 1;
         a = t.parent(a)) {
      // Ancestors precede v in preorder, hence are covered.
      selected.push_back(a);
      in_selected[static_cast<size_t>(a)] = true;
    }
    // Extend with covered children adjacent to the selected set.
    size_t frontier = 0;
    while (static_cast<int>(selected.size()) < k - 1 &&
           frontier < selected.size()) {
      int node = selected[frontier++];
      for (int c : t.children(node)) {
        if (static_cast<int>(selected.size()) >= k - 1) break;
        if (c == v) continue;
        if (!covered[static_cast<size_t>(c)]) continue;
        if (in_selected[static_cast<size_t>(c)]) continue;
        selected.push_back(c);
        in_selected[static_cast<size_t>(c)] = true;
      }
    }
    if (static_cast<int>(selected.size()) < k - 1) {
      return Status::Internal(
          "FixedSizeCover: could not assemble a (k-1)-overlap — tree "
          "connectivity violated");
    }
    CoverStep step;
    TL_ASSIGN_OR_RETURN(step.overlap, t.InducedSubtree(selected));
    selected.push_back(v);
    TL_ASSIGN_OR_RETURN(step.subtree, t.InducedSubtree(selected));
    steps.push_back(std::move(step));
    covered[static_cast<size_t>(v)] = true;
  }
  return steps;
}

}  // namespace treelattice
