#ifndef TREELATTICE_TWIG_TWIG_H_
#define TREELATTICE_TWIG_TWIG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/analysis_annotations.h"
#include "xml/label_dict.h"

namespace treelattice {

/// A twig: a small rooted node-labeled tree, used both as a query and as a
/// pattern in the lattice summary.
///
/// Nodes are addressed by dense indices; node 0 is always the root for a
/// non-empty twig. Child order is preserved as inserted, but twig identity
/// (equality, hashing, summary lookup) is *unordered*: two twigs are equal
/// iff their canonical codes are equal, and the canonical code sorts each
/// node's children by their recursive codes. This matches Definition 1 of
/// the paper, which places no ordering constraint on sibling matches.
///
/// The canonical code and its 64-bit hash are computed once and cached:
/// the first CanonicalCode()/CanonicalHash()/operator== after a mutation
/// pays the canonicalization, every later call is a pointer read. The
/// cache fill is lock-free (compare-and-swap), so a twig shared read-only
/// between threads — a query hammered by several estimator threads, say —
/// is safe without external locking. Mutating a twig (AddNode/Clear)
/// concurrently with any other access was never allowed and still is not.
class Twig {
 public:
  Twig() = default;
  Twig(const Twig& other);
  Twig& operator=(const Twig& other);
  Twig(Twig&& other) noexcept;
  Twig& operator=(Twig&& other) noexcept;
  ~Twig();

  /// Adds a node labeled `label` under `parent` (-1 for the root, allowed
  /// only for the first node). Returns the new node index.
  int AddNode(LabelId label, int parent);

  /// Resets to the empty twig while keeping the node buffers (and their
  /// per-node child vectors) allocated, so pooled twigs refilled in the
  /// estimation hot path stop churning the allocator.
  void Clear();

  int size() const { return static_cast<int>(labels_.size()); }
  bool empty() const { return labels_.empty(); }

  LabelId label(int i) const { return labels_[static_cast<size_t>(i)]; }
  int parent(int i) const { return parents_[static_cast<size_t>(i)]; }
  const std::vector<int>& children(int i) const {
    return children_[static_cast<size_t>(i)];
  }
  bool IsLeaf(int i) const { return children(i).empty(); }
  int root() const { return 0; }

  /// Nodes of tree-degree one: leaves, plus the root when it has exactly one
  /// child. These are the nodes the recursive decomposition may remove
  /// (Section 3.2: a degree-1 root "can also be considered a leaf").
  std::vector<int> RemovableNodes() const;

  /// RemovableNodes writing into `out` (cleared first) — the estimator
  /// hot path reuses one vector per recursion depth.
  // Amortized: refills a pooled caller buffer whose capacity survives
  // across queries; steady state appends into reserved storage.
  TL_ALLOC_OK void RemovableNodesInto(std::vector<int>* out) const;

  /// Returns a copy with node `i` removed (i must be a removable node). If
  /// the root is removed its single child becomes the root. Remaining nodes
  /// are renumbered in preorder; if `old_to_new` is non-null it receives the
  /// index mapping (removed node maps to -1).
  Result<Twig> RemoveNode(int i, std::vector<int>* old_to_new = nullptr) const;

  /// RemoveNode writing into `out` (Clear()ed first, reusing its buffers).
  /// `out` must not alias this twig.
  Status RemoveNodeInto(int i, Twig* out,
                        std::vector<int>* old_to_new = nullptr) const;

  /// Nodes in preorder (root first, children in stored order).
  std::vector<int> PreorderNodes() const;

  /// Extracts the sub-twig induced by `nodes`, which must be non-empty and
  /// connected (every node except the topmost has its parent in the set).
  /// Node order in the result is preorder of the original.
  Result<Twig> InducedSubtree(const std::vector<int>& nodes) const;

  /// Depth (edge count from root) of node `i`.
  int Depth(int i) const;

  /// True if the twig is a pure path (every node has at most one child).
  bool IsPath() const;

  /// Canonical byte string identifying this twig up to sibling reordering.
  /// Stable across processes; usable as a hash-table key and for on-disk
  /// summaries. Computed once and cached; the returned reference stays
  /// valid until the twig is mutated or destroyed.
  TL_HOT const std::string& CanonicalCode() const;

  /// 64-bit hash of the canonical code (cached alongside the code).
  TL_HOT uint64_t CanonicalHash() const;

  /// Rebuilds the canonical code from scratch, bypassing the cache. Used
  /// by cache-consistency tests and by benchmarks that measure the
  /// pre-caching cost; everything else should call CanonicalCode().
  // Cold spelling: rebuilding (and first-touch caching) allocates the
  // code string once per twig mutation, never per steady-state probe.
  TL_ALLOC_OK std::string ComputeCanonicalCode() const;

  /// Returns an equivalent twig whose node numbering is the canonical
  /// preorder (children sorted by canonical code). Deterministic for equal
  /// twigs regardless of construction order.
  Twig Canonicalized() const;

  /// Parses the textual twig format, e.g. "a(b,c(d,e))". Labels are
  /// interned into `dict`.
  static Result<Twig> Parse(std::string_view text, LabelDict* dict);

  /// Reconstructs a twig from a canonical code previously produced by
  /// CanonicalCode(). Used by summary deserialization.
  static Result<Twig> FromCanonicalCode(std::string_view code);

  /// Renders the twig in the parseable textual format.
  std::string ToString(const LabelDict& dict) const;

  /// Renders with raw label ids (debugging aid when no dict is at hand).
  std::string ToDebugString() const;

  /// Structural equality up to sibling reordering. Compares sizes and root
  /// labels first, then the cached canonical codes — no allocation once
  /// both twigs have their caches warm (and at most one canonicalization
  /// each, ever, rather than two string builds per comparison).
  friend bool operator==(const Twig& a, const Twig& b) {
    if (&a == &b) return true;
    if (a.size() != b.size()) return false;
    if (a.empty()) return true;
    if (a.labels_[0] != b.labels_[0]) return false;
    const CodeCache& ca = a.EnsureCache();
    const CodeCache& cb = b.EnsureCache();
    return ca.hash == cb.hash && ca.code == cb.code;
  }

 private:
  /// The lazily computed canonical form. Immutable once published.
  struct CodeCache {
    std::string code;
    uint64_t hash = 0;
  };

  /// Returns the cache, computing and publishing it (lock-free) if absent.
  // Builds (allocates) the code cache at most once per twig mutation;
  // every steady-state probe takes the pointer-load fast path.
  TL_ALLOC_OK const CodeCache& EnsureCache() const;

  /// Drops the cache; called by mutators, which require exclusive access.
  void InvalidateCache();

  /// Recursive canonical code of the subtree rooted at `i`.
  std::string SubtreeCode(int i) const;

  std::vector<LabelId> labels_;
  std::vector<int> parents_;
  /// Invariant: children_.size() >= labels_.size(); slots beyond size()
  /// are retired by Clear() and recycled (with their capacity) by AddNode.
  std::vector<std::vector<int>> children_;
  mutable std::atomic<CodeCache*> cache_{nullptr};
};

/// Hash functor so Twig can key unordered containers.
struct TwigHash {
  size_t operator()(const Twig& t) const {
    return static_cast<size_t>(t.CanonicalHash());
  }
};

}  // namespace treelattice

#endif  // TREELATTICE_TWIG_TWIG_H_
