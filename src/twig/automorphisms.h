#ifndef TREELATTICE_TWIG_AUTOMORPHISMS_H_
#define TREELATTICE_TWIG_AUTOMORPHISMS_H_

#include <cstdint>
#include <vector>

#include "twig/twig.h"

namespace treelattice {

/// Collects the node indices of the full subtree rooted at `root`
/// (preorder-unordered). Never fails for a valid node.
std::vector<int> CollectSubtreeNodes(const Twig& twig, int root);

/// Number of label-preserving automorphisms of the (unordered) twig: the
/// product over nodes of the factorials of the multiplicities of
/// isomorphic child subtrees. Saturates at UINT64_MAX.
///
/// This connects the two counting worlds the paper straddles: the number
/// of *matches* (Definition 1: injective mappings) of a twig equals
/// |Aut(T)| times the total number of order-preserving embeddings of its
/// distinct ordered variants — which is what a Freqt-style ordered miner
/// counts.
uint64_t CountAutomorphisms(const Twig& twig);

/// Number of distinct ordered variants of the unordered twig (orderings of
/// children at every node, modulo identical subtrees). Saturates at
/// UINT64_MAX. For any twig, variants * automorphisms = product over nodes
/// of fanout!.
uint64_t CountOrderedVariants(const Twig& twig);

}  // namespace treelattice

#endif  // TREELATTICE_TWIG_AUTOMORPHISMS_H_
