#ifndef TREELATTICE_TWIG_DECOMPOSE_H_
#define TREELATTICE_TWIG_DECOMPOSE_H_

#include <vector>

#include "twig/twig.h"
#include "util/analysis_annotations.h"
#include "util/result.h"

namespace treelattice {

/// One recursive-decomposition split of a twig T (Section 3.2): two subtrees
/// obtained by removing one or the other of a pair of degree-1 nodes, plus
/// their overlap (T minus both nodes).
struct RecursiveSplit {
  Twig t1;       ///< T with node v removed (keeps u).
  Twig t2;       ///< T with node u removed (keeps v).
  Twig overlap;  ///< T with both u and v removed.
};

/// Splits `t` by the removable-node pair (u, v). Fails if either index is
/// not removable or removing both does not leave a valid twig.
Result<RecursiveSplit> SplitByLeafPair(const Twig& t, int u, int v);

/// SplitByLeafPair writing into `out` (whose twigs are Clear()ed and
/// refilled, reusing their buffers) with `map_scratch` holding the
/// node-index map of the v-removal. The estimation hot path calls this per
/// vote per recursion level; with warm buffers it allocates nothing. On
/// error `out` is left in an unspecified (but destructible) state.
// Amortized: refills pooled split twigs and the caller's map scratch; with
// warm buffers (steady state) it allocates nothing.
TL_ALLOC_OK Status SplitByLeafPairInto(const Twig& t, int u, int v,
                                       RecursiveSplit* out,
                                       std::vector<int>* map_scratch);

/// All unordered pairs (u, v), u < v, of removable nodes for which
/// SplitByLeafPair succeeds. Non-empty for every twig with >= 3 nodes.
std::vector<std::pair<int, int>> ValidLeafPairs(const Twig& t);

/// One step of the fixed-size covering scheme (Section 3.3 / Lemma 2).
struct CoverStep {
  Twig subtree;  ///< K-subtree covering one new node.
  Twig overlap;  ///< Its (K-1)-node overlap with the previously covered
                 ///< portion; empty for the first step.
};

/// Covers `t` by n-k+1 k-subtrees along a preorder sweep so that each step
/// after the first overlaps the covered portion in a (k-1)-subtree
/// (Lemma 2). Requires 2 <= k <= t.size(). The selectivity estimate per
/// Lemma 3 is s(step0.subtree) * prod_i s(step_i.subtree)/s(step_i.overlap).
Result<std::vector<CoverStep>> FixedSizeCover(const Twig& t, int k);

}  // namespace treelattice

#endif  // TREELATTICE_TWIG_DECOMPOSE_H_
