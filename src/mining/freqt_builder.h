#ifndef TREELATTICE_MINING_FREQT_BUILDER_H_
#define TREELATTICE_MINING_FREQT_BUILDER_H_

#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "util/result.h"
#include "xml/document.h"

namespace treelattice {

/// Statistics reported by BuildLatticeFreqt.
struct FreqtBuildStats {
  double build_seconds = 0.0;
  /// Distinct *ordered* patterns enumerated (>= the unordered count).
  size_t ordered_patterns = 0;
  /// Largest occurrence-list volume held at any level (entries).
  size_t peak_occurrences = 0;
};

/// Builds the lattice summary with the Freqt/TreeMiner rightmost-extension
/// algorithm the paper cites for its implementation (Section 4.1-4.2).
///
/// Ordered subtree patterns are enumerated uniquely by extending only
/// along the rightmost path, with occurrence lists keyed by the rightmost
/// path's document-node images (the frozen remainder aggregated into a
/// multiplicity), so counting never rescans the document. Ordered
/// embedding totals are then folded into the paper's *match* counts
/// (Definition 1) by grouping ordered variants under their canonical
/// unordered form and multiplying by the twig's automorphism count:
///   matches(T) = |Aut(T)| * sum over ordered variants V of embeddings(V).
///
/// The result is identical to BuildLattice (property-tested); the
/// trade-off is classic Freqt: no per-candidate counting passes, at the
/// cost of occurrence-list memory proportional to embedding path volume.
/// options.apriori_prune and num_threads are ignored (inapplicable: the
/// rightmost-extension enumeration subsumes Apriori).
Result<LatticeSummary> BuildLatticeFreqt(const Document& doc,
                                         const LatticeBuildOptions& options,
                                         FreqtBuildStats* stats = nullptr);

}  // namespace treelattice

#endif  // TREELATTICE_MINING_FREQT_BUILDER_H_
