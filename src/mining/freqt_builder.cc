#include "mining/freqt_builder.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "twig/automorphisms.h"
#include "twig/twig.h"
#include "util/saturating.h"
#include "util/timer.h"

namespace treelattice {

namespace {

/// Freqt-specific telemetry: ordered (pre-canonicalization) patterns
/// enumerated, peak occurrence-list volume, and per-level latency.
struct FreqtMetrics {
  obs::Counter* ordered_patterns;
  obs::Gauge* peak_occurrences;
  obs::Histogram* level_build_micros;

  static FreqtMetrics& Get() {
    static FreqtMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return FreqtMetrics{
          registry->counter(names::kMiningFreqtOrderedPatterns),
          registry->gauge(names::kMiningFreqtPeakOccurrences),
          registry->histogram(names::kMiningFreqtLevelBuildMicros)};
    }();
    return m;
  }
};

/// One rightmost-path occurrence of an ordered pattern: the document-node
/// images of the rightmost path (root first) plus the number of ordered
/// embeddings of the frozen remainder sharing those images.
struct Occurrence {
  std::vector<NodeId> path;
  uint64_t mult = 1;
};

/// An enumerated ordered pattern with its occurrence list.
struct OrderedPattern {
  Twig twig;
  std::vector<int> rm_path;  ///< pattern node ids, root -> rightmost leaf
  std::vector<Occurrence> occurrences;
};

}  // namespace

Result<LatticeSummary> BuildLatticeFreqt(const Document& doc,
                                         const LatticeBuildOptions& options,
                                         FreqtBuildStats* stats) {
  if (options.max_level < 2) {
    return Status::InvalidArgument("BuildLatticeFreqt: max_level must be >= 2");
  }
  obs::TraceSpan build_span("mining.freqt.build", "mining");
  build_span.SetArg("max_level", static_cast<uint64_t>(options.max_level));
  WallTimer timer;
  LatticeSummary summary(options.max_level);
  FreqtBuildStats local;

  if (doc.empty()) {
    summary.set_complete_through_level(options.max_level);
    if (stats) {
      local.build_seconds = timer.ElapsedSeconds();
      *stats = local;
    }
    return summary;
  }

  LabelIndex index(doc);

  // Distinct child labels under each parent label, to bound extensions.
  std::unordered_map<LabelId, std::vector<LabelId>> edge_labels;
  {
    std::unordered_map<LabelId, std::unordered_set<LabelId>> sets;
    for (NodeId n = 1; n < static_cast<NodeId>(doc.NumNodes()); ++n) {
      sets[doc.Label(doc.Parent(n))].insert(doc.Label(n));
    }
    for (auto& [parent, children] : sets) {
      edge_labels.emplace(parent, std::vector<LabelId>(children.begin(),
                                                       children.end()));
    }
  }

  // Level 1: one ordered pattern per occurring label; each node is its own
  // rightmost-path occurrence.
  std::vector<OrderedPattern> current;
  for (LabelId label = 0; label < static_cast<LabelId>(index.NumLabels());
       ++label) {
    const std::vector<NodeId>& nodes = index.Nodes(label);
    if (nodes.empty()) continue;
    OrderedPattern pattern;
    pattern.twig.AddNode(label, -1);
    pattern.rm_path = {0};
    pattern.occurrences.reserve(nodes.size());
    for (NodeId v : nodes) pattern.occurrences.push_back({{v}, 1});
    current.push_back(std::move(pattern));
  }

  // Per-level canonical grouping: code -> total ordered embeddings.
  auto flush_level = [&](const std::vector<OrderedPattern>& level_patterns)
      -> Status {
    std::unordered_map<std::string, uint64_t> grouped;
    for (const OrderedPattern& pattern : level_patterns) {
      uint64_t total = 0;
      for (const Occurrence& occ : pattern.occurrences) {
        total = SaturatingAdd(total, occ.mult);
      }
      if (total == 0) continue;
      std::string code = pattern.twig.CanonicalCode();
      auto [it, inserted] = grouped.emplace(code, total);
      if (!inserted) it->second = SaturatingAdd(it->second, total);
    }
    for (const auto& [code, ordered_total] : grouped) {
      Twig twig;
      TL_ASSIGN_OR_RETURN(twig, Twig::FromCanonicalCode(code));
      uint64_t matches =
          SaturatingMul(CountAutomorphisms(twig), ordered_total);
      TL_RETURN_IF_ERROR(summary.Insert(twig, matches));
    }
    return Status::OK();
  };

  TL_RETURN_IF_ERROR(flush_level(current));
  local.ordered_patterns += current.size();
  FreqtMetrics::Get().ordered_patterns->Increment(current.size());

  for (int level = 2; level <= options.max_level; ++level) {
    obs::TraceSpan level_span("mining.freqt.level", "mining");
    level_span.SetArg("level", static_cast<uint64_t>(level));
    WallTimer level_timer;
    std::vector<OrderedPattern> next;
    size_t occurrence_volume = 0;
    for (const OrderedPattern& pattern : current) {
      // Extend at every rightmost-path depth with every plausible label.
      for (size_t depth = 0; depth < pattern.rm_path.size(); ++depth) {
        int attach_node = pattern.rm_path[depth];
        auto it = edge_labels.find(pattern.twig.label(attach_node));
        if (it == edge_labels.end()) continue;
        const bool at_leaf = (depth + 1 == pattern.rm_path.size());
        for (LabelId child_label : it->second) {
          std::unordered_map<std::string, Occurrence> merged;
          for (const Occurrence& occ : pattern.occurrences) {
            NodeId anchor = occ.path[depth];
            // First candidate child: all children when extending at the
            // rightmost leaf; otherwise only siblings after the image of
            // the attach node's current last child (occ.path[depth+1]).
            NodeId w = at_leaf ? doc.FirstChild(anchor)
                               : doc.NextSibling(occ.path[depth + 1]);
            for (; w != kInvalidNode; w = doc.NextSibling(w)) {
              if (doc.Label(w) != child_label) continue;
              std::string key(
                  reinterpret_cast<const char*>(occ.path.data()),
                  (depth + 1) * sizeof(NodeId));
              key.append(reinterpret_cast<const char*>(&w), sizeof(NodeId));
              auto [slot, inserted] = merged.emplace(key, Occurrence{});
              if (inserted) {
                slot->second.path.assign(occ.path.begin(),
                                         occ.path.begin() +
                                             static_cast<long>(depth) + 1);
                slot->second.path.push_back(w);
                slot->second.mult = occ.mult;
              } else {
                slot->second.mult =
                    SaturatingAdd(slot->second.mult, occ.mult);
              }
            }
          }
          if (merged.empty()) continue;
          OrderedPattern extended;
          extended.twig = pattern.twig;
          int new_node = extended.twig.AddNode(child_label, attach_node);
          extended.rm_path.assign(pattern.rm_path.begin(),
                                  pattern.rm_path.begin() +
                                      static_cast<long>(depth) + 1);
          extended.rm_path.push_back(new_node);
          extended.occurrences.reserve(merged.size());
          for (auto& [key, occ] : merged) {
            (void)key;
            extended.occurrences.push_back(std::move(occ));
          }
          occurrence_volume += extended.occurrences.size();
          next.push_back(std::move(extended));
        }
      }
    }
    local.ordered_patterns += next.size();
    local.peak_occurrences = std::max(local.peak_occurrences,
                                      occurrence_volume);
    FreqtMetrics::Get().ordered_patterns->Increment(next.size());
    FreqtMetrics::Get().peak_occurrences->SetMax(
        static_cast<int64_t>(occurrence_volume));
    TL_RETURN_IF_ERROR(flush_level(next));
    FreqtMetrics::Get().level_build_micros->Record(
        static_cast<uint64_t>(level_timer.ElapsedMicros()));
    current = std::move(next);
    if (current.empty()) break;
  }

  summary.set_complete_through_level(options.max_level);
  local.build_seconds = timer.ElapsedSeconds();
  if (stats) *stats = local;
  return summary;
}

}  // namespace treelattice
