#ifndef TREELATTICE_MINING_LATTICE_BUILDER_H_
#define TREELATTICE_MINING_LATTICE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "summary/lattice_summary.h"
#include "util/result.h"
#include "xml/document.h"

namespace treelattice {

/// Options for level-wise lattice construction (Section 4.1).
struct LatticeBuildOptions {
  /// Maximum pattern size K; the result is the K-lattice. The paper's
  /// experiments use K = 4 by default.
  int max_level = 4;

  /// Candidate-pruning Apriori check: a (k+1)-candidate is counted only if
  /// all of its k-node sub-twigs obtained by removing a degree-1 node
  /// occurred. Always sound (a match of the candidate restricts to a match
  /// of every such sub-twig, so occurrence is monotone); disabling is
  /// useful only for ablation.
  bool apriori_prune = true;

  /// Hard cap on patterns enumerated per level (0 = unbounded). A safety
  /// valve against label alphabets whose pattern space explodes; when the
  /// cap triggers, completeness is capped to the last full level.
  size_t max_patterns_per_level = 0;

  /// Worker threads for candidate counting (the dominant cost). 1 =
  /// sequential; counting is read-only over the document so results are
  /// identical for any thread count.
  int num_threads = 1;
};

/// Statistics reported by BuildLattice.
struct LatticeBuildStats {
  double build_seconds = 0.0;
  std::vector<size_t> patterns_per_level;  // [0] unused; [k] = count
  size_t candidates_generated = 0;
  size_t candidates_counted = 0;  // candidates surviving Apriori
};

/// Enumerates all occurring twig patterns of size <= options.max_level in
/// `doc` (Freqt/TreeMiner-style level-wise extension with canonical-form
/// deduplication) and returns the lattice summary with exact match counts.
Result<LatticeSummary> BuildLattice(const Document& doc,
                                    const LatticeBuildOptions& options = {},
                                    LatticeBuildStats* stats = nullptr);

}  // namespace treelattice

#endif  // TREELATTICE_MINING_LATTICE_BUILDER_H_
