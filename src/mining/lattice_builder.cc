#include "mining/lattice_builder.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "match/matcher.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "twig/twig.h"
#include "util/timer.h"

namespace treelattice {

namespace {

/// Mining telemetry, shared by both builders: how many candidates were
/// enumerated, how many the Apriori check discarded before counting, how
/// many patterns survived, and per-level build latency.
struct MiningMetrics {
  obs::Counter* candidates_generated;
  obs::Counter* candidates_pruned_apriori;
  obs::Counter* candidates_counted;
  obs::Counter* patterns_inserted;
  obs::Histogram* level_build_micros;

  static MiningMetrics& Get() {
    static MiningMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return MiningMetrics{
          registry->counter(names::kMiningCandidatesGenerated),
          registry->counter(names::kMiningCandidatesPrunedApriori),
          registry->counter(names::kMiningCandidatesCounted),
          registry->counter(names::kMiningPatternsInserted),
          registry->histogram(names::kMiningLevelBuildMicros)};
    }();
    return m;
  }
};

/// Map from parent label to the distinct child labels observed beneath it
/// in the document. Candidate twigs only ever attach edges from this set,
/// which prunes the candidate space to label pairs that can match at all.
std::unordered_map<LabelId, std::vector<LabelId>> CollectEdgeLabels(
    const Document& doc) {
  std::unordered_map<LabelId, std::unordered_set<LabelId>> sets;
  for (NodeId n = 1; n < static_cast<NodeId>(doc.NumNodes()); ++n) {
    sets[doc.Label(doc.Parent(n))].insert(doc.Label(n));
  }
  std::unordered_map<LabelId, std::vector<LabelId>> out;
  out.reserve(sets.size());
  for (auto& [parent, children] : sets) {
    std::vector<LabelId> labels(children.begin(), children.end());
    std::sort(labels.begin(), labels.end());
    out.emplace(parent, std::move(labels));
  }
  return out;
}

/// True if every sub-twig of `candidate` obtained by removing one degree-1
/// node is a known occurring pattern of the previous level.
bool PassesApriori(const Twig& candidate,
                   const std::unordered_set<std::string>& previous_level) {
  for (int node : candidate.RemovableNodes()) {
    Result<Twig> sub = candidate.RemoveNode(node);
    if (!sub.ok()) continue;
    if (previous_level.find(sub->CanonicalCode()) == previous_level.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<LatticeSummary> BuildLattice(const Document& doc,
                                    const LatticeBuildOptions& options,
                                    LatticeBuildStats* stats) {
  if (options.max_level < 2) {
    return Status::InvalidArgument("BuildLattice: max_level must be >= 2");
  }
  obs::TraceSpan build_span("mining.build", "mining");
  build_span.SetArg("max_level", static_cast<uint64_t>(options.max_level));
  WallTimer timer;
  LatticeSummary summary(options.max_level);
  LatticeBuildStats local_stats;
  local_stats.patterns_per_level.assign(
      static_cast<size_t>(options.max_level) + 1, 0);

  if (doc.empty()) {
    summary.set_complete_through_level(options.max_level);
    if (stats) {
      local_stats.build_seconds = timer.ElapsedSeconds();
      *stats = local_stats;
    }
    return summary;
  }

  MatchCounter counter(doc);
  auto edge_labels = CollectEdgeLabels(doc);

  // Level 1: one pattern per occurring label (spanning the label index,
  // which covers labels even when they bypassed the dictionary).
  std::vector<Twig> current;
  for (LabelId label = 0;
       label < static_cast<LabelId>(counter.label_index().NumLabels());
       ++label) {
    size_t occurrences = counter.label_index().Count(label);
    if (occurrences == 0) continue;
    Twig t;
    t.AddNode(label, -1);
    TL_RETURN_IF_ERROR(summary.Insert(t, occurrences));
    current.push_back(std::move(t));
  }
  local_stats.patterns_per_level[1] = current.size();
  MiningMetrics::Get().patterns_inserted->Increment(current.size());

  const int num_threads = std::max(1, options.num_threads);
  int complete_level = 1;
  for (int level = 2; level <= options.max_level; ++level) {
    obs::TraceSpan level_span("mining.level", "mining");
    level_span.SetArg("level", static_cast<uint64_t>(level));
    WallTimer level_timer;
    std::unordered_set<std::string> previous_codes;
    previous_codes.reserve(current.size());
    for (const Twig& t : current) previous_codes.insert(t.CanonicalCode());

    // Phase 1: generate the deduplicated candidate set for this level.
    std::unordered_set<std::string> seen;
    std::vector<Twig> candidates;
    for (const Twig& pattern : current) {
      for (int node = 0; node < pattern.size(); ++node) {
        auto it = edge_labels.find(pattern.label(node));
        if (it == edge_labels.end()) continue;
        for (LabelId child_label : it->second) {
          Twig candidate = pattern;  // small copy; patterns are tiny
          candidate.AddNode(child_label, node);
          ++local_stats.candidates_generated;
          MiningMetrics::Get().candidates_generated->Increment();
          std::string code = candidate.CanonicalCode();
          if (!seen.insert(code).second) continue;
          if (options.apriori_prune && level >= 3 &&
              !PassesApriori(candidate, previous_codes)) {
            MiningMetrics::Get().candidates_pruned_apriori->Increment();
            continue;
          }
          candidates.push_back(std::move(candidate));
        }
      }
    }
    local_stats.candidates_counted += candidates.size();
    MiningMetrics::Get().candidates_counted->Increment(candidates.size());

    // Phase 2: count the candidates — embarrassingly parallel, since
    // MatchCounter::Count only reads the document and label index.
    std::vector<uint64_t> counts(candidates.size(), 0);
    if (num_threads <= 1 || candidates.size() < 2) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        counts[i] = counter.Count(candidates[i]);
      }
    } else {
      std::atomic<size_t> next_index{0};
      auto worker = [&]() {
        for (;;) {
          size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
          if (i >= candidates.size()) return;
          counts[i] = counter.Count(candidates[i]);
        }
      };
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(num_threads));
      for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }

    // Phase 3: insert the survivors in generation order.
    std::vector<Twig> next;
    bool truncated = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (counts[i] == 0) continue;
      if (options.max_patterns_per_level != 0 &&
          next.size() >= options.max_patterns_per_level) {
        truncated = true;
        break;
      }
      TL_RETURN_IF_ERROR(summary.Insert(candidates[i], counts[i]));
      next.push_back(std::move(candidates[i]));
    }
    local_stats.patterns_per_level[static_cast<size_t>(level)] = next.size();
    MiningMetrics::Get().patterns_inserted->Increment(next.size());
    MiningMetrics::Get().level_build_micros->Record(
        static_cast<uint64_t>(level_timer.ElapsedMicros()));
    current = std::move(next);
    if (truncated) break;
    complete_level = level;
    if (current.empty()) {
      complete_level = options.max_level;  // nothing larger can occur
      break;
    }
  }

  summary.set_complete_through_level(complete_level);
  local_stats.build_seconds = timer.ElapsedSeconds();
  if (stats) *stats = local_stats;
  return summary;
}

}  // namespace treelattice
