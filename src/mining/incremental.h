#ifndef TREELATTICE_MINING_INCREMENTAL_H_
#define TREELATTICE_MINING_INCREMENTAL_H_

#include <vector>

#include "summary/lattice_summary.h"
#include "util/result.h"
#include "xml/document.h"

namespace treelattice {

/// Online maintenance of a lattice summary under document growth —
/// the incremental capability Section 6 of the paper claims for
/// TreeLattice (in the spirit of XPathLearner) but does not evaluate.
///
/// The maintainer owns a document and its K-lattice. When a subtree is
/// appended, pattern deltas are computed *locally*: any new match must map
/// at least one query node into the inserted subtree, so its root image
/// lies inside the new subtree or among the at most K-1 nearest ancestors
/// of the insertion point. Counting with the root restricted to that small
/// anchor set, before and after the splice, yields the exact delta without
/// rescanning the document.
///
/// New patterns enabled by the insertion (labels or shapes never seen
/// before) are discovered by mining the anchor neighbourhood, so the
/// summary stays exactly equal to a from-scratch rebuild (property-tested).
class IncrementalLattice {
 public:
  /// Builds the initial summary for `doc` (which is copied and owned).
  static Result<IncrementalLattice> Create(Document doc, int max_level);

  /// Appends `subtree` (a label-structure described as a Twig over the
  /// document's dictionary) under node `parent`, updating both the owned
  /// document and the summary. Returns the number of pattern entries whose
  /// count changed.
  Result<size_t> InsertSubtree(NodeId parent, const Twig& subtree);

  const Document& doc() const { return doc_; }
  const LatticeSummary& summary() const { return summary_; }

 private:
  IncrementalLattice(Document doc, LatticeSummary summary, int max_level)
      : doc_(std::move(doc)),
        summary_(std::move(summary)),
        max_level_(max_level) {}

  Document doc_;
  LatticeSummary summary_;
  int max_level_;
};

}  // namespace treelattice

#endif  // TREELATTICE_MINING_INCREMENTAL_H_
