#include "mining/incremental.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "twig/twig.h"

namespace treelattice {

namespace {

/// Counts matches of `twig` in `doc` whose root image lies in `anchors`.
/// Nodes with id >= exclude_from are treated as absent (pass the first new
/// node id to count "as if before the insertion"; kInvalidNode disables).
/// The DP is memoized per (twig node, document node) and only explores the
/// anchors' descendants, so cost is bounded by the anchor subtrees.
class AnchoredCounter {
 public:
  AnchoredCounter(const Document& doc, const Twig& twig, NodeId exclude_from)
      : doc_(doc), twig_(twig), exclude_from_(exclude_from) {
    memo_.resize(static_cast<size_t>(twig.size()));
  }

  uint64_t CountRootedAt(const std::vector<NodeId>& anchors) {
    uint64_t total = 0;
    for (NodeId v : anchors) {
      if (Excluded(v)) continue;
      total = SaturatingAdd(total, Count(twig_.root(), v));
    }
    return total;
  }

 private:
  bool Excluded(NodeId v) const {
    return exclude_from_ != kInvalidNode && v >= exclude_from_;
  }

  uint64_t Count(int q, NodeId v) {
    if (doc_.Label(v) != twig_.label(q)) return 0;
    auto& table = memo_[static_cast<size_t>(q)];
    if (auto it = table.find(v); it != table.end()) return it->second;

    const std::vector<int>& q_children = twig_.children(q);
    uint64_t result = 1;
    if (!q_children.empty()) {
      bool duplicate_labels = false;
      for (size_t i = 0; i + 1 < q_children.size() && !duplicate_labels;
           ++i) {
        for (size_t j = i + 1; j < q_children.size(); ++j) {
          if (twig_.label(q_children[i]) == twig_.label(q_children[j])) {
            duplicate_labels = true;
            break;
          }
        }
      }
      if (!duplicate_labels) {
        for (int qc : q_children) {
          uint64_t sum = 0;
          for (NodeId w = doc_.FirstChild(v); w != kInvalidNode;
               w = doc_.NextSibling(w)) {
            if (Excluded(w)) continue;
            sum = SaturatingAdd(sum, Count(qc, w));
          }
          if (sum == 0) {
            result = 0;
            break;
          }
          result = SaturatingMul(result, sum);
        }
      } else {
        // Injective assignment via bitmask DP (small query fanout).
        const size_t m = q_children.size();
        const size_t full = size_t{1} << m;
        std::vector<uint64_t> dp(full, 0);
        dp[0] = 1;
        for (NodeId w = doc_.FirstChild(v); w != kInvalidNode;
             w = doc_.NextSibling(w)) {
          if (Excluded(w)) continue;
          for (size_t mask = full; mask-- > 0;) {
            if (dp[mask] == 0) continue;
            for (size_t bit = 0; bit < m; ++bit) {
              if (mask & (size_t{1} << bit)) continue;
              uint64_t c = Count(q_children[bit], w);
              if (c == 0) continue;
              size_t next = mask | (size_t{1} << bit);
              dp[next] = SaturatingAdd(dp[next], SaturatingMul(dp[mask], c));
            }
          }
        }
        result = dp[full - 1];
      }
    }
    table.emplace(v, result);
    return result;
  }

  const Document& doc_;
  const Twig& twig_;
  NodeId exclude_from_;
  std::vector<std::unordered_map<NodeId, uint64_t>> memo_;
};

}  // namespace

Result<IncrementalLattice> IncrementalLattice::Create(Document doc,
                                                      int max_level) {
  LatticeBuildOptions options;
  options.max_level = max_level;
  LatticeSummary summary(max_level);
  TL_ASSIGN_OR_RETURN(summary, BuildLattice(doc, options));
  return IncrementalLattice(std::move(doc), std::move(summary), max_level);
}

Result<size_t> IncrementalLattice::InsertSubtree(NodeId parent,
                                                 const Twig& subtree) {
  if (subtree.empty()) {
    return Status::InvalidArgument("InsertSubtree: empty subtree");
  }
  if (doc_.empty() || parent < 0 ||
      parent >= static_cast<NodeId>(doc_.NumNodes())) {
    return Status::InvalidArgument("InsertSubtree: bad parent node");
  }

  // Splice the subtree into the owned document (ids are appended, so the
  // first new id doubles as the "before" exclusion threshold).
  const NodeId first_new = static_cast<NodeId>(doc_.NumNodes());
  {
    std::vector<NodeId> map(static_cast<size_t>(subtree.size()));
    for (int n : subtree.PreorderNodes()) {
      int p = subtree.parent(n);
      NodeId doc_parent = (p == -1) ? parent : map[static_cast<size_t>(p)];
      map[static_cast<size_t>(n)] = doc_.AddNode(subtree.label(n), doc_parent);
    }
  }

  // Anchor set: every new match maps the pattern root into the new nodes or
  // into the <= K-1 nearest ancestors of the splice point.
  std::vector<NodeId> anchors;
  for (NodeId v = first_new; v < static_cast<NodeId>(doc_.NumNodes()); ++v) {
    anchors.push_back(v);
  }
  {
    NodeId a = parent;
    for (int hops = 0; hops < max_level_ - 1 && a != kInvalidNode; ++hops) {
      anchors.push_back(a);
      a = doc_.Parent(a);
    }
  }

  // Region: nodes reachable from an anchor within K-1 downward edges; the
  // edge labels inside it drive candidate generation.
  std::unordered_map<LabelId, std::unordered_set<LabelId>> region_edges;
  std::unordered_set<LabelId> anchor_labels;
  {
    // FIFO traversal so every node is first visited at its minimum depth
    // (all seeds start at depth 0, so BFS order guarantees this); a LIFO
    // walk could visit an anchor at a larger depth first and prune its
    // own expansion.
    std::vector<std::pair<NodeId, int>> queue;
    std::unordered_set<NodeId> visited;
    for (NodeId a : anchors) {
      anchor_labels.insert(doc_.Label(a));
      queue.push_back({a, 0});
    }
    for (size_t head = 0; head < queue.size(); ++head) {
      auto [v, depth] = queue[head];
      if (!visited.insert(v).second) continue;
      if (depth >= max_level_ - 1) continue;
      for (NodeId w = doc_.FirstChild(v); w != kInvalidNode;
           w = doc_.NextSibling(w)) {
        region_edges[doc_.Label(v)].insert(doc_.Label(w));
        queue.push_back({w, depth + 1});
      }
    }
  }

  // Level-wise candidate enumeration over the anchor neighbourhood, with
  // exact anchored counting before (new nodes excluded) and after.
  size_t changed = 0;
  std::vector<Twig> current;
  std::unordered_set<std::string> seen;
  for (LabelId label : anchor_labels) {
    Twig single;
    single.AddNode(label, -1);
    if (seen.insert(single.CanonicalCode()).second) {
      current.push_back(std::move(single));
    }
  }

  for (int level = 1; level <= max_level_ && !current.empty(); ++level) {
    std::vector<Twig> next;
    std::unordered_set<std::string> next_seen;
    for (const Twig& pattern : current) {
      AnchoredCounter after(doc_, pattern, kInvalidNode);
      uint64_t after_count = after.CountRootedAt(anchors);
      if (after_count == 0) continue;  // cannot extend either

      AnchoredCounter before(doc_, pattern, first_new);
      uint64_t before_count = before.CountRootedAt(anchors);
      if (after_count != before_count) {
        uint64_t delta = after_count - before_count;
        std::string code = pattern.CanonicalCode();
        uint64_t total = summary_.LookupCode(code).value_or(0) + delta;
        TL_RETURN_IF_ERROR(summary_.Insert(pattern, total));
        ++changed;
      }

      if (level == max_level_) continue;
      for (int node = 0; node < pattern.size(); ++node) {
        auto it = region_edges.find(pattern.label(node));
        if (it == region_edges.end()) continue;
        for (LabelId child_label : it->second) {
          Twig candidate = pattern;
          candidate.AddNode(child_label, node);
          if (next_seen.insert(candidate.CanonicalCode()).second) {
            next.push_back(std::move(candidate));
          }
        }
      }
    }
    current = std::move(next);
  }
  return changed;
}

}  // namespace treelattice
