#ifndef TREELATTICE_UTIL_NET_H_
#define TREELATTICE_UTIL_NET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/rng.h"

namespace treelattice {

/// POSIX TCP helpers for the serving transport (serve/transport.*): listener
/// setup, address parsing, and a non-blocking read/write/accept shim with
/// deterministic fault injection — the network rendering of io/fault_env.h.
/// Every socket these helpers touch is O_NONBLOCK and every data call uses
/// MSG_DONTWAIT, so an event loop built on them can never block in a
/// syscall (tools/tl_lint.py `blocking-syscall` enforces that the loop code
/// goes through this layer).

/// "host:port" split; accepts "127.0.0.1:8080", ":8080" (any local
/// address → 0.0.0.0), and a bare "8080". Port 0 asks the kernel for an
/// ephemeral port (tests, benches).
struct HostPort {
  std::string host;
  uint16_t port = 0;
};
Result<HostPort> ParseHostPort(std::string_view text);

/// Marks `fd` O_NONBLOCK (and FD_CLOEXEC).
Status SetNonBlocking(int fd);

/// Creates a non-blocking listening TCP socket bound to host:port with
/// SO_REUSEADDR. Returns the listener fd.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog);

/// Port a bound socket actually listens on (resolves port 0).
Result<uint16_t> BoundPort(int fd);

/// Outcome of one non-blocking socket operation.
struct NetIoResult {
  enum class Kind {
    kOk,          // `bytes` transferred (Read/Write) or `fd` accepted
    kWouldBlock,  // EAGAIN/EWOULDBLOCK: retry after the next readiness event
    kEof,         // orderly shutdown from the peer (Read only)
    kError,       // connection-fatal failure; `error` holds errno
  };
  Kind kind = Kind::kError;
  size_t bytes = 0;
  int fd = -1;
  int error = 0;

  bool ok() const { return kind == Kind::kOk; }
};

/// Deterministic fault seeding for the socket layer, mirroring
/// FaultInjectingEnv for file I/O: a seeded RNG decides, per operation,
/// whether to shorten it, pretend the socket is not ready (EAGAIN storm),
/// or fail it with ECONNRESET. Short reads/writes and EAGAIN are lossless
/// (the caller retries and no byte is dropped); injected resets are
/// connection-fatal on purpose — they exercise the cancel-and-close path.
struct NetFaultConfig {
  /// 0 disables all injection.
  uint64_t seed = 0;
  /// Probability a Read/Write is capped to 1..8 bytes.
  double short_io = 0.0;
  /// Probability a Read/Write/Accept reports EAGAIN although the kernel
  /// was (possibly) ready.
  double eagain = 0.0;
  /// Probability a Read/Write fails with an injected ECONNRESET.
  double reset = 0.0;

  bool enabled() const {
    return seed != 0 && (short_io > 0.0 || eagain > 0.0 || reset > 0.0);
  }
};

/// Non-blocking socket I/O with optional injected faults. One instance per
/// event loop; not thread-safe (the loop thread owns it). `injected_faults`
/// counts every synthetic short/EAGAIN/reset decision taken.
class NetIo {
 public:
  explicit NetIo(const NetFaultConfig& faults = NetFaultConfig())
      : faults_(faults), rng_(faults.seed) {}

  NetIoResult Read(int fd, char* buf, size_t len);
  NetIoResult Write(int fd, const char* buf, size_t len);
  /// Accepts one connection from a listening socket; the returned fd is
  /// already non-blocking. Transient per-connection accept failures
  /// (ECONNABORTED and friends) surface as kWouldBlock so the loop simply
  /// moves on.
  NetIoResult Accept(int listen_fd);

  uint64_t injected_faults() const {
    return injected_faults_.load(std::memory_order_relaxed);
  }

 private:
  /// Kind of synthetic fault to apply to the next operation, if any.
  enum class Fault { kNone, kShort, kEagain, kReset };
  Fault NextFault(bool data_op);

  NetFaultConfig faults_;
  Rng rng_;
  /// Relaxed atomic only so stats snapshots from other threads are clean;
  /// all writes stay on the loop thread.
  std::atomic<uint64_t> injected_faults_{0};
};

/// A self-pipe for waking a poller from other threads (worker completions,
/// shutdown requests). Both ends are non-blocking; Wake() coalesces — a
/// full pipe already guarantees a pending wakeup.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  bool ok() const { return read_fd_ >= 0; }
  int read_fd() const { return read_fd_; }
  /// Thread-safe and async-signal-safe (one write syscall).
  void Wake();
  /// Drains pending wakeups; call when read_fd() polls readable.
  void Drain();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_NET_H_
