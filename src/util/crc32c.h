#ifndef TREELATTICE_UTIL_CRC32C_H_
#define TREELATTICE_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace treelattice {
namespace crc32c {

/// Continues a CRC-32C (Castagnoli polynomial, reflected) over `data`,
/// starting from the CRC of all bytes hashed so far. Pass 0 for the first
/// chunk. Matches the crc32c used by RocksDB/LevelDB file formats (before
/// their masking step), so values are stable across platforms.
uint32_t Extend(uint32_t crc, std::string_view data);

/// CRC-32C of `data` in one shot.
inline uint32_t Value(std::string_view data) { return Extend(0, data); }

/// CRCs stored inside files that are themselves hashed by outer layers are
/// conventionally masked so that a CRC over bytes that contain a CRC does
/// not degenerate. Same rotation+constant as LevelDB.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace treelattice

#endif  // TREELATTICE_UTIL_CRC32C_H_
