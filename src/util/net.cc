#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace treelattice {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<HostPort> ParseHostPort(std::string_view text) {
  HostPort out;
  std::string_view port_part = text;
  const size_t colon = text.rfind(':');
  if (colon != std::string_view::npos) {
    out.host = std::string(text.substr(0, colon));
    port_part = text.substr(colon + 1);
  }
  if (out.host.empty()) out.host = "0.0.0.0";
  if (port_part.empty()) {
    return Status::InvalidArgument("listen address '" + std::string(text) +
                                   "' has no port (want host:port)");
  }
  uint32_t port = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in listen address '" +
                                     std::string(text) + "'");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" +
                                     std::string(text) + "'");
    }
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  int fdflags = fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
  return Status::OK();
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse listen host '" + host +
                                   "' (IPv4 dotted quad or 'localhost')");
  }

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    close(fd);
    return s;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind " + host + ":" + std::to_string(port));
    close(fd);
    return s;
  }
  if (listen(fd, backlog) < 0) {
    Status s = Errno("listen");
    close(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

NetIo::Fault NetIo::NextFault(bool data_op) {
  if (!faults_.enabled()) return Fault::kNone;
  const double roll = rng_.NextDouble();
  double edge = faults_.eagain;
  if (roll < edge) {
    injected_faults_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kEagain;
  }
  if (data_op) {
    edge += faults_.reset;
    if (roll < edge) {
      injected_faults_.fetch_add(1, std::memory_order_relaxed);
      return Fault::kReset;
    }
    edge += faults_.short_io;
    if (roll < edge) {
      injected_faults_.fetch_add(1, std::memory_order_relaxed);
      return Fault::kShort;
    }
  }
  return Fault::kNone;
}

NetIoResult NetIo::Read(int fd, char* buf, size_t len) {
  NetIoResult result;
  size_t cap = len;
  switch (NextFault(/*data_op=*/true)) {
    case Fault::kEagain:
      result.kind = NetIoResult::Kind::kWouldBlock;
      return result;
    case Fault::kReset:
      result.kind = NetIoResult::Kind::kError;
      result.error = ECONNRESET;
      return result;
    case Fault::kShort:
      cap = 1 + rng_.Uniform(8);
      if (cap > len) cap = len;
      break;
    case Fault::kNone:
      break;
  }
  for (;;) {
    ssize_t n = recv(fd, buf, cap, MSG_DONTWAIT);
    if (n > 0) {
      result.kind = NetIoResult::Kind::kOk;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.kind = NetIoResult::Kind::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.kind = NetIoResult::Kind::kWouldBlock;
    } else {
      result.kind = NetIoResult::Kind::kError;
      result.error = errno;
    }
    return result;
  }
}

NetIoResult NetIo::Write(int fd, const char* buf, size_t len) {
  NetIoResult result;
  size_t cap = len;
  switch (NextFault(/*data_op=*/true)) {
    case Fault::kEagain:
      result.kind = NetIoResult::Kind::kWouldBlock;
      return result;
    case Fault::kReset:
      result.kind = NetIoResult::Kind::kError;
      result.error = ECONNRESET;
      return result;
    case Fault::kShort:
      cap = 1 + rng_.Uniform(8);
      if (cap > len) cap = len;
      break;
    case Fault::kNone:
      break;
  }
  for (;;) {
    // MSG_NOSIGNAL: a peer that already closed must yield EPIPE, not kill
    // the process with SIGPIPE.
    ssize_t n = send(fd, buf, cap, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n >= 0) {
      result.kind = NetIoResult::Kind::kOk;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.kind = NetIoResult::Kind::kWouldBlock;
    } else {
      result.kind = NetIoResult::Kind::kError;
      result.error = errno;
    }
    return result;
  }
}

NetIoResult NetIo::Accept(int listen_fd) {
  NetIoResult result;
  if (NextFault(/*data_op=*/false) == Fault::kEagain) {
    result.kind = NetIoResult::Kind::kWouldBlock;
    return result;
  }
  for (;;) {
    // tl-analyze: allow(loop-blocking) -- listen_fd is O_NONBLOCK
    // (ListenTcp sets it before handing the fd out): EAGAIN, never a block
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      if (Status s = SetNonBlocking(fd); !s.ok()) {
        close(fd);
        result.kind = NetIoResult::Kind::kError;
        result.error = EINVAL;
        return result;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      result.kind = NetIoResult::Kind::kOk;
      result.fd = fd;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.kind = NetIoResult::Kind::kWouldBlock;
      return result;
    }
    // ECONNABORTED/EMFILE and friends: this connection is gone (or must
    // wait); the listener itself is still fine.
    if (errno == ECONNABORTED || errno == EPROTO || errno == EMFILE ||
        errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
      result.kind = NetIoResult::Kind::kWouldBlock;
      return result;
    }
    result.kind = NetIoResult::Kind::kError;
    result.error = errno;
    return result;
  }
}

WakePipe::WakePipe() {
  int fds[2];
  if (pipe(fds) != 0) return;
  if (!SetNonBlocking(fds[0]).ok() || !SetNonBlocking(fds[1]).ok()) {
    close(fds[0]);
    close(fds[1]);
    return;
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) close(read_fd_);
  if (write_fd_ >= 0) close(write_fd_);
}

void WakePipe::Wake() {
  if (write_fd_ < 0) return;
  const char byte = 'w';
  // EAGAIN means the pipe is full — a wakeup is already pending, which is
  // all Wake promises. The pipe is O_NONBLOCK (constructor).
  // tl-analyze: allow(loop-blocking) -- nonblocking pipe write
  (void)!write(write_fd_, &byte, 1);
}

void WakePipe::Drain() {
  if (read_fd_ < 0) return;
  char buf[256];
  // tl-analyze: allow(loop-blocking) -- nonblocking pipe read: drains
  // until EAGAIN, never blocks (O_NONBLOCK set in the constructor)
  while (read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace treelattice
