#ifndef TREELATTICE_UTIL_STATUS_H_
#define TREELATTICE_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

#include "util/analysis_annotations.h"

namespace treelattice {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a lightweight status object instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kOutOfRange,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error result for operations that do not return a value.
///
/// Statuses are cheap to copy in the common OK case (no message allocation)
/// and carry a code plus a free-form message otherwise. All fallible public
/// APIs in this library return Status or Result<T>; exceptions are not used.
class TL_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Documents a deliberately discarded Status (best-effort cleanup paths,
/// fire-and-forget notifications). The `justification` argument is the
/// point: the reason a failure here is acceptable lives at the call site,
/// greppable and visible to the semantic analyzer (tools/tl_analyze.py
/// accepts IgnoreStatus calls where a bare discard or a blanket
/// `(void)`-cast is a `status-discard` finding).
inline void IgnoreStatus(const Status& status, const char* justification) {
  (void)status;
  (void)justification;
}

}  // namespace treelattice

/// Propagates a non-OK Status from an expression to the caller.
#define TL_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::treelattice::Status _tl_status = (expr);   \
    if (!_tl_status.ok()) return _tl_status;     \
  } while (0)

#endif  // TREELATTICE_UTIL_STATUS_H_
