#ifndef TREELATTICE_UTIL_DEADLINE_H_
#define TREELATTICE_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "util/status.h"

namespace treelattice {

/// A point in monotonic time after which work should stop. Deadlines are
/// absolute, so passing one down a call chain (estimator -> fallback ->
/// sub-estimate) naturally charges every stage against the same budget.
/// A default-constructed Deadline never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : when_(Clock::time_point::max()) {}

  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// A deadline `millis` milliseconds from now. Non-positive values expire
  /// immediately.
  static Deadline After(double millis) {
    Deadline d;
    d.when_ = Clock::now() +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(millis));
    return d;
  }

  static Deadline At(Clock::time_point when) {
    Deadline d;
    d.when_ = when;
    return d;
  }

  bool is_infinite() const { return when_ == Clock::time_point::max(); }

  bool expired() const { return !is_infinite() && Clock::now() >= when_; }

  /// Milliseconds until expiry: negative once expired, +infinity for an
  /// infinite deadline.
  double remaining_millis() const {
    if (is_infinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(when_ - Clock::now())
        .count();
  }

  Clock::time_point when() const { return when_; }

 private:
  Clock::time_point when_;
};

/// Cooperative cancellation flag, shared between a requester (who calls
/// Cancel, from any thread) and a worker (who polls cancelled(), usually
/// via CostGovernor::Charge). Cancellation is one-way and sticky.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Combines a Deadline, an optional CancelToken, and a work-step budget
/// into one cooperative governor that hot loops consult via Charge().
///
/// A "step" is one unit of bounded work — a summary lookup, a
/// decomposition split, a sweep window. Step budgets make resource limits
/// deterministic (tests and replayable traces); the deadline bounds wall
/// time. To keep Charge cheap enough for inner loops, the wall clock is
/// read only every kClockCheckInterval charges; the worst-case deadline
/// overshoot is therefore kClockCheckInterval steps of work, a few
/// microseconds in the estimator loops.
///
/// A governor is single-threaded state (use one per request, not shared);
/// the CancelToken it polls may be set from any thread. Once tripped it
/// stays tripped: every later Charge returns the same error.
class CostGovernor {
 public:
  static constexpr uint64_t kClockCheckInterval = 64;

  /// An ungoverned governor: Charge always succeeds (but still counts).
  CostGovernor() = default;

  CostGovernor(Deadline deadline, const CancelToken* cancel,
               uint64_t max_steps)
      : deadline_(deadline), cancel_(cancel), max_steps_(max_steps) {}

  /// Charges `n` steps of work. Returns OK while within budget; otherwise
  /// kCancelled, kResourceExhausted (step budget), or kDeadlineExceeded.
  Status Charge(uint64_t n = 1) {
    if (tripped_) return trip_;
    steps_ += n;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Trip(Status::Cancelled("request cancelled after " +
                                    std::to_string(steps_) + " steps"));
    }
    if (max_steps_ > 0 && steps_ > max_steps_) {
      return Trip(Status::ResourceExhausted(
          "work-step budget of " + std::to_string(max_steps_) +
          " steps exhausted"));
    }
    if (!deadline_.is_infinite()) {
      if (until_clock_check_ <= n) {
        until_clock_check_ = kClockCheckInterval;
        if (deadline_.expired()) {
          return Trip(Status::DeadlineExceeded(
              "deadline expired after " + std::to_string(steps_) + " steps"));
        }
      } else {
        until_clock_check_ -= n;
      }
    }
    return Status::OK();
  }

  /// Total steps charged so far (including the one that tripped).
  uint64_t steps() const { return steps_; }

  /// True once any limit has been hit; Charge keeps failing from then on.
  bool tripped() const { return tripped_; }

  /// True when `code` is one of the budget-trip codes a governor emits.
  static bool IsBudgetError(StatusCode code) {
    return code == StatusCode::kDeadlineExceeded ||
           code == StatusCode::kResourceExhausted ||
           code == StatusCode::kCancelled;
  }

 private:
  Status Trip(Status status) {
    tripped_ = true;
    trip_ = status;
    return status;
  }

  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  uint64_t max_steps_ = 0;
  uint64_t steps_ = 0;
  uint64_t until_clock_check_ = 0;  // forces a clock read on first Charge
  bool tripped_ = false;
  Status trip_;
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_DEADLINE_H_
