#ifndef TREELATTICE_UTIL_THREAD_ANNOTATIONS_H_
#define TREELATTICE_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (no-ops on other compilers).
///
/// These macros let the compiler statically verify locking discipline when
/// building with Clang and -Wthread-safety (the top-level CMakeLists turns
/// the warning on automatically for Clang builds; see also
/// tools/run_static_analysis.sh). Usage:
///
///   class Registry {
///    private:
///     mutable std::mutex mu_;
///     std::map<std::string, int> entries_ TL_GUARDED_BY(mu_);
///   };
///
/// Functions that must be called with a lock held are annotated
/// TL_REQUIRES(mu_); functions that must NOT hold it, TL_EXCLUDES(mu_).
/// The std::mutex / std::lock_guard pair is understood natively by Clang's
/// analysis (libc++ and libstdc++ both ship annotated declarations when the
/// analysis is enabled), so no wrapper types are needed.

#if defined(__clang__) && defined(__has_attribute)
#define TL_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TL_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a member as protected by the given mutex.
#define TL_GUARDED_BY(x) TL_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Marks a pointer member whose pointee is protected by the given mutex.
#define TL_PT_GUARDED_BY(x) TL_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The annotated function must be called with the given capability held.
#define TL_REQUIRES(...) \
  TL_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The annotated function must be called WITHOUT the given capability.
#define TL_EXCLUDES(...) \
  TL_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the capability and does not release it.
#define TL_ACQUIRE(...) \
  TL_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The annotated function releases the capability.
#define TL_RELEASE(...) \
  TL_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The annotated function returns a reference to the given capability.
#define TL_RETURN_CAPABILITY(x) \
  TL_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the access is in fact safe.
#define TL_NO_THREAD_SAFETY_ANALYSIS \
  TL_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TREELATTICE_UTIL_THREAD_ANNOTATIONS_H_
