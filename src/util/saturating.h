#ifndef TREELATTICE_UTIL_SATURATING_H_
#define TREELATTICE_UTIL_SATURATING_H_

#include <cstdint>
#include <limits>

namespace treelattice {

/// Multiplies saturating at UINT64_MAX. Match and embedding counts can
/// overflow on pathological patterns; saturation keeps them ordered.
inline uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

/// Adds saturating at UINT64_MAX.
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  if (a > std::numeric_limits<uint64_t>::max() - b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a + b;
}

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_SATURATING_H_
