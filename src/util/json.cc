#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace treelattice {

// ---------------------------------------------------------------------------
// JsonWriter

void JsonWriter::AppendEscaped(std::string_view value, std::string* out) {
  out->push_back('"');
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes the "key": pair; no comma in between
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_.push_back(',');
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key, &out_);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  AppendEscaped(value, &out_);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_.append(json);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_.append("null");
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_.append("null");
  return *this;
}

// ---------------------------------------------------------------------------
// Parser

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    TL_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      TL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      TL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      TL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          TL_RETURN_IF_ERROR(ParseHex4(&code));
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("bad escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (text_.size() - pos_ < 4) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = code;
    return Status::OK();
  }

  /// Encodes a BMP code point as UTF-8 (surrogate halves pass through as
  /// individual code units; our own writer never emits them).
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Error("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (!std::isdigit(static_cast<unsigned char>(
            pos_ < text_.size() ? text_[pos_] : '\0'))) {
      return Error("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace treelattice
