#ifndef TREELATTICE_UTIL_RNG_H_
#define TREELATTICE_UTIL_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace treelattice {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (data generators, workload
/// sampling, voting-sample selection) takes an explicit Rng so experiments
/// are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Reseed(seed); }

  /// Re-initializes the state from a seed via SplitMix64 expansion.
  void Reseed(uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t& s0 = state_[0];
    uint64_t& s1 = state_[1];
    uint64_t& s2 = state_[2];
    uint64_t& s3 = state_[3];
    const uint64_t result = Rotl(s1 * 5, 7) * 9;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed integer in [0, n) with exponent `theta` (theta == 0 is
  /// uniform). Uses inverse-CDF over precomputable weights; intended for
  /// modest n (label alphabets, fanout choices).
  uint64_t Zipf(uint64_t n, double theta);

  /// Samples an index from an explicit (unnormalized) weight vector.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_RNG_H_
