#ifndef TREELATTICE_UTIL_EVENT_POLLER_H_
#define TREELATTICE_UTIL_EVENT_POLLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace treelattice {

/// Readiness multiplexer for the serving event loop: epoll on Linux, a
/// poll(2) fallback everywhere else (and on Linux when `force_poll` asks
/// for it, so the fallback path stays tested). Level-triggered in both
/// backends — a fd stays ready until the caller drains it, which keeps the
/// transport's read/write resumption logic trivial.
///
/// Not thread-safe: one poller belongs to one loop thread. Use a WakePipe
/// fd registered with the poller to nudge it from other threads.
class EventPoller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error or hangup on the fd (EPOLLERR/EPOLLHUP, POLLERR/POLLHUP).
    /// The peer sending RST lands here; a clean half-close (shutdown of
    /// the peer's write side) shows up as readable-with-EOF instead.
    bool error = false;
  };

  explicit EventPoller(bool force_poll = false);
  ~EventPoller();
  EventPoller(const EventPoller&) = delete;
  EventPoller& operator=(const EventPoller&) = delete;

  bool ok() const;
  /// True when the epoll backend is active (always false off-Linux).
  bool using_epoll() const { return epoll_fd_ >= 0; }

  Status Add(int fd, bool want_read, bool want_write);
  Status Modify(int fd, bool want_read, bool want_write);
  Status Remove(int fd);
  size_t watched() const { return interest_.size(); }

  /// Blocks up to `timeout_millis` (< 0 = forever, 0 = poll) and appends
  /// ready fds to `events` (cleared first). A signal interrupting the wait
  /// returns OK with zero events so the caller re-checks its stop flag.
  Status Wait(int timeout_millis, std::vector<Event>* events);

 private:
  // fd -> interest mask (bit 0 read, bit 1 write); the poll backend builds
  // its pollfd array from this map, the epoll backend mirrors it into the
  // kernel.
  std::unordered_map<int, uint8_t> interest_;
  int epoll_fd_ = -1;
  bool poll_ok_ = true;
  std::vector<Event> scratch_;
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_EVENT_POLLER_H_
