#include "util/crc32c.h"

#include <array>
#include <cstddef>

namespace treelattice {
namespace crc32c {
namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slicing-by-4 tables, built once at first use. Table 0 is the classic
// byte-at-a-time table; tables 1-3 extend it so four input bytes fold per
// iteration, which is plenty for summary-sized files without requiring
// SSE4.2 intrinsics.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t crc, std::string_view data) {
  const Tables& tables = GetTables();
  uint32_t c = ~crc;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tables.t[3][c & 0xff] ^ tables.t[2][(c >> 8) & 0xff] ^
        tables.t[1][(c >> 16) & 0xff] ^ tables.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    c = (c >> 8) ^ tables.t[0][(c ^ *p) & 0xff];
    ++p;
    --n;
  }
  return ~c;
}

}  // namespace crc32c
}  // namespace treelattice
