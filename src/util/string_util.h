#ifndef TREELATTICE_UTIL_STRING_UTIL_H_
#define TREELATTICE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace treelattice {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string_view> SplitString(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

/// True if `input` starts with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// Formats a byte count as "12.3 KB" / "4.0 MB" for report tables.
std::string HumanBytes(size_t bytes);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_STRING_UTIL_H_
