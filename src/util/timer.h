#ifndef TREELATTICE_UTIL_TIMER_H_
#define TREELATTICE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace treelattice {

/// Monotonic wall-clock stopwatch used by the experiment harness.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_TIMER_H_
