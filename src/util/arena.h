#ifndef TREELATTICE_UTIL_ARENA_H_
#define TREELATTICE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/analysis_annotations.h"

namespace treelattice {

/// Monotonic bump allocator for per-batch scratch: allocations are O(1)
/// pointer bumps into fixed-size blocks, nothing is freed individually, and
/// Reset() rewinds the whole arena in O(1) while retaining every block — so
/// a warm arena serves an entire batch without entering the system
/// allocator. No destructors are run: only trivially-destructible payloads
/// (PODs, index arrays, probe keys) may live here.
///
/// Not thread-safe: one arena per thread (the batch pipeline keeps one per
/// worker next to its EstimateScratch).
class MonotonicArena {
 public:
  /// Block payload size. Requests larger than this get a dedicated
  /// oversized block; everything else bump-allocates.
  static constexpr size_t kBlockBytes = 1 << 16;  // 64 KiB

  MonotonicArena() = default;
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two). Never
  /// returns nullptr; size 0 yields a valid unique pointer.
  // Amortized growth only: a warm arena bumps into retained blocks and
  // re-enters the allocator just while growing toward its high-water size.
  TL_ALLOC_OK void* Allocate(size_t size, size_t align) {
    size_t cur = reinterpret_cast<uintptr_t>(ptr_) & (align - 1);
    size_t pad = cur == 0 ? 0 : align - cur;
    if (ptr_ != nullptr && pad + size <= remaining_) {
      void* out = ptr_ + pad;
      ptr_ += pad + size;
      remaining_ -= pad + size;
      return out;
    }
    return AllocateSlow(size, align);
  }

  /// Typed helper: uninitialized storage for `n` objects of trivially
  /// destructible type T.
  template <typename T>
  TL_ALLOC_OK T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty in O(1), retaining all blocks for reuse. Oversized
  /// blocks are retained too (they are rare and bounded by the largest
  /// batch seen).
  void Reset() {
    next_block_ = 0;
    if (!blocks_.empty()) {
      ptr_ = blocks_[0].get();
      remaining_ = block_sizes_[0];
      next_block_ = 1;
    } else {
      ptr_ = nullptr;
      remaining_ = 0;
    }
  }

  /// Total bytes owned across all blocks (capacity, not live bytes).
  size_t CapacityBytes() const {
    size_t total = 0;
    for (size_t s : block_sizes_) total += s;
    return total;
  }

 private:
  // Out-of-line refill: advance to the next retained block that fits, or
  // allocate a new one. Kept separate so the hot Allocate() inlines to a
  // couple of arithmetic ops plus a predictable branch.
  TL_ALLOC_OK void* AllocateSlow(size_t size, size_t align) {
    // An oversized request gets its own block so normal blocks stay full.
    const size_t want = size + align > kBlockBytes ? size + align : kBlockBytes;
    while (next_block_ < blocks_.size()) {
      const size_t i = next_block_++;
      if (block_sizes_[i] >= size + align) {
        ptr_ = blocks_[i].get();
        remaining_ = block_sizes_[i];
        return Allocate(size, align);
      }
    }
    blocks_.push_back(std::make_unique_for_overwrite<char[]>(want));
    block_sizes_.push_back(want);
    next_block_ = blocks_.size();
    ptr_ = blocks_.back().get();
    remaining_ = want;
    return Allocate(size, align);
  }

  char* ptr_ = nullptr;       ///< bump cursor inside the current block
  size_t remaining_ = 0;      ///< bytes left in the current block
  size_t next_block_ = 0;     ///< next retained block Reset()/refill will use
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<size_t> block_sizes_;
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_ARENA_H_
