#ifndef TREELATTICE_UTIL_RESULT_H_
#define TREELATTICE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace treelattice {

/// A value-or-error holder, analogous to arrow::Result / absl::StatusOr.
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Accessing
/// the value of an errored Result is a programmer error and asserts.
template <typename T>
class TL_NODISCARD Result {
 public:
  /// Implicit construction from a value (the common return path).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (the error return path).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` if this Result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace treelattice

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// assigns the unwrapped value to `lhs` (declared by the caller).
#define TL_ASSIGN_OR_RETURN(lhs, expr)               \
  do {                                               \
    auto _tl_result = (expr);                        \
    if (!_tl_result.ok()) return _tl_result.status(); \
    lhs = std::move(_tl_result).value();             \
  } while (0)

#endif  // TREELATTICE_UTIL_RESULT_H_
