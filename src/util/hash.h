#ifndef TREELATTICE_UTIL_HASH_H_
#define TREELATTICE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace treelattice {

/// 64-bit finalizer from SplitMix64; good avalanche behaviour for integer
/// keys used in pattern-code hash tables.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a hash value with the hash of another, boost-style but with a
/// 64-bit constant.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// FNV-1a over a byte string. Used for canonical twig encodings.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_HASH_H_
