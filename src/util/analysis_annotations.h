#ifndef TREELATTICE_UTIL_ANALYSIS_ANNOTATIONS_H_
#define TREELATTICE_UTIL_ANALYSIS_ANNOTATIONS_H_

/// Annotations consumed by the semantic analyzer (tools/tl_analyze.py) and,
/// where the toolchain supports it, by the compiler itself. See DESIGN.md
/// §13 "Semantic analysis".
///
/// Three families:
///
///   TL_NODISCARD      `[[nodiscard]]` on Status / Result<T>: the compiler
///                     rejects any call whose Status-like result is silently
///                     dropped (-Wunused-result, promoted to an error by the
///                     -Werror gate). tl_analyze's `status-discard` check
///                     re-verifies the same invariant semantically so a
///                     cast-to-void that merely silences the compiler is
///                     still surfaced unless it carries a justification.
///
///   TL_HOT            Marks a function as an allocation-free hot-path root
///                     (estimator entry points, scratch/cache probes — the
///                     PR 5 contract). tl_analyze's `hot-alloc` check walks
///                     the call graph from every TL_HOT root and reports any
///                     reachable allocating operation with the full call
///                     chain. Expands to `annotate("tl_hot")` under Clang so
///                     the attribute survives into the AST; a no-op
///                     elsewhere (GCC has no annotate attribute).
///
///   TL_EVENT_LOOP     Marks a function as running on the single-threaded
///                     TCP event loop (transport dispatch, connection
///                     callbacks). tl_analyze's `loop-blocking` check walks
///                     the call graph from every TL_EVENT_LOOP root and
///                     reports reachable blocking syscalls — the semantic
///                     upgrade of tl_lint's file-scoped `blocking-syscall`
///                     regex, which remains as the fallback when libclang is
///                     absent.
///
/// Annotations are statements of intent, not wishes: adding TL_HOT or
/// TL_EVENT_LOOP to a function makes the analyzer enforce the contract for
/// everything it (transitively) calls. Suppress individual findings with
/// `// tl-analyze: allow(<check>) -- <justification>` on or above the line.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define TL_ANALYSIS_ANNOTATION(x) __attribute__((annotate(x)))
#else
#define TL_ANALYSIS_ANNOTATION(x)  // no annotate attribute
#endif
#else
#define TL_ANALYSIS_ANNOTATION(x)  // no-op outside Clang
#endif

/// Result must be used: compiler-checked everywhere ([[nodiscard]] is
/// standard C++17), analyzer-checked through `status-discard`.
#define TL_NODISCARD [[nodiscard]]

/// Allocation-free hot-path root for tl_analyze's `hot-alloc` check.
#define TL_HOT TL_ANALYSIS_ANNOTATION("tl_hot")

/// Marks a function reachable from a TL_HOT root that is allowed to
/// allocate: amortized growth paths (a warm buffer reuses capacity and
/// never re-enters the allocator) and cold-start publication. The analyzer
/// stops its hot-alloc walk at these functions instead of reporting their
/// allocations. Every use must carry a comment justifying why the
/// allocation is amortized or off the steady-state path.
#define TL_ALLOC_OK TL_ANALYSIS_ANNOTATION("tl_alloc_ok")

/// Event-loop root for tl_analyze's `loop-blocking` check.
#define TL_EVENT_LOOP TL_ANALYSIS_ANNOTATION("tl_event_loop")

#endif  // TREELATTICE_UTIL_ANALYSIS_ANNOTATIONS_H_
