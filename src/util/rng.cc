#include "util/rng.h"

#include <cmath>

namespace treelattice {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta == 0.0) return Uniform(n);
  // Inverse CDF by linear walk; adequate for the small n used by the data
  // generators (label/fanout choices). Rank 1 is the most frequent.
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), theta);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), theta);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return Uniform(weights.size());
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace treelattice
