#include "util/event_poller.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define TL_HAVE_EPOLL 1
#endif

namespace treelattice {

namespace {

constexpr uint8_t kRead = 1;
constexpr uint8_t kWrite = 2;

uint8_t Mask(bool want_read, bool want_write) {
  return static_cast<uint8_t>((want_read ? kRead : 0) |
                              (want_write ? kWrite : 0));
}

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventPoller::EventPoller(bool force_poll) {
#if TL_HAVE_EPOLL
  if (!force_poll) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    // On failure fall through to the poll backend rather than erroring:
    // the fallback exists exactly for "epoll unavailable".
  }
#else
  (void)force_poll;
#endif
}

EventPoller::~EventPoller() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

bool EventPoller::ok() const { return epoll_fd_ >= 0 || poll_ok_; }

Status EventPoller::Add(int fd, bool want_read, bool want_write) {
  if (fd < 0) return Status::InvalidArgument("EventPoller::Add: bad fd");
  const uint8_t mask = Mask(want_read, want_write);
  interest_[fd] = mask;
#if TL_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      interest_.erase(fd);
      return Errno("epoll_ctl(ADD)");
    }
  }
#endif
  return Status::OK();
}

Status EventPoller::Modify(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::NotFound("EventPoller::Modify: fd not registered");
  }
  const uint8_t mask = Mask(want_read, want_write);
  if (it->second == mask) return Status::OK();
  it->second = mask;
#if TL_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
  }
#endif
  return Status::OK();
}

Status EventPoller::Remove(int fd) {
  if (interest_.erase(fd) == 0) return Status::OK();
#if TL_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    // The fd may already be closed (kernel auto-deregisters); EBADF/ENOENT
    // are not failures of the caller's bookkeeping.
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
        errno != EBADF && errno != ENOENT) {
      return Errno("epoll_ctl(DEL)");
    }
  }
#endif
  return Status::OK();
}

Status EventPoller::Wait(int timeout_millis, std::vector<Event>* events) {
  events->clear();
#if TL_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ready[256];
    int n = epoll_wait(epoll_fd_, ready, 256, timeout_millis);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, mask] : interest_) {
    pollfd p;
    p.fd = fd;
    p.events = static_cast<short>(((mask & kRead) ? POLLIN : 0) |
                                  ((mask & kWrite) ? POLLOUT : 0));
    p.revents = 0;
    fds.push_back(p);
  }
  int n = poll(fds.data(), fds.size(), timeout_millis);
  if (n < 0) {
    if (errno == EINTR) return Status::OK();
    return Errno("poll");
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return Status::OK();
}

}  // namespace treelattice
