#ifndef TREELATTICE_UTIL_JSON_H_
#define TREELATTICE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace treelattice {

/// Minimal streaming JSON writer: explicit Begin/End calls with automatic
/// comma placement. Produces compact (no whitespace) RFC 8259 output.
/// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value (or
  /// Begin*). Only valid directly inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices pre-serialized JSON in as one value. The caller vouches that
  /// `json` is itself well-formed (e.g. another writer's str()).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Appends a JSON-escaped, quoted copy of `value` to `*out`.
  static void AppendEscaped(std::string_view value, std::string* out);

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open scope: true until the first element is written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// A parsed JSON value (null, bool, number, string, array, or object).
/// Object member order is preserved. Intended for tests and tools that
/// validate TreeLattice's machine-readable output — small inputs, clarity
/// over speed.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as a single JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Returns InvalidArgument with an offset on
/// malformed input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_JSON_H_
