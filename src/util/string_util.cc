#include "util/string_util.h"

#include <cstdio>

namespace treelattice {

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(input.substr(start));
      break;
    }
    pieces.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (begin < end && is_space(input[begin])) ++begin;
  while (end > begin && is_space(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

std::string HumanBytes(size_t bytes) {
  char buf[64];
  if (bytes >= (size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace treelattice
