#ifndef TREELATTICE_UTIL_CODING_H_
#define TREELATTICE_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace treelattice {

/// Fixed-width little-endian encoding helpers for on-disk formats. All
/// multi-byte integers in TreeLattice file formats are little-endian
/// regardless of host byte order.

inline void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t value) {
  PutFixed32(out, static_cast<uint32_t>(value & 0xffffffffu));
  PutFixed32(out, static_cast<uint32_t>(value >> 32));
}

inline uint32_t DecodeFixed32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

/// Bounds-checked sequential reader over an in-memory byte buffer. All
/// Get* calls fail (return false) instead of reading past the end, so a
/// corrupt length field can never cause an out-of-bounds read.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

  bool GetFixed32(uint32_t* value) {
    if (remaining() < 4) return false;
    *value = DecodeFixed32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool GetFixed64(uint64_t* value) {
    if (remaining() < 8) return false;
    *value = DecodeFixed64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool GetBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace treelattice

#endif  // TREELATTICE_UTIL_CODING_H_
