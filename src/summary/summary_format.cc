#include "summary/summary_format.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "twig/twig.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "xml/dict_codec.h"

namespace treelattice {
namespace {

/// Persistence telemetry: successful operations, bytes moved, and — making
/// the fault-injection machinery observable — checksum failures and salvage
/// loads.
struct SummaryMetrics {
  obs::Counter* saves;
  obs::Counter* save_bytes;
  obs::Counter* loads;
  obs::Counter* load_bytes;
  obs::Counter* crc_failures;
  obs::Counter* salvage_loads;

  static SummaryMetrics& Get() {
    static SummaryMetrics m = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      namespace names = obs::metric_names;
      return SummaryMetrics{registry->counter(names::kSummarySaves),
                            registry->counter(names::kSummarySaveBytes),
                            registry->counter(names::kSummaryLoads),
                            registry->counter(names::kSummaryLoadBytes),
                            registry->counter(names::kSummaryCrcFailures),
                            registry->counter(names::kSummarySalvageLoads)};
    }();
    return m;
  }
};

constexpr std::string_view kMagicV2 = "TLSUM2\r\n";
constexpr std::string_view kMagicV1 = "TLSUMMARY v1";
constexpr size_t kHeaderPayloadBytes = 24;
// magic + header payload + header crc
constexpr size_t kHeaderBytes = 8 + kHeaderPayloadBytes + 4;
// tag + payload size
constexpr size_t kSectionPrefixBytes = 1 + 8;

constexpr char kTagDict = 'D';
constexpr char kTagLevel = 'L';
constexpr char kTagEnd = 'E';

std::string SectionName(char tag, int level) {
  switch (tag) {
    case kTagDict:
      return "dict section";
    case kTagLevel:
      return "level " + std::to_string(level) + " section";
    case kTagEnd:
      return "end marker";
    default:
      return "section '" + std::string(1, tag) + "'";
  }
}

// One parsed (or failed) section: integrity verdict plus, when intact, the
// decoded contents.
struct ParsedSection {
  SectionIntegrity info;
  std::vector<std::pair<Twig, uint64_t>> entries;  // intact 'L' sections
  std::optional<LabelDict> dict;                   // intact 'D' section
};

struct ParsedV2 {
  int max_level = 0;
  int complete = 0;
  bool has_dict = false;
  uint64_t total_patterns = 0;
  std::vector<ParsedSection> sections;
  bool intact = false;
  int salvage_complete = 0;
  std::string first_detail;
};

Status ParseSectionPayload(char tag, int level, std::string_view payload,
                           ParsedSection* out) {
  ByteReader reader(payload);
  switch (tag) {
    case kTagDict: {
      LabelDict dict;
      TL_RETURN_IF_ERROR(DecodeLabelDict(payload, &dict));
      out->dict = std::move(dict);
      return Status::OK();
    }
    case kTagLevel: {
      uint32_t stored_level = 0;
      uint64_t n = 0;
      if (!reader.GetFixed32(&stored_level) || !reader.GetFixed64(&n)) {
        return Status::Corruption("truncated level section header");
      }
      if (stored_level != static_cast<uint32_t>(level)) {
        return Status::Corruption("level number mismatch");
      }
      // Each entry takes at least 12 bytes, so a count beyond the payload
      // size is corruption, not a huge level.
      if (n > payload.size()) {
        return Status::Corruption("implausible pattern count");
      }
      out->entries.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t count = 0;
        uint32_t len = 0;
        std::string_view code;
        if (!reader.GetFixed64(&count) || !reader.GetFixed32(&len) ||
            !reader.GetBytes(len, &code)) {
          return Status::Corruption("truncated pattern entry");
        }
        Result<Twig> twig = Twig::FromCanonicalCode(std::string(code));
        if (!twig.ok()) {
          return Status::Corruption("bad canonical code: " +
                                    twig.status().message());
        }
        if (twig->size() != level) {
          return Status::Corruption("pattern filed under wrong level");
        }
        if (count == 0) {
          return Status::Corruption("zero-count pattern");
        }
        out->entries.emplace_back(std::move(*twig), count);
      }
      if (!reader.empty()) {
        return Status::Corruption("trailing bytes in level section");
      }
      return Status::OK();
    }
    case kTagEnd:
      if (!payload.empty()) {
        return Status::Corruption("end marker carries payload");
      }
      return Status::OK();
    default:
      return Status::Corruption("unknown section tag");
  }
}

/// Walks a v2 container. Returns non-OK only when the header is unusable
/// (nothing salvageable); section-level damage is recorded per section.
Status ParseV2(std::string_view contents, const std::string& origin,
               ParsedV2* out) {
  if (contents.size() < kHeaderBytes) {
    return Status::Corruption("truncated v2 header in " + origin);
  }
  uint32_t stored_crc = DecodeFixed32(contents.data() + 8 +
                                      kHeaderPayloadBytes);
  if (crc32c::Value(contents.substr(0, 8 + kHeaderPayloadBytes)) !=
      stored_crc) {
    SummaryMetrics::Get().crc_failures->Increment();
    return Status::Corruption("header checksum mismatch in " + origin);
  }
  ByteReader header(contents.substr(8, kHeaderPayloadBytes));
  uint32_t max_level = 0, complete = 0, flags = 0, reserved = 0;
  uint64_t total_patterns = 0;
  header.GetFixed32(&max_level);
  header.GetFixed32(&complete);
  header.GetFixed32(&flags);
  header.GetFixed32(&reserved);
  header.GetFixed64(&total_patterns);
  (void)reserved;
  if (max_level < 2 ||
      max_level > static_cast<uint32_t>(LatticeSummary::kMaxLevelCap)) {
    return Status::Corruption("implausible max level in " + origin);
  }
  if (complete > max_level) {
    return Status::Corruption("completeness exceeds max level in " + origin);
  }
  out->max_level = static_cast<int>(max_level);
  out->complete = static_cast<int>(complete);
  out->has_dict = (flags & 1u) != 0;
  out->total_patterns = total_patterns;

  std::vector<std::pair<char, int>> expected;
  if (out->has_dict) expected.emplace_back(kTagDict, 0);
  for (int level = 1; level <= out->max_level; ++level) {
    expected.emplace_back(kTagLevel, level);
  }
  expected.emplace_back(kTagEnd, 0);

  size_t pos = kHeaderBytes;
  size_t next = 0;
  std::string stop_detail;  // set when the file structure breaks off
  for (; next < expected.size(); ++next) {
    auto [tag, level] = expected[next];
    if (contents.size() - pos < kSectionPrefixBytes + 4) {
      stop_detail = "file truncated before " + SectionName(tag, level);
      break;
    }
    char actual_tag = contents[pos];
    uint64_t payload_size = DecodeFixed64(contents.data() + pos + 1);
    if (actual_tag != tag) {
      stop_detail = "unexpected tag where " + SectionName(tag, level) +
                    " should start";
      break;
    }
    if (payload_size > contents.size() - pos - kSectionPrefixBytes - 4) {
      stop_detail = SectionName(tag, level) + " truncated";
      break;
    }
    std::string_view raw =
        contents.substr(pos, kSectionPrefixBytes + payload_size);
    uint32_t crc =
        DecodeFixed32(contents.data() + pos + kSectionPrefixBytes +
                      payload_size);
    pos += kSectionPrefixBytes + payload_size + 4;

    ParsedSection section;
    section.info.tag = tag;
    section.info.level = level;
    if (crc32c::Value(raw) != crc) {
      SummaryMetrics::Get().crc_failures->Increment();
      section.info.detail = SectionName(tag, level) + " checksum mismatch";
    } else {
      Status parsed = ParseSectionPayload(
          tag, level, raw.substr(kSectionPrefixBytes), &section);
      if (parsed.ok()) {
        section.info.intact = true;
        section.info.patterns = section.entries.size();
      } else {
        section.info.detail =
            SectionName(tag, level) + ": " + parsed.message();
      }
    }
    out->sections.push_back(std::move(section));
  }
  // Sections the walk never reached (file broke off).
  for (; next < expected.size(); ++next) {
    ParsedSection missing;
    missing.info.tag = expected[next].first;
    missing.info.level = expected[next].second;
    missing.info.detail =
        stop_detail.empty()
            ? SectionName(missing.info.tag, missing.info.level) + " missing"
            : stop_detail;
    stop_detail.clear();  // only the first missing section gets the cause
    out->sections.push_back(std::move(missing));
  }

  std::string trailing_detail;
  bool reached_end = !out->sections.empty() &&
                     out->sections.back().info.tag == kTagEnd &&
                     out->sections.back().info.intact;
  if (reached_end && pos != contents.size()) {
    trailing_detail = "trailing bytes after end marker";
  }

  bool sections_ok = true;
  uint64_t loaded_patterns = 0;
  out->salvage_complete = out->complete;
  for (const ParsedSection& section : out->sections) {
    if (!section.info.intact) {
      sections_ok = false;
      if (out->first_detail.empty()) {
        out->first_detail = section.info.detail;
      }
      if (section.info.tag == kTagLevel) {
        out->salvage_complete =
            std::min(out->salvage_complete, section.info.level - 1);
      }
    } else if (section.info.tag == kTagLevel) {
      loaded_patterns += section.info.patterns;
    }
  }
  if (sections_ok && loaded_patterns != total_patterns) {
    sections_ok = false;
    out->first_detail = "header pattern count (" +
                        std::to_string(total_patterns) +
                        ") does not match sections (" +
                        std::to_string(loaded_patterns) + ")";
  }
  if (sections_ok && !trailing_detail.empty()) {
    sections_ok = false;
    out->first_detail = trailing_detail;
  }
  out->intact = sections_ok;
  return Status::OK();
}

void AppendSection(std::string* buf, char tag, std::string_view payload) {
  size_t start = buf->size();
  buf->push_back(tag);
  PutFixed64(buf, payload.size());
  buf->append(payload);
  PutFixed32(buf,
             crc32c::Value(std::string_view(*buf).substr(start)));
}

}  // namespace

Status SaveSummaryV2(const LatticeSummary& summary, const LabelDict* dict,
                     Env* env, const std::string& path) {
  obs::TraceSpan span("summary.save", "summary");
  std::string buf;
  buf.append(kMagicV2);
  PutFixed32(&buf, static_cast<uint32_t>(summary.max_level()));
  PutFixed32(&buf, static_cast<uint32_t>(summary.complete_through_level()));
  PutFixed32(&buf, dict != nullptr ? 1u : 0u);
  PutFixed32(&buf, 0u);  // reserved
  PutFixed64(&buf, summary.NumPatterns());
  PutFixed32(&buf, crc32c::Value(buf));

  std::string payload;
  if (dict != nullptr) {
    EncodeLabelDict(*dict, &payload);
    AppendSection(&buf, kTagDict, payload);
  }
  for (int level = 1; level <= summary.max_level(); ++level) {
    payload.clear();
    const std::vector<std::string>& codes = summary.PatternsAtLevel(level);
    PutFixed32(&payload, static_cast<uint32_t>(level));
    PutFixed64(&payload, codes.size());
    for (const std::string& code : codes) {
      PutFixed64(&payload, *summary.LookupCode(code));
      PutFixed32(&payload, static_cast<uint32_t>(code.size()));
      payload.append(code);
    }
    AppendSection(&buf, kTagLevel, payload);
  }
  AppendSection(&buf, kTagEnd, "");
  Status status = WriteFileAtomic(env, path, buf);
  if (status.ok()) {
    SummaryMetrics::Get().saves->Increment();
    SummaryMetrics::Get().save_bytes->Increment(buf.size());
  }
  return status;
}

Result<LoadedSummary> LoadSummary(Env* env, const std::string& path) {
  obs::TraceSpan span("summary.load", "summary");
  std::string contents;
  TL_RETURN_IF_ERROR(ReadFileToString(env, path, &contents));
  SummaryMetrics::Get().loads->Increment();
  SummaryMetrics::Get().load_bytes->Increment(contents.size());

  if (std::string_view(contents).substr(0, kMagicV2.size()) == kMagicV2) {
    ParsedV2 parsed;
    TL_RETURN_IF_ERROR(ParseV2(contents, path, &parsed));
    LatticeSummary summary(parsed.max_level);
    std::optional<LabelDict> dict;
    for (ParsedSection& section : parsed.sections) {
      if (!section.info.intact) continue;
      if (section.info.tag == kTagDict) {
        dict = std::move(section.dict);
      } else if (section.info.tag == kTagLevel) {
        for (auto& [twig, count] : section.entries) {
          TL_RETURN_IF_ERROR(summary.Insert(twig, count));
        }
      }
    }
    summary.set_complete_through_level(
        parsed.intact ? parsed.complete : parsed.salvage_complete);
    if (!parsed.intact) SummaryMetrics::Get().salvage_loads->Increment();
    return LoadedSummary{std::move(summary), std::move(dict), 2,
                         !parsed.intact, parsed.first_detail};
  }

  if (std::string_view(contents).substr(0, kMagicV1.size()) == kMagicV1) {
    Result<LatticeSummary> summary =
        LatticeSummary::FromV1Text(contents, path);
    if (!summary.ok()) return summary.status();
    return LoadedSummary{std::move(*summary), std::nullopt, 1, false, ""};
  }
  return Status::Corruption("bad summary header in " + path);
}

Result<VerifyReport> VerifySummaryFile(Env* env, const std::string& path) {
  obs::TraceSpan span("summary.verify", "summary");
  std::string contents;
  TL_RETURN_IF_ERROR(ReadFileToString(env, path, &contents));

  VerifyReport report;
  if (std::string_view(contents).substr(0, kMagicV2.size()) == kMagicV2) {
    ParsedV2 parsed;
    TL_RETURN_IF_ERROR(ParseV2(contents, path, &parsed));
    report.format_version = 2;
    report.max_level = parsed.max_level;
    report.complete_through_level = parsed.complete;
    report.has_dict = parsed.has_dict;
    report.total_patterns = parsed.total_patterns;
    report.intact = parsed.intact;
    report.salvage_complete_through_level =
        parsed.intact ? parsed.complete : parsed.salvage_complete;
    report.detail = parsed.first_detail;
    for (ParsedSection& section : parsed.sections) {
      report.sections.push_back(std::move(section.info));
    }
    return report;
  }

  if (std::string_view(contents).substr(0, kMagicV1.size()) == kMagicV1) {
    report.format_version = 1;
    Result<LatticeSummary> summary =
        LatticeSummary::FromV1Text(contents, path);
    if (summary.ok()) {
      report.max_level = summary->max_level();
      report.complete_through_level = summary->complete_through_level();
      report.salvage_complete_through_level =
          summary->complete_through_level();
      report.total_patterns = summary->NumPatterns();
      report.intact = true;
    } else {
      report.detail = summary.status().message();
    }
    return report;
  }
  return Status::Corruption("bad summary header in " + path);
}

// Wrappers declared in lattice_summary.h: persistence for the summary goes
// through the v2 container on the default Env.
Status LatticeSummary::SaveToFile(const std::string& path) const {
  return SaveSummaryV2(*this, nullptr, Env::Default(), path);
}

Result<LatticeSummary> LatticeSummary::LoadFromFile(const std::string& path) {
  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->summary);
}

}  // namespace treelattice
