#include "summary/lattice_summary.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/hash.h"

namespace treelattice {

namespace {
// Per-entry bookkeeping overhead charged by MemoryBytes().
constexpr size_t kEntryOverhead = sizeof(uint64_t);
// Initial slot-table size (power of two) and load-factor bound: the table
// grows once live + tombstoned slots exceed 7/10 of capacity, keeping
// linear-probe chains short.
constexpr size_t kInitialSlots = 16;
constexpr size_t kNoFreeSlot = std::numeric_limits<size_t>::max();
}  // namespace

LatticeSummary::LatticeSummary(int max_level)
    : max_level_(max_level < 2 ? 2 : max_level),
      complete_through_level_(0),
      level_codes_(static_cast<size_t>(max_level_) + 1) {}

int LatticeSummary::LevelOfCode(const std::string& code) {
  // A node in the canonical code is one run of decimal digits.
  int nodes = 0;
  bool in_digits = false;
  for (char c : code) {
    bool digit = (c >= '0' && c <= '9');
    if (digit && !in_digits) ++nodes;
    in_digits = digit;
  }
  return nodes;
}

size_t LatticeSummary::ProbeSlot(uint64_t hash, std::string_view code) const {
  // Linear probe from the mixed hash. Mix64 spreads FNV-1a's weak low bits
  // before masking; the full 64-bit hash stored per slot rejects nearly all
  // mismatches without touching the entry's string.
  size_t idx = static_cast<size_t>(Mix64(hash)) & slot_mask_;
  size_t first_free = kNoFreeSlot;
  for (;;) {
    const Slot& slot = slots_[idx];
    if (slot.id == kSlotEmpty) {
      return first_free != kNoFreeSlot ? first_free : idx;
    }
    if (slot.id == kSlotTombstone) {
      if (first_free == kNoFreeSlot) first_free = idx;
    } else if (slot.hash == hash && entries_[slot.id].code == code) {
      return idx;
    }
    idx = (idx + 1) & slot_mask_;
  }
}

void LatticeSummary::Rehash(size_t new_slot_count) {
  slots_.assign(new_slot_count, Slot{});
  slot_mask_ = new_slot_count - 1;
  used_slots_ = 0;
  for (size_t id = 0; id < entries_.size(); ++id) {
    const Entry& entry = entries_[id];
    if (entry.erased) continue;
    size_t idx = static_cast<size_t>(Mix64(entry.hash)) & slot_mask_;
    while (slots_[idx].id != kSlotEmpty) idx = (idx + 1) & slot_mask_;
    slots_[idx] = Slot{entry.hash, static_cast<PatternId>(id)};
    ++used_slots_;
  }
}

Status LatticeSummary::Insert(const Twig& twig, uint64_t count) {
  if (twig.empty() || twig.size() > max_level_) {
    return Status::InvalidArgument("Insert: pattern size out of range");
  }
  if (count == 0) {
    return Status::InvalidArgument("Insert: zero-count patterns not stored");
  }
  const std::string& code = twig.CanonicalCode();
  const uint64_t hash = twig.CanonicalHash();
  if (slots_.empty()) Rehash(kInitialSlots);
  size_t idx = ProbeSlot(hash, code);
  if (slots_[idx].id < kSlotTombstone) {
    entries_[slots_[idx].id].count = count;  // overwrite existing
    return Status::OK();
  }
  const PatternId id = static_cast<PatternId>(entries_.size());
  Entry entry;
  entry.code = code;
  entry.hash = hash;
  entry.count = count;
  entry.level = twig.size();
  entries_.push_back(std::move(entry));
  const bool reused_tombstone = (slots_[idx].id == kSlotTombstone);
  slots_[idx] = Slot{hash, id};
  if (!reused_tombstone) ++used_slots_;
  ++num_live_;
  level_codes_[static_cast<size_t>(twig.size())].push_back(code);
  memory_bytes_ += code.size() + sizeof(uint64_t) + kEntryOverhead;
  if (used_slots_ * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  return Status::OK();
}

std::optional<uint64_t> LatticeSummary::LookupCode(
    std::string_view code) const {
  return LookupHashed(HashBytes(code), code);
}

std::optional<uint64_t> LatticeSummary::LookupHashed(
    uint64_t hash, std::string_view code) const {
  if (slots_.empty()) return std::nullopt;
  size_t idx = ProbeSlot(hash, code);
  if (slots_[idx].id >= kSlotTombstone) return std::nullopt;
  return entries_[slots_[idx].id].count;
}

void LatticeSummary::LookupBatch(const ProbeKey* keys, size_t n,
                                 uint32_t* order,
                                 ProbeResult* results) const {
  if (n == 0) return;
  if (slots_.empty()) {
    for (size_t i = 0; i < n; ++i) results[i] = ProbeResult{};
    return;
  }
  // Group probes by start slot so the pass walks the table roughly in
  // order instead of bouncing across it per query.
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order, order + n, [&](uint32_t a, uint32_t b) {
    return (static_cast<size_t>(Mix64(keys[a].hash)) & slot_mask_) <
           (static_cast<size_t>(Mix64(keys[b].hash)) & slot_mask_);
  });
  // Prefetch distance: far enough to cover a DRAM load, near enough that
  // the line is still resident when the probe arrives.
  constexpr size_t kPrefetchAhead = 8;
  for (size_t k = 0; k < n; ++k) {
    if (k + kPrefetchAhead < n) {
      const size_t ahead = static_cast<size_t>(
                               Mix64(keys[order[k + kPrefetchAhead]].hash)) &
                           slot_mask_;
      __builtin_prefetch(&slots_[ahead], /*rw=*/0, /*locality=*/1);
    }
    const ProbeKey& key = keys[order[k]];
    ProbeResult& out = results[order[k]];
    out = ProbeResult{};
    // Hash-lane-only probe loop: scan the linear-probe block comparing the
    // stored 64-bit hashes, deferring code verification until a lane
    // matches. Tombstones are skipped; an empty slot ends the chain.
    size_t idx = static_cast<size_t>(Mix64(key.hash)) & slot_mask_;
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.id == kSlotEmpty) break;
      if (slot.id != kSlotTombstone && slot.hash == key.hash &&
          entries_[slot.id].code == key.code) {
        out.count = entries_[slot.id].count;
        out.found = true;
        break;
      }
      idx = (idx + 1) & slot_mask_;
    }
  }
}

PatternId LatticeSummary::FindId(uint64_t hash, std::string_view code) const {
  if (slots_.empty()) return kInvalidPatternId;
  size_t idx = ProbeSlot(hash, code);
  if (slots_[idx].id >= kSlotTombstone) return kInvalidPatternId;
  return slots_[idx].id;
}

const std::vector<std::string>& LatticeSummary::PatternsAtLevel(
    int level) const {
  static const std::vector<std::string> kEmpty;
  if (level < 1 || level > max_level_) return kEmpty;
  return level_codes_[static_cast<size_t>(level)];
}

size_t LatticeSummary::NumPatterns(int level) const {
  if (level == 0) return num_live_;
  return PatternsAtLevel(level).size();
}

Status LatticeSummary::Erase(const std::string& code) {
  if (slots_.empty()) return Status::NotFound("pattern not in summary");
  size_t idx = ProbeSlot(HashBytes(code), code);
  if (slots_[idx].id >= kSlotTombstone) {
    return Status::NotFound("pattern not in summary");
  }
  Entry& entry = entries_[slots_[idx].id];
  const int level = entry.level;
  if (level < 3) {
    return Status::InvalidArgument(
        "Erase: level 1-2 patterns anchor estimation and cannot be pruned");
  }
  entry.erased = true;
  slots_[idx].id = kSlotTombstone;
  --num_live_;
  auto& codes = level_codes_[static_cast<size_t>(level)];
  codes.erase(std::remove(codes.begin(), codes.end(), code), codes.end());
  memory_bytes_ -= code.size() + sizeof(uint64_t) + kEntryOverhead;
  if (complete_through_level_ >= level) complete_through_level_ = level - 1;
  return Status::OK();
}

Status LatticeSummary::SaveToFileV1(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "TLSUMMARY v1\n"
      << max_level_ << ' ' << complete_through_level_ << '\n'
      << num_live_ << '\n';
  for (int level = 1; level <= max_level_; ++level) {
    for (const std::string& code : level_codes_[static_cast<size_t>(level)]) {
      out << *LookupCode(code) << ' ' << code << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

// SaveToFile and LoadFromFile live in summary_format.cc (they are thin
// wrappers over the v2 container writer/loader).

Result<LatticeSummary> LatticeSummary::FromV1Text(std::string_view contents,
                                                  const std::string& origin) {
  std::istringstream in{std::string(contents)};
  std::string magic;
  std::getline(in, magic);
  if (magic != "TLSUMMARY v1") {
    return Status::Corruption("bad summary header in " + origin);
  }
  int max_level = 0;
  int complete = 0;
  uint64_t n = 0;
  in >> max_level >> complete >> n;
  if (!in || max_level < 2 || max_level > kMaxLevelCap) {
    return Status::Corruption("bad summary metadata in " + origin);
  }
  if (complete < 0 || complete > max_level) {
    return Status::Corruption("completeness level out of range in " + origin);
  }
  // Every entry needs at least four bytes ("1 0\n"), so a count beyond the
  // buffer size is a corrupt header, not a huge summary — reject before
  // looping.
  if (n > contents.size()) {
    return Status::Corruption("pattern count exceeds file size in " + origin);
  }
  LatticeSummary summary(max_level);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t count = 0;
    std::string code;
    in >> count >> code;
    if (!in) return Status::Corruption("truncated summary in " + origin);
    Result<Twig> twig = Twig::FromCanonicalCode(code);
    if (!twig.ok()) {
      return Status::Corruption("bad canonical code in " + origin + ": " +
                                twig.status().message());
    }
    Status inserted = summary.Insert(*twig, count);
    if (!inserted.ok()) {
      return Status::Corruption("bad pattern entry in " + origin + ": " +
                                inserted.message());
    }
  }
  std::string rest;
  if (in >> rest) {
    return Status::Corruption("trailing garbage after " + std::to_string(n) +
                              " declared patterns in " + origin);
  }
  summary.set_complete_through_level(complete);
  return summary;
}

}  // namespace treelattice
