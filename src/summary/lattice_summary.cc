#include "summary/lattice_summary.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace treelattice {

namespace {
// Per-entry bookkeeping overhead charged by MemoryBytes().
constexpr size_t kEntryOverhead = sizeof(uint64_t);
}  // namespace

LatticeSummary::LatticeSummary(int max_level)
    : max_level_(max_level < 2 ? 2 : max_level),
      complete_through_level_(0),
      level_codes_(static_cast<size_t>(max_level_) + 1) {}

int LatticeSummary::LevelOfCode(const std::string& code) {
  // A node in the canonical code is one run of decimal digits.
  int nodes = 0;
  bool in_digits = false;
  for (char c : code) {
    bool digit = (c >= '0' && c <= '9');
    if (digit && !in_digits) ++nodes;
    in_digits = digit;
  }
  return nodes;
}

Status LatticeSummary::Insert(const Twig& twig, uint64_t count) {
  if (twig.empty() || twig.size() > max_level_) {
    return Status::InvalidArgument("Insert: pattern size out of range");
  }
  if (count == 0) {
    return Status::InvalidArgument("Insert: zero-count patterns not stored");
  }
  std::string code = twig.CanonicalCode();
  auto [it, inserted] = counts_.emplace(code, count);
  if (inserted) {
    level_codes_[static_cast<size_t>(twig.size())].push_back(code);
    memory_bytes_ += code.size() + sizeof(uint64_t) + kEntryOverhead;
  } else {
    it->second = count;
  }
  return Status::OK();
}

std::optional<uint64_t> LatticeSummary::LookupCode(
    const std::string& code) const {
  auto it = counts_.find(code);
  if (it == counts_.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::string>& LatticeSummary::PatternsAtLevel(
    int level) const {
  static const std::vector<std::string> kEmpty;
  if (level < 1 || level > max_level_) return kEmpty;
  return level_codes_[static_cast<size_t>(level)];
}

size_t LatticeSummary::NumPatterns(int level) const {
  if (level == 0) return counts_.size();
  return PatternsAtLevel(level).size();
}

Status LatticeSummary::Erase(const std::string& code) {
  auto it = counts_.find(code);
  if (it == counts_.end()) return Status::NotFound("pattern not in summary");
  int level = LevelOfCode(code);
  if (level < 3) {
    return Status::InvalidArgument(
        "Erase: level 1-2 patterns anchor estimation and cannot be pruned");
  }
  counts_.erase(it);
  auto& codes = level_codes_[static_cast<size_t>(level)];
  codes.erase(std::remove(codes.begin(), codes.end(), code), codes.end());
  memory_bytes_ -= code.size() + sizeof(uint64_t) + kEntryOverhead;
  if (complete_through_level_ >= level) complete_through_level_ = level - 1;
  return Status::OK();
}

Status LatticeSummary::SaveToFileV1(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "TLSUMMARY v1\n"
      << max_level_ << ' ' << complete_through_level_ << '\n'
      << counts_.size() << '\n';
  for (int level = 1; level <= max_level_; ++level) {
    for (const std::string& code : level_codes_[static_cast<size_t>(level)]) {
      out << counts_.at(code) << ' ' << code << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

// SaveToFile and LoadFromFile live in summary_format.cc (they are thin
// wrappers over the v2 container writer/loader).

Result<LatticeSummary> LatticeSummary::FromV1Text(std::string_view contents,
                                                  const std::string& origin) {
  std::istringstream in{std::string(contents)};
  std::string magic;
  std::getline(in, magic);
  if (magic != "TLSUMMARY v1") {
    return Status::Corruption("bad summary header in " + origin);
  }
  int max_level = 0;
  int complete = 0;
  uint64_t n = 0;
  in >> max_level >> complete >> n;
  if (!in || max_level < 2 || max_level > kMaxLevelCap) {
    return Status::Corruption("bad summary metadata in " + origin);
  }
  if (complete < 0 || complete > max_level) {
    return Status::Corruption("completeness level out of range in " + origin);
  }
  // Every entry needs at least four bytes ("1 0\n"), so a count beyond the
  // buffer size is a corrupt header, not a huge summary — reject before
  // looping.
  if (n > contents.size()) {
    return Status::Corruption("pattern count exceeds file size in " + origin);
  }
  LatticeSummary summary(max_level);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t count = 0;
    std::string code;
    in >> count >> code;
    if (!in) return Status::Corruption("truncated summary in " + origin);
    Result<Twig> twig = Twig::FromCanonicalCode(code);
    if (!twig.ok()) {
      return Status::Corruption("bad canonical code in " + origin + ": " +
                                twig.status().message());
    }
    Status inserted = summary.Insert(*twig, count);
    if (!inserted.ok()) {
      return Status::Corruption("bad pattern entry in " + origin + ": " +
                                inserted.message());
    }
  }
  std::string rest;
  if (in >> rest) {
    return Status::Corruption("trailing garbage after " + std::to_string(n) +
                              " declared patterns in " + origin);
  }
  summary.set_complete_through_level(complete);
  return summary;
}

}  // namespace treelattice
