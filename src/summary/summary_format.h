#ifndef TREELATTICE_SUMMARY_SUMMARY_FORMAT_H_
#define TREELATTICE_SUMMARY_SUMMARY_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/env.h"
#include "summary/lattice_summary.h"
#include "util/result.h"
#include "xml/label_dict.h"

namespace treelattice {

/// The "TLSUMMARY v2" single-file container (little-endian throughout):
///
///   magic   8 bytes  "TLSUM2\r\n"
///   header  u32 max_level, u32 complete_through_level,
///           u32 flags (bit0 = embedded dict), u32 reserved,
///           u64 total_patterns
///   crc     u32 crc32c(magic || header)
///   sections, each:  u8 tag, u64 payload_size, payload,
///                    u32 crc32c(tag || payload_size || payload)
///     'D' dict   payload: u32 count, { u32 len, name bytes }*
///     'L' level  payload: u32 level, u64 n, { u64 count, u32 len, code }*
///                one section per level 1..max_level, in order
///     'E' end    empty payload; marks a complete file
///
/// The container is written atomically (temp file + fsync + rename), so a
/// reader observes either the previous summary or the complete new one —
/// never a torn file. On load, each section is independently checksummed:
/// a truncated or bit-flipped file salvages level by level, keeping the
/// intact sections and lowering complete_through_level to the last level
/// before the first corrupt one, so estimators keep answering from the
/// surviving prefix instead of failing hard.

/// Writes `summary` (and, when non-null, `dict`) to `path` as a v2
/// container. Embedding the dictionary removes the summary/.dict sidecar
/// pairing hazard of the v1 format.
Status SaveSummaryV2(const LatticeSummary& summary, const LabelDict* dict,
                     Env* env, const std::string& path);

/// A loaded summary plus everything the caller needs to know about how it
/// was loaded.
struct LoadedSummary {
  LatticeSummary summary;
  /// The embedded dictionary; absent for v1 files (use the .dict sidecar)
  /// and for v2 files whose dict section did not survive.
  std::optional<LabelDict> dict;
  int format_version = 0;  // 1 or 2
  /// True when parts of a v2 file were lost to corruption and the summary
  /// holds only the intact sections (complete_through_level lowered
  /// accordingly). `corruption_detail` says what was lost.
  bool salvaged = false;
  std::string corruption_detail;
};

/// Loads `path` in either format (sniffed by magic). Returns Corruption
/// only when nothing is salvageable (bad magic, unusable v2 header, or a
/// corrupt v1 file — v1 has no checksums to salvage by); a damaged v2 file
/// otherwise loads with `salvaged` set.
Result<LoadedSummary> LoadSummary(Env* env, const std::string& path);

/// Integrity of one v2 section, as reported by VerifySummaryFile.
struct SectionIntegrity {
  char tag = 0;       // 'D', 'L', or 'E'
  int level = 0;      // for 'L' sections
  uint64_t patterns = 0;
  bool intact = false;
  std::string detail;  // empty when intact
};

struct VerifyReport {
  int format_version = 0;
  int max_level = 0;
  int complete_through_level = 0;
  bool has_dict = false;
  uint64_t total_patterns = 0;
  /// All checksums verify and the file is structurally complete.
  bool intact = false;
  /// complete_through_level a salvage load of this file would report.
  int salvage_complete_through_level = 0;
  std::vector<SectionIntegrity> sections;  // v2 only
  std::string detail;  // first corruption, empty when intact
};

/// Checks `path` without building a summary: verifies the header and every
/// section checksum and reports per-level integrity. Returns a non-OK
/// status only when the file cannot be opened or is not a summary at all.
Result<VerifyReport> VerifySummaryFile(Env* env, const std::string& path);

}  // namespace treelattice

#endif  // TREELATTICE_SUMMARY_SUMMARY_FORMAT_H_
