#ifndef TREELATTICE_SUMMARY_LATTICE_SUMMARY_H_
#define TREELATTICE_SUMMARY_LATTICE_SUMMARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "twig/twig.h"
#include "util/analysis_annotations.h"
#include "util/result.h"

namespace treelattice {

/// Dense id a canonical pattern code is interned to on Insert. Stable for
/// the lifetime of the summary (Erase retires an id, never reassigns it).
using PatternId = uint32_t;

constexpr PatternId kInvalidPatternId = static_cast<PatternId>(-1);

/// The lattice summary: occurrence counts of all basic twigs ("patterns")
/// of size <= max_level, keyed by canonical twig code (Section 4).
///
/// Storage is split for the estimation hot path (RDF-3X style: intern the
/// pattern key once, probe integers forever after): codes are interned into
/// dense PatternIds whose entries live in an append-only array, and lookups
/// go through an open-addressing table of (code hash, id) slots probed
/// linearly — no node-based map, no per-probe allocation, and callers that
/// already know the 64-bit code hash (a Twig with a warm cache) never
/// re-hash the string. The string table is kept for persistence and
/// level-ordered iteration only; the v1/v2 on-disk formats are unchanged.
///
/// `complete_through_level` records up to which level the summary is
/// guaranteed to contain *every* occurring pattern: a fresh K-lattice is
/// complete through K, so a missed lookup at size <= K means selectivity 0;
/// after δ-derivable pruning only levels 1-2 stay complete, and a missed
/// lookup must fall through to decomposition (Lemma 5 guarantees this is
/// lossless at δ = 0).
class LatticeSummary {
 public:
  /// Creates an empty summary for patterns of size up to `max_level` >= 2.
  explicit LatticeSummary(int max_level);

  int max_level() const { return max_level_; }

  int complete_through_level() const { return complete_through_level_; }
  void set_complete_through_level(int level) {
    complete_through_level_ = level;
  }

  /// Inserts (or overwrites) a pattern with its occurrence count. `twig`
  /// must have size in [1, max_level] and count > 0.
  Status Insert(const Twig& twig, uint64_t count);

  /// Looks up an exact pattern; nullopt when absent. Allocation-free: uses
  /// the twig's cached canonical code and hash.
  TL_HOT std::optional<uint64_t> Lookup(const Twig& twig) const {
    return LookupHashed(twig.CanonicalHash(), twig.CanonicalCode());
  }

  /// Looks up by canonical code, hashing it first.
  std::optional<uint64_t> LookupCode(std::string_view code) const;

  /// Looks up by canonical code whose 64-bit HashBytes value the caller
  /// already has — the hot-path entry point (one probe chain, no hashing,
  /// no allocation). `hash` must equal HashBytes(code).
  TL_HOT std::optional<uint64_t> LookupHashed(
      uint64_t hash, std::string_view code) const;

  /// Interned id for a pattern code, or kInvalidPatternId when absent.
  TL_HOT PatternId FindId(uint64_t hash, std::string_view code) const;

  /// One probe of a grouped batch lookup (see LookupBatch).
  struct ProbeKey {
    uint64_t hash = 0;        ///< HashBytes(code)
    std::string_view code;    ///< canonical code backing the hash
  };
  struct ProbeResult {
    uint64_t count = 0;
    bool found = false;
  };

  /// Grouped flat-hash probe: answers `n` lookups in one pass. Probes are
  /// visited in ascending start-slot order (via the caller-provided `order`
  /// scratch of `n` uint32 indices) so consecutive probes touch nearby
  /// cache lines, and each probe prefetches the start slot of the probe a
  /// fixed distance ahead. The probe loop compares the 64-bit hash lane
  /// stored in the slots before ever touching an entry's code string.
  /// Results land at results[i] for keys[i]. Allocation-free.
  TL_HOT void LookupBatch(const ProbeKey* keys, size_t n, uint32_t* order,
                          ProbeResult* results) const;

  /// Count for a live interned id (id must come from FindId).
  TL_HOT uint64_t CountOf(PatternId id) const { return entries_[id].count; }

  bool Contains(const Twig& twig) const { return Lookup(twig).has_value(); }

  /// Canonical codes stored at `level` (1-based), in insertion order.
  const std::vector<std::string>& PatternsAtLevel(int level) const;

  /// Number of patterns at `level`, or total with level == 0.
  size_t NumPatterns(int level = 0) const;

  /// Estimated storage footprint: per pattern, the canonical code bytes plus
  /// the 8-byte count plus 8 bytes of table overhead. This is the figure
  /// reported as "summary size" in the experiments (Table 3, Fig. 10).
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Removes a pattern at levels >= 3 (levels 1-2 anchor every estimate and
  /// are never prunable). Returns NotFound if absent.
  Status Erase(const std::string& code);

  /// Serializes to the checksummed binary container ("TLSUMMARY v2", see
  /// summary_format.h), written atomically (temp file + fsync + rename) so
  /// a crash mid-save can never leave a torn file at `path`. No label
  /// dictionary is embedded; use SaveSummaryV2 to embed one.
  Status SaveToFile(const std::string& path) const;

  /// Serializes to the legacy "TLSUMMARY v1" text format (no checksums, no
  /// atomicity). Kept for cross-version tests and downgrade paths.
  Status SaveToFileV1(const std::string& path) const;

  /// Loads either format (v1 text or v2 container, sniffed by magic). A
  /// section-corrupt v2 file is salvaged — see LoadSummary in
  /// summary_format.h for the variant that reports salvage details and the
  /// embedded dictionary.
  static Result<LatticeSummary> LoadFromFile(const std::string& path);

  /// Parses the v1 text format from an in-memory buffer. Hardened against
  /// corrupt input: header values are range-checked, the pattern count is
  /// capped by the buffer size, and trailing garbage is rejected. `origin`
  /// is used in error messages only.
  static Result<LatticeSummary> FromV1Text(std::string_view contents,
                                           const std::string& origin);

  /// Largest max_level any parser accepts; a corrupt header cannot trigger
  /// an unbounded allocation or load loop.
  static constexpr int kMaxLevelCap = 4096;

 private:
  /// Interned pattern: the code string is authoritative for persistence;
  /// the hash is precomputed so rehashing the table never touches strings.
  struct Entry {
    std::string code;
    uint64_t hash = 0;
    uint64_t count = 0;
    int32_t level = 0;
    bool erased = false;
  };

  /// Open-addressing slot: full 64-bit hash for cheap mismatch rejection,
  /// plus the entry id (or one of the sentinels below).
  struct Slot {
    uint64_t hash = 0;
    PatternId id = kSlotEmpty;
  };

  static constexpr PatternId kSlotEmpty = static_cast<PatternId>(-1);
  static constexpr PatternId kSlotTombstone = static_cast<PatternId>(-2);

  static int LevelOfCode(const std::string& code);

  /// Index of the slot holding (hash, code), or of the first insertable
  /// slot (empty or tombstone) when absent. Table must be non-empty.
  size_t ProbeSlot(uint64_t hash, std::string_view code) const;

  /// Grows/rebuilds the slot table to `new_slot_count` (a power of two),
  /// dropping tombstones.
  void Rehash(size_t new_slot_count);

  int max_level_;
  int complete_through_level_;
  std::vector<Entry> entries_;          // append-only; ids index this
  std::vector<Slot> slots_;             // open-addressing index over entries_
  size_t slot_mask_ = 0;                // slots_.size() - 1 (power of two)
  size_t used_slots_ = 0;               // live + tombstoned slots
  size_t num_live_ = 0;                 // entries not erased
  std::vector<std::vector<std::string>> level_codes_;  // [level] -> codes
  size_t memory_bytes_ = 0;
};

}  // namespace treelattice

#endif  // TREELATTICE_SUMMARY_LATTICE_SUMMARY_H_
