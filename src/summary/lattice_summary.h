#ifndef TREELATTICE_SUMMARY_LATTICE_SUMMARY_H_
#define TREELATTICE_SUMMARY_LATTICE_SUMMARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "twig/twig.h"
#include "util/result.h"

namespace treelattice {

/// The lattice summary: occurrence counts of all basic twigs ("patterns")
/// of size <= max_level, keyed by canonical twig code (Section 4).
///
/// `complete_through_level` records up to which level the summary is
/// guaranteed to contain *every* occurring pattern: a fresh K-lattice is
/// complete through K, so a missed lookup at size <= K means selectivity 0;
/// after δ-derivable pruning only levels 1-2 stay complete, and a missed
/// lookup must fall through to decomposition (Lemma 5 guarantees this is
/// lossless at δ = 0).
class LatticeSummary {
 public:
  /// Creates an empty summary for patterns of size up to `max_level` >= 2.
  explicit LatticeSummary(int max_level);

  int max_level() const { return max_level_; }

  int complete_through_level() const { return complete_through_level_; }
  void set_complete_through_level(int level) {
    complete_through_level_ = level;
  }

  /// Inserts (or overwrites) a pattern with its occurrence count. `twig`
  /// must have size in [1, max_level] and count > 0.
  Status Insert(const Twig& twig, uint64_t count);

  /// Looks up an exact pattern; nullopt when absent.
  std::optional<uint64_t> Lookup(const Twig& twig) const {
    return LookupCode(twig.CanonicalCode());
  }
  std::optional<uint64_t> LookupCode(const std::string& code) const;

  bool Contains(const Twig& twig) const { return Lookup(twig).has_value(); }

  /// Canonical codes stored at `level` (1-based), in insertion order.
  const std::vector<std::string>& PatternsAtLevel(int level) const;

  /// Number of patterns at `level`, or total with level == 0.
  size_t NumPatterns(int level = 0) const;

  /// Estimated storage footprint: per pattern, the canonical code bytes plus
  /// the 8-byte count plus 8 bytes of table overhead. This is the figure
  /// reported as "summary size" in the experiments (Table 3, Fig. 10).
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Removes a pattern at levels >= 3 (levels 1-2 anchor every estimate and
  /// are never prunable). Returns NotFound if absent.
  Status Erase(const std::string& code);

  /// Serializes to the checksummed binary container ("TLSUMMARY v2", see
  /// summary_format.h), written atomically (temp file + fsync + rename) so
  /// a crash mid-save can never leave a torn file at `path`. No label
  /// dictionary is embedded; use SaveSummaryV2 to embed one.
  Status SaveToFile(const std::string& path) const;

  /// Serializes to the legacy "TLSUMMARY v1" text format (no checksums, no
  /// atomicity). Kept for cross-version tests and downgrade paths.
  Status SaveToFileV1(const std::string& path) const;

  /// Loads either format (v1 text or v2 container, sniffed by magic). A
  /// section-corrupt v2 file is salvaged — see LoadSummary in
  /// summary_format.h for the variant that reports salvage details and the
  /// embedded dictionary.
  static Result<LatticeSummary> LoadFromFile(const std::string& path);

  /// Parses the v1 text format from an in-memory buffer. Hardened against
  /// corrupt input: header values are range-checked, the pattern count is
  /// capped by the buffer size, and trailing garbage is rejected. `origin`
  /// is used in error messages only.
  static Result<LatticeSummary> FromV1Text(std::string_view contents,
                                           const std::string& origin);

  /// Largest max_level any parser accepts; a corrupt header cannot trigger
  /// an unbounded allocation or load loop.
  static constexpr int kMaxLevelCap = 4096;

 private:
  static int LevelOfCode(const std::string& code);

  int max_level_;
  int complete_through_level_;
  std::unordered_map<std::string, uint64_t> counts_;
  std::vector<std::vector<std::string>> level_codes_;  // [level] -> codes
  size_t memory_bytes_ = 0;
};

}  // namespace treelattice

#endif  // TREELATTICE_SUMMARY_LATTICE_SUMMARY_H_
