#include <algorithm>

#include "datagen/datasets.h"
#include "util/rng.h"

namespace treelattice {

Document GenerateImdb(const DatasetOptions& options) {
  Document doc;
  Rng rng(options.seed + 2);

  NodeId imdb = doc.AddNode("imdb", kInvalidNode);
  for (int i = 0; i < options.scale; ++i) {
    NodeId movie = doc.AddNode("movie", imdb);
    doc.AddNode("title", movie);
    doc.AddNode("year", movie);

    // Latent production type drives *several* branches jointly. Branch
    // presence is a per-type Bernoulli mixture: strongly separated but
    // noisy, so the joint distribution of 3+ branches is NOT the product
    // of pairwise joints — the conditional-independence violation the
    // paper blames for TreeLattice's weaker IMDB accuracy. Child counts
    // within a type are kept low-variance so the TreeSketches clustering
    // captures the types well (its winning case).
    //   0 = obscure (most common), 1 = indie, 2 = blockbuster.
    const uint64_t type = rng.Zipf(3, 0.7);
    const bool blockbuster = (type == 2);
    const bool indie = (type == 1);

    NodeId genres = doc.AddNode("genres", movie);
    int n_genres = blockbuster ? 3 : 1;
    for (int j = 0; j < n_genres; ++j) doc.AddNode("genre", genres);

    NodeId cast = doc.AddNode("cast", movie);
    // Counts are deterministic per type: the count-stable partition stays
    // compact (a few hundred clusters), so even a small TreeSketches
    // budget separates the movie types — its winning case on IMDB.
    int n_actors = blockbuster ? 10 : indie ? 4 : 1;
    for (int j = 0; j < n_actors; ++j) {
      NodeId actor = doc.AddNode("actor", cast);
      doc.AddNode("name", actor);
      if (blockbuster) doc.AddNode("role", actor);
      // Type-neutral noise: diversifies cast signatures (so the synopsis
      // construction has real clustering work to do, as with the real
      // IMDB) without correlating with the movie type.
      if (rng.Bernoulli(0.3)) doc.AddNode("birthname", actor);
      if (rng.Bernoulli(0.2)) doc.AddNode("bio", actor);
    }

    NodeId directors = doc.AddNode("directors", movie);
    int n_directors = blockbuster ? 2 : 1;
    for (int j = 0; j < n_directors; ++j) {
      NodeId director = doc.AddNode("director", directors);
      doc.AddNode("name", director);
    }

    // Correlated optional branches (probabilities per type
    // blockbuster/indie/obscure):
    double p_ratings = blockbuster ? 0.95 : indie ? 0.75 : 0.15;
    double p_business = blockbuster ? 0.85 : indie ? 0.30 : 0.05;
    double p_awards = blockbuster ? 0.70 : indie ? 0.20 : 0.02;
    double p_trivia = blockbuster ? 0.60 : indie ? 0.25 : 0.05;
    double p_keywords = blockbuster ? 0.80 : indie ? 0.50 : 0.10;

    if (rng.Bernoulli(p_ratings)) {
      NodeId ratings = doc.AddNode("ratings", movie);
      doc.AddNode("rating", ratings);
      doc.AddNode("votes", ratings);
    }
    if (rng.Bernoulli(p_business)) {
      NodeId business = doc.AddNode("business", movie);
      doc.AddNode("budget", business);
      doc.AddNode("gross", business);
      if (blockbuster) doc.AddNode("opening", business);
    }
    if (rng.Bernoulli(p_awards)) {
      NodeId awards = doc.AddNode("awards", movie);
      for (int j = 0; j < 2; ++j) {
        NodeId award = doc.AddNode("award", awards);
        doc.AddNode("category", award);
        doc.AddNode("result", award);
      }
    }
    if (rng.Bernoulli(p_trivia)) {
      NodeId trivia = doc.AddNode("trivia", movie);
      for (int j = 0; j < 2; ++j) doc.AddNode("item", trivia);
    }
    if (rng.Bernoulli(p_keywords)) {
      NodeId keywords = doc.AddNode("keywords", movie);
      for (int j = 0; j < 3; ++j) doc.AddNode("keyword", keywords);
    }
    if (indie && rng.Bernoulli(0.5)) {
      NodeId festivals = doc.AddNode("festivals", movie);
      for (int j = 0; j < 2; ++j) doc.AddNode("festival", festivals);
    }
  }
  return doc;
}

}  // namespace treelattice
