#include <algorithm>

#include "datagen/datasets.h"
#include "util/rng.h"

namespace treelattice {

Document GeneratePsd(const DatasetOptions& options) {
  Document doc;
  Rng rng(options.seed + 3);

  NodeId database = doc.AddNode("ProteinDatabase", kInvalidNode);
  for (int i = 0; i < options.scale; ++i) {
    NodeId entry = doc.AddNode("ProteinEntry", database);

    // Branches are chosen near-independently (conditional independence
    // approximately holds, which is what makes most PSD patterns
    // derivable), with one *mild* curation mixture: well-annotated entries
    // tend to carry classification, summary, keywords and features
    // together. Mild enough that TreeLattice stays accurate, strong enough
    // that a merged-average synopsis drifts.
    const bool annotated = rng.Bernoulli(0.35);

    NodeId header = doc.AddNode("header", entry);
    doc.AddNode("uid", header);
    int accessions = 1 + static_cast<int>(rng.Uniform(3));
    for (int j = 0; j < accessions; ++j) doc.AddNode("accession", header);

    NodeId protein = doc.AddNode("protein", entry);
    doc.AddNode("name", protein);
    if (rng.Bernoulli(annotated ? 0.6 : 0.2)) {
      doc.AddNode("classification", protein);
    }

    NodeId organism = doc.AddNode("organism", entry);
    doc.AddNode("source", organism);
    if (rng.Bernoulli(0.5)) doc.AddNode("common", organism);
    if (rng.Bernoulli(0.4)) doc.AddNode("formal", organism);

    // Heavy-ish reference tail: diversifies entry signatures so the
    // TreeSketches budget bites, without introducing correlation.
    int references = 1 + static_cast<int>(rng.Uniform(3)) +
                     (rng.Bernoulli(0.15)
                          ? static_cast<int>(rng.Uniform(4))
                          : 0);
    for (int j = 0; j < references; ++j) {
      NodeId reference = doc.AddNode("reference", entry);
      NodeId refinfo = doc.AddNode("refinfo", reference);
      NodeId authors = doc.AddNode("authors", refinfo);
      int n_authors = 1 + static_cast<int>(rng.Uniform(4));
      for (int k = 0; k < n_authors; ++k) doc.AddNode("author", authors);
      doc.AddNode("citation", refinfo);
      doc.AddNode("year", refinfo);
      if (rng.Bernoulli(0.5)) {
        NodeId accinfo = doc.AddNode("accinfo", reference);
        doc.AddNode("mol-type", accinfo);
        if (rng.Bernoulli(0.5)) doc.AddNode("seq-spec", accinfo);
      }
    }

    if (rng.Bernoulli(annotated ? 0.85 : 0.45)) {
      NodeId summary = doc.AddNode("summary", entry);
      doc.AddNode("length", summary);
      doc.AddNode("type", summary);
    }
    if (rng.Bernoulli(0.7)) doc.AddNode("sequence", entry);
    if (rng.Bernoulli(annotated ? 0.8 : 0.35)) {
      NodeId keywords = doc.AddNode("keywords", entry);
      int n = 1 + static_cast<int>(rng.Uniform(4));
      for (int j = 0; j < n; ++j) doc.AddNode("keyword", keywords);
    }
    if (rng.Bernoulli(annotated ? 0.7 : 0.25)) {
      int features = 1 + static_cast<int>(rng.Uniform(3));
      for (int j = 0; j < features; ++j) {
        NodeId feature = doc.AddNode("feature", entry);
        doc.AddNode("feature-type", feature);
        doc.AddNode("description", feature);
      }
    }
  }
  return doc;
}

}  // namespace treelattice
