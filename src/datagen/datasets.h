#ifndef TREELATTICE_DATAGEN_DATASETS_H_
#define TREELATTICE_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "xml/document.h"

namespace treelattice {

/// Common knobs for the four paper-dataset emulators. `scale` is the number
/// of top-level records (items+people+auctions for XMark, datasets for
/// NASA, movies for IMDB, protein entries for PSD); node counts grow
/// roughly linearly with it. All generators are deterministic given the
/// options.
struct DatasetOptions {
  uint64_t seed = 42;
  int scale = 1000;
};

/// XMark-like synthetic auction-site document (site/regions/people/
/// open_auctions/closed_auctions/categories). Plants *high variance* in
/// per-node child counts (bidders per auction, mails per mailbox, items per
/// region) — the trait that makes multiplicative synopsis estimates explode
/// on XMark in the paper (Fig. 7d, Fig. 11).
Document GenerateXmark(const DatasetOptions& options);

/// NASA-like astronomy dataset emulator (datasets/dataset/reference/
/// history/author...). Deep-ish paths, moderate alphabet, mild
/// correlations; conditional independence holds well (strong δ-pruning).
Document GenerateNasa(const DatasetOptions& options);

/// IMDB-like movie database emulator. A latent per-movie "production type"
/// jointly drives several branches (cast size, ratings, business, awards),
/// planting *cross-branch correlations* that violate the conditional
/// independence assumption — the trait the paper blames for TreeLattice's
/// weaker accuracy on IMDB.
Document GenerateImdb(const DatasetOptions& options);

/// PSD-like protein sequence database emulator. Wide, shallow entries whose
/// optional branches are chosen independently; conditional independence
/// holds almost perfectly (the paper's striking PSD pruning savings).
Document GeneratePsd(const DatasetOptions& options);

/// Name-based registry: "xmark", "nasa", "imdb", "psd".
Result<Document> GenerateDataset(std::string_view name,
                                 const DatasetOptions& options);

/// Names accepted by GenerateDataset, in the paper's reporting order.
std::vector<std::string> DatasetNames();

/// Default per-dataset scales giving document sizes whose ratios mirror
/// Table 1 (Nasa largest, PSD smallest) while keeping experiment runtimes
/// laptop-friendly.
int DefaultScale(std::string_view name);

}  // namespace treelattice

#endif  // TREELATTICE_DATAGEN_DATASETS_H_
