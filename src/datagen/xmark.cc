#include <algorithm>
#include <vector>

#include "datagen/datasets.h"
#include "util/rng.h"

namespace treelattice {

namespace {

/// Geometric-ish heavy-tailed count in [lo, hi]: most draws are small but a
/// fat tail reaches hi, producing the high child-count variance XMark is
/// known for (and forcing the TreeSketches clustering to merge very
/// differently-shaped nodes under a byte budget).
int HeavyTail(Rng& rng, int lo, int hi) {
  int value = lo;
  while (value < hi && rng.Bernoulli(0.55)) ++value;
  if (rng.Bernoulli(0.05)) {
    value = lo + static_cast<int>(rng.Uniform(
                     static_cast<uint64_t>(hi - lo + 1)));
    value = std::max(value, (lo + hi) / 2);
  }
  return value;
}

}  // namespace

Document GenerateXmark(const DatasetOptions& options) {
  Document doc;
  Rng rng(options.seed);

  const int n_items = options.scale / 2;
  const int n_people = options.scale / 4;
  const int n_open = options.scale / 8;
  const int n_closed = options.scale / 8;
  const int n_categories = std::max(4, options.scale / 40);

  NodeId site = doc.AddNode("site", kInvalidNode);

  // --- regions/items. -----------------------------------------------------
  // Items are *bimodal* with negative correlations inside small windows:
  //   commercial: parlist description, several incategory refs, idle
  //               mailbox;
  //   personal:   text description, single incategory, busy mailbox.
  // A twig like item(description(parlist), mailbox(mail)) is therefore
  // rare; an avg-weight synopsis that merged the two populations grossly
  // overestimates it, while the 4-lattice stores the joint exactly.
  NodeId regions = doc.AddNode("regions", site);
  static constexpr const char* kRegions[] = {"africa",    "asia",
                                             "australia", "europe",
                                             "namerica",  "samerica"};
  std::vector<NodeId> region_nodes;
  for (const char* r : kRegions) region_nodes.push_back(doc.AddNode(r, regions));
  for (int i = 0; i < n_items; ++i) {
    NodeId region = region_nodes[rng.Zipf(region_nodes.size(), 1.0)];
    NodeId item = doc.AddNode("item", region);
    const bool commercial = rng.Bernoulli(0.45);
    doc.AddNode("location", item);
    if (rng.Bernoulli(0.7)) doc.AddNode("quantity", item);
    doc.AddNode("name", item);
    if (commercial || rng.Bernoulli(0.03)) doc.AddNode("payment", item);
    NodeId description = doc.AddNode("description", item);
    if (commercial ? rng.Bernoulli(0.97) : rng.Bernoulli(0.02)) {
      NodeId parlist = doc.AddNode("parlist", description);
      int listitems = HeavyTail(rng, 1, 8);
      for (int j = 0; j < listitems; ++j) doc.AddNode("listitem", parlist);
    } else {
      doc.AddNode("text", description);
    }
    if (commercial) doc.AddNode("shipping", item);
    int categories = commercial ? HeavyTail(rng, 2, 6) : 1;
    for (int j = 0; j < categories; ++j) doc.AddNode("incategory", item);
    NodeId mailbox = doc.AddNode("mailbox", item);
    int mails = commercial ? (rng.Bernoulli(0.97) ? 0 : 1)
                           : HeavyTail(rng, 1, 20);
    for (int j = 0; j < mails; ++j) {
      // Two mail kinds with correlated field sets: personal mail carries
      // date+text together, notifications carry neither. A label-granular
      // synopsis multiplies the marginals and overestimates their joint.
      NodeId mail = doc.AddNode("mail", mailbox);
      const bool personal = rng.Bernoulli(0.5);
      doc.AddNode("from", mail);
      doc.AddNode("to", mail);
      if (personal ? rng.Bernoulli(0.95) : rng.Bernoulli(0.1)) {
        doc.AddNode("date", mail);
      }
      if (personal ? rng.Bernoulli(0.95) : rng.Bernoulli(0.1)) {
        doc.AddNode("text", mail);
      }
    }
  }

  // --- categories. ----------------------------------------------------------
  NodeId categories = doc.AddNode("categories", site);
  for (int i = 0; i < n_categories; ++i) {
    NodeId category = doc.AddNode("category", categories);
    doc.AddNode("name", category);
    NodeId description = doc.AddNode("description", category);
    doc.AddNode("text", description);
  }

  // --- people: engaged users vs drive-by accounts. ---------------------------
  NodeId people = doc.AddNode("people", site);
  for (int i = 0; i < n_people; ++i) {
    NodeId person = doc.AddNode("person", people);
    const bool engaged = rng.Bernoulli(0.35);
    doc.AddNode("name", person);
    doc.AddNode("emailaddress", person);
    if (engaged || rng.Bernoulli(0.15)) doc.AddNode("phone", person);
    if (engaged ? rng.Bernoulli(0.9) : rng.Bernoulli(0.1)) {
      NodeId address = doc.AddNode("address", person);
      doc.AddNode("street", address);
      doc.AddNode("city", address);
      doc.AddNode("country", address);
      doc.AddNode("zipcode", address);
    }
    if (engaged && rng.Bernoulli(0.6)) doc.AddNode("homepage", person);
    if (engaged ? rng.Bernoulli(0.85) : rng.Bernoulli(0.05)) {
      doc.AddNode("creditcard", person);
    }
    if (engaged) {
      NodeId profile = doc.AddNode("profile", person);
      int interests = HeavyTail(rng, 1, 6);
      for (int j = 0; j < interests; ++j) doc.AddNode("interest", profile);
      if (rng.Bernoulli(0.5)) doc.AddNode("education", profile);
      doc.AddNode("gender", profile);
      doc.AddNode("business", profile);
      if (rng.Bernoulli(0.6)) doc.AddNode("age", profile);
      NodeId watches = doc.AddNode("watches", person);
      int n = HeavyTail(rng, 1, 10);
      for (int j = 0; j < n; ++j) doc.AddNode("watch", watches);
    }
  }

  // --- open auctions: hot auctions draw bidders but never set privacy;
  // sleepy auctions are private. Heavy-tailed bidder volume is the Fig. 11
  // variance hot spot. -------------------------------------------------------
  NodeId open_auctions = doc.AddNode("open_auctions", site);
  for (int i = 0; i < n_open; ++i) {
    NodeId auction = doc.AddNode("open_auction", open_auctions);
    const bool hot = rng.Bernoulli(0.3);
    doc.AddNode("initial", auction);
    int bidders = hot ? 8 + HeavyTail(rng, 0, 17) : HeavyTail(rng, 0, 2);
    for (int j = 0; j < bidders; ++j) {
      // Serious bidders log date+time+increase together; sniping bots log
      // only the increase — correlated fields inside a 4-node window.
      NodeId bidder = doc.AddNode("bidder", auction);
      const bool serious = rng.Bernoulli(hot ? 0.4 : 0.8);
      if (serious) {
        doc.AddNode("date", bidder);
        if (rng.Bernoulli(0.9)) doc.AddNode("time", bidder);
      } else if (rng.Bernoulli(0.1)) {
        doc.AddNode("date", bidder);
      }
      doc.AddNode("increase", bidder);
    }
    doc.AddNode("current", auction);
    if (!hot && rng.Bernoulli(0.6)) doc.AddNode("privacy", auction);
    doc.AddNode("itemref", auction);
    doc.AddNode("seller", auction);
    NodeId annotation = doc.AddNode("annotation", auction);
    doc.AddNode("author", annotation);
    NodeId description = doc.AddNode("description", annotation);
    doc.AddNode("text", description);
    doc.AddNode("quantity", auction);
    doc.AddNode("type", auction);
    NodeId interval = doc.AddNode("interval", auction);
    doc.AddNode("start", interval);
    doc.AddNode("end", interval);
  }

  // --- closed auctions. -------------------------------------------------------
  NodeId closed_auctions = doc.AddNode("closed_auctions", site);
  for (int i = 0; i < n_closed; ++i) {
    NodeId auction = doc.AddNode("closed_auction", closed_auctions);
    doc.AddNode("seller", auction);
    doc.AddNode("buyer", auction);
    doc.AddNode("itemref", auction);
    doc.AddNode("price", auction);
    doc.AddNode("date", auction);
    doc.AddNode("quantity", auction);
    doc.AddNode("type", auction);
    NodeId annotation = doc.AddNode("annotation", auction);
    doc.AddNode("author", annotation);
    NodeId description = doc.AddNode("description", annotation);
    doc.AddNode("text", description);
  }

  return doc;
}

}  // namespace treelattice
