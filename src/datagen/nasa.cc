#include <algorithm>

#include "datagen/datasets.h"
#include "util/rng.h"

namespace treelattice {

Document GenerateNasa(const DatasetOptions& options) {
  Document doc;
  Rng rng(options.seed + 1);  // decorrelate from other generators

  NodeId datasets = doc.AddNode("datasets", kInvalidNode);
  for (int i = 0; i < options.scale; ++i) {
    NodeId dataset = doc.AddNode("dataset", datasets);
    // Latent curation level: well-curated datasets carry keywords,
    // revision history, table metadata and journal references together;
    // legacy entries are sparse. This plants mild cross-branch correlation
    // (conditional independence approximately but not exactly holds) and
    // diversifies node signatures so the TreeSketches budget forces lossy
    // merges.
    const bool curated = rng.Bernoulli(0.4);

    if (curated ? rng.Bernoulli(0.7) : rng.Bernoulli(0.2)) {
      int altnames = 1 + static_cast<int>(rng.Uniform(3));
      for (int j = 0; j < altnames; ++j) doc.AddNode("altname", dataset);
    }
    doc.AddNode("title", dataset);

    int references = curated ? 2 + static_cast<int>(rng.Uniform(3))
                             : 1 + static_cast<int>(rng.Uniform(2));
    for (int j = 0; j < references; ++j) {
      NodeId reference = doc.AddNode("reference", dataset);
      NodeId source = doc.AddNode("source", reference);
      if (curated ? rng.Bernoulli(0.85) : rng.Bernoulli(0.35)) {
        NodeId journal = doc.AddNode("journal", source);
        doc.AddNode("title", journal);
        int authors = 1 + static_cast<int>(rng.Uniform(6));
        for (int k = 0; k < authors; ++k) {
          NodeId author = doc.AddNode("author", journal);
          doc.AddNode("lastName", author);
          doc.AddNode("initial", author);
        }
        doc.AddNode("name", journal);
        if (rng.Bernoulli(0.8)) {
          NodeId date = doc.AddNode("date", journal);
          doc.AddNode("year", date);
          if (rng.Bernoulli(0.5)) doc.AddNode("month", date);
        }
      } else {
        NodeId other = doc.AddNode("other", source);
        doc.AddNode("title", other);
        if (rng.Bernoulli(0.5)) doc.AddNode("name", other);
        int authors = 1 + static_cast<int>(rng.Uniform(3));
        for (int k = 0; k < authors; ++k) {
          NodeId author = doc.AddNode("author", other);
          doc.AddNode("lastName", author);
          if (rng.Bernoulli(0.6)) doc.AddNode("firstName", author);
        }
      }
    }

    if (curated ? rng.Bernoulli(0.9) : rng.Bernoulli(0.25)) {
      NodeId keywords = doc.AddNode("keywords", dataset);
      int n = 1 + static_cast<int>(rng.Uniform(6));
      for (int j = 0; j < n; ++j) doc.AddNode("keyword", keywords);
    }

    NodeId descriptions = doc.AddNode("descriptions", dataset);
    NodeId description = doc.AddNode("description", descriptions);
    int paras = 1 + static_cast<int>(rng.Uniform(curated ? 5 : 2));
    for (int j = 0; j < paras; ++j) doc.AddNode("para", description);

    if (curated ? rng.Bernoulli(0.8) : rng.Bernoulli(0.15)) {
      NodeId table_head = doc.AddNode("tableHead", dataset);
      NodeId table_links = doc.AddNode("tableLinks", table_head);
      int links = 1 + static_cast<int>(rng.Uniform(3));
      for (int j = 0; j < links; ++j) {
        NodeId link = doc.AddNode("tableLink", table_links);
        doc.AddNode("title", link);
      }
      if (rng.Bernoulli(0.6)) {
        NodeId fields = doc.AddNode("fields", table_head);
        int nf = 2 + static_cast<int>(rng.Uniform(6));
        for (int j = 0; j < nf; ++j) {
          NodeId field = doc.AddNode("field", fields);
          doc.AddNode("name", field);
          if (rng.Bernoulli(0.7)) doc.AddNode("definition", field);
        }
      }
    }

    NodeId history = doc.AddNode("history", dataset);
    doc.AddNode("creationDate", history);
    if (curated || rng.Bernoulli(0.3)) {
      doc.AddNode("lastModificationDate", history);
    }
    if (curated ? rng.Bernoulli(0.85) : rng.Bernoulli(0.1)) {
      NodeId revisions = doc.AddNode("revisions", history);
      int n = 1 + static_cast<int>(rng.Uniform(5));
      for (int j = 0; j < n; ++j) {
        NodeId revision = doc.AddNode("revision", revisions);
        doc.AddNode("date", revision);
        doc.AddNode("author", revision);
        if (rng.Bernoulli(0.5)) doc.AddNode("description", revision);
      }
    }

    doc.AddNode("identifier", dataset);
    int authors = 1 + static_cast<int>(rng.Uniform(4));
    for (int j = 0; j < authors; ++j) {
      NodeId author = doc.AddNode("author", dataset);
      doc.AddNode("lastName", author);
      doc.AddNode("firstName", author);
      if (curated ? rng.Bernoulli(0.6) : rng.Bernoulli(0.1)) {
        doc.AddNode("affiliation", author);
      }
    }
  }
  return doc;
}

}  // namespace treelattice
