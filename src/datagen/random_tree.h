#ifndef TREELATTICE_DATAGEN_RANDOM_TREE_H_
#define TREELATTICE_DATAGEN_RANDOM_TREE_H_

#include <cstdint>

#include "util/rng.h"
#include "xml/document.h"

namespace treelattice {

/// Options for the generic random labeled-tree generator used by tests and
/// ablation benchmarks.
struct RandomTreeOptions {
  uint64_t seed = 42;
  /// Total node budget (the tree stops growing when reached).
  size_t num_nodes = 1000;
  /// Distinct labels drawn per node.
  int num_labels = 8;
  /// Zipf skew over labels (0 = uniform).
  double label_skew = 0.5;
  /// Maximum children per node; actual fanout is uniform in [0, max_fanout]
  /// biased by depth so the tree terminates.
  int max_fanout = 4;
  /// Maximum depth of any node.
  int max_depth = 8;
};

/// Generates a random rooted labeled tree. Deterministic given the options.
Document GenerateRandomTree(const RandomTreeOptions& options);

}  // namespace treelattice

#endif  // TREELATTICE_DATAGEN_RANDOM_TREE_H_
