#include "datagen/random_tree.h"

#include <string>
#include <vector>

namespace treelattice {

Document GenerateRandomTree(const RandomTreeOptions& options) {
  Document doc;
  Rng rng(options.seed);

  // Pre-intern labels "l0".."lN-1".
  std::vector<LabelId> labels;
  labels.reserve(static_cast<size_t>(options.num_labels));
  for (int i = 0; i < options.num_labels; ++i) {
    labels.push_back(doc.mutable_dict().Intern("l" + std::to_string(i)));
  }
  auto pick_label = [&]() {
    return labels[rng.Zipf(labels.size(), options.label_skew)];
  };

  NodeId root = doc.AddNode(pick_label(), kInvalidNode);
  struct Pending {
    NodeId node;
    int depth;
  };
  std::vector<Pending> queue = {{root, 0}};
  std::vector<Pending> expandable = {{root, 0}};  // nodes below max_depth
  size_t head = 0;
  if (options.max_fanout < 1 || options.max_depth < 1) return doc;
  while (doc.NumNodes() < options.num_nodes) {
    if (head == queue.size()) {
      // Fanout draws went subcritical and the frontier died out; re-seed
      // growth from a random interior node so the node budget is honored.
      if (expandable.empty()) break;
      size_t pick = rng.Uniform(expandable.size());
      queue.push_back(expandable[pick]);
    }
    Pending cur = queue[head++];
    if (cur.depth >= options.max_depth) continue;
    int fanout = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(options.max_fanout) + 1));
    for (int i = 0; i < fanout && doc.NumNodes() < options.num_nodes; ++i) {
      NodeId child = doc.AddNode(pick_label(), cur.node);
      queue.push_back({child, cur.depth + 1});
      if (cur.depth + 1 < options.max_depth) {
        expandable.push_back({child, cur.depth + 1});
      }
    }
  }
  return doc;
}

}  // namespace treelattice
