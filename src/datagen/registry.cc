#include <string>

#include "datagen/datasets.h"

namespace treelattice {

Result<Document> GenerateDataset(std::string_view name,
                                 const DatasetOptions& options) {
  if (name == "xmark") return GenerateXmark(options);
  if (name == "nasa") return GenerateNasa(options);
  if (name == "imdb") return GenerateImdb(options);
  if (name == "psd") return GeneratePsd(options);
  return Status::NotFound("unknown dataset '" + std::string(name) +
                          "' (expected nasa|imdb|psd|xmark)");
}

std::vector<std::string> DatasetNames() {
  return {"nasa", "imdb", "psd", "xmark"};
}

int DefaultScale(std::string_view name) {
  // Chosen so node-count ratios roughly track Table 1 (Nasa 477k : IMDB
  // 156k : XMark 566k : PSD 242k) at ~1/8 scale for fast experiments.
  if (name == "nasa") return 1400;    // ~97k nodes
  if (name == "imdb") return 1100;    // ~56k nodes
  if (name == "psd") return 1300;     // ~44k nodes
  if (name == "xmark") return 7000;   // ~107k nodes (largest, as in Table 1)
  return 1000;
}

}  // namespace treelattice
