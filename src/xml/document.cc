#include "xml/document.h"

#include <string>

namespace treelattice {

NodeId Document::AddNode(LabelId label, NodeId parent) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(parent);
  first_child_.push_back(kInvalidNode);
  last_child_.push_back(kInvalidNode);
  next_sibling_.push_back(kInvalidNode);
  num_children_.push_back(0);
  if (parent != kInvalidNode) {
    size_t p = static_cast<size_t>(parent);
    if (first_child_[p] == kInvalidNode) {
      first_child_[p] = id;
    } else {
      next_sibling_[static_cast<size_t>(last_child_[p])] = id;
    }
    last_child_[p] = id;
    ++num_children_[p];
  }
  return id;
}

std::vector<NodeId> Document::Children(NodeId n) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(NumChildren(n)));
  for (NodeId c = FirstChild(n); c != kInvalidNode; c = NextSibling(c)) {
    out.push_back(c);
  }
  return out;
}

Status Document::Validate() const {
  if (empty()) return Status::OK();
  if (parents_[0] != kInvalidNode) {
    return Status::Corruption("node 0 is not a root");
  }
  for (size_t i = 1; i < parents_.size(); ++i) {
    NodeId p = parents_[i];
    if (p == kInvalidNode) {
      return Status::Corruption("multiple roots: node " + std::to_string(i));
    }
    if (p < 0 || static_cast<size_t>(p) >= i) {
      return Status::Corruption("parent of node " + std::to_string(i) +
                                " does not precede it (not preorder)");
    }
  }
  // Check child links and counts agree.
  for (size_t i = 0; i < labels_.size(); ++i) {
    int32_t seen = 0;
    for (NodeId c = first_child_[i]; c != kInvalidNode;
         c = next_sibling_[static_cast<size_t>(c)]) {
      if (parents_[static_cast<size_t>(c)] != static_cast<NodeId>(i)) {
        return Status::Corruption("child link/parent mismatch at node " +
                                  std::to_string(i));
      }
      ++seen;
      if (seen > static_cast<int32_t>(labels_.size())) {
        return Status::Corruption("sibling cycle under node " +
                                  std::to_string(i));
      }
    }
    if (seen != num_children_[i]) {
      return Status::Corruption("child count mismatch at node " +
                                std::to_string(i));
    }
  }
  return Status::OK();
}

LabelIndex::LabelIndex(const Document& doc) {
  nodes_by_label_.resize(doc.dict().size());
  for (NodeId n = 0; n < static_cast<NodeId>(doc.NumNodes()); ++n) {
    LabelId l = doc.Label(n);
    if (l >= 0) {
      if (static_cast<size_t>(l) >= nodes_by_label_.size()) {
        nodes_by_label_.resize(static_cast<size_t>(l) + 1);
      }
      nodes_by_label_[static_cast<size_t>(l)].push_back(n);
    }
  }
}

}  // namespace treelattice
