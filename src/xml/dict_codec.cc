#include "xml/dict_codec.h"

#include <limits>

#include "util/coding.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

constexpr std::string_view kDictMagic = "TLDICT v2";

std::string EscapeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '%':
        out += "%%";
        break;
      case '\n':
        out += "%n";
        break;
      case '\r':
        out += "%r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Status UnescapeName(std::string_view line, std::string* out) {
  out->clear();
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '%') {
      out->push_back(line[i]);
      continue;
    }
    if (i + 1 >= line.size()) {
      return Status::Corruption("dict: dangling escape at end of line");
    }
    switch (line[++i]) {
      case '%':
        out->push_back('%');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      default:
        return Status::Corruption("dict: unknown escape sequence");
    }
  }
  return Status::OK();
}

Status InternChecked(LabelDict* dict, std::string_view name) {
  LabelId expected = static_cast<LabelId>(dict->size());
  if (dict->Intern(name) != expected) {
    return Status::Corruption("dict: duplicate label name would shift ids");
  }
  return Status::OK();
}

}  // namespace

Status SaveLabelDict(const LabelDict& dict, Env* env,
                     const std::string& path) {
  std::string contents(kDictMagic);
  contents.push_back('\n');
  for (size_t i = 0; i < dict.size(); ++i) {
    contents += EscapeName(dict.Name(static_cast<LabelId>(i)));
    contents.push_back('\n');
  }
  return WriteFileAtomic(env, path, contents);
}

Result<LabelDict> LoadLabelDict(Env* env, const std::string& path) {
  std::string contents;
  TL_RETURN_IF_ERROR(ReadFileToString(env, path, &contents));

  std::vector<std::string_view> lines = SplitString(contents, '\n');
  // A trailing newline produces one final empty piece that is not a label.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();

  LabelDict dict;
  bool escaped = !lines.empty() && lines[0] == kDictMagic;
  std::string name;
  for (size_t i = escaped ? 1 : 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    // Lines may end in '\r' if the file transited a CRLF filesystem; only
    // the escaped format can represent a genuine trailing '\r'.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (escaped) {
      TL_RETURN_IF_ERROR(UnescapeName(line, &name));
      TL_RETURN_IF_ERROR(InternChecked(&dict, name));
    } else {
      TL_RETURN_IF_ERROR(InternChecked(&dict, line));
    }
  }
  return dict;
}

void EncodeLabelDict(const LabelDict& dict, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(dict.size()));
  for (size_t i = 0; i < dict.size(); ++i) {
    std::string_view name = dict.Name(static_cast<LabelId>(i));
    PutFixed32(out, static_cast<uint32_t>(name.size()));
    out->append(name);
  }
}

Status DecodeLabelDict(std::string_view payload, LabelDict* dict) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetFixed32(&count)) {
    return Status::Corruption("dict block: truncated count");
  }
  if (count > payload.size()) {
    // Each entry takes at least 4 bytes; an impossible count means a
    // corrupt header, not a gigantic allocation.
    return Status::Corruption("dict block: implausible label count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    std::string_view name;
    if (!reader.GetFixed32(&len) || !reader.GetBytes(len, &name)) {
      return Status::Corruption("dict block: truncated label entry");
    }
    TL_RETURN_IF_ERROR(InternChecked(dict, name));
  }
  if (!reader.empty()) {
    return Status::Corruption("dict block: trailing bytes");
  }
  return Status::OK();
}

}  // namespace treelattice
