#ifndef TREELATTICE_XML_STATS_H_
#define TREELATTICE_XML_STATS_H_

#include <cstdint>
#include <vector>

#include "xml/document.h"

namespace treelattice {

/// Structural statistics of a document, as reported in dataset
/// characterizations (Table 1) and useful when choosing a lattice level.
struct DocumentStats {
  size_t num_nodes = 0;
  size_t num_labels = 0;  ///< distinct labels that actually occur
  int max_depth = 0;      ///< edges from root to the deepest node
  double avg_depth = 0.0;
  int max_fanout = 0;
  double avg_fanout = 0.0;      ///< over interior nodes
  double fanout_variance = 0.0; ///< over interior nodes
  size_t num_leaves = 0;
  /// depth_histogram[d] = number of nodes at depth d.
  std::vector<size_t> depth_histogram;
};

/// Computes the statistics in one pass over the document.
DocumentStats ComputeDocumentStats(const Document& doc);

}  // namespace treelattice

#endif  // TREELATTICE_XML_STATS_H_
