#include "xml/parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"
#include "xml/value_buckets.h"

namespace treelattice {

namespace {

/// Cursor-based scanner over the raw XML bytes.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t ahead) const {
    size_t i = pos_ + ahead;
    return i < text_.size() ? text_[i] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool Match(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  /// Advances past everything up to and including `terminator`; false if
  /// the terminator never appears.
  bool SkipUntil(std::string_view terminator) {
    size_t found = text_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      pos_ = text_.size();
      return false;
    }
    pos_ = found + terminator.size();
    return true;
  }

  /// Scans an XML name (tag or attribute). Empty result means no name.
  std::string_view ScanName() {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      bool name_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                       c == '.' || c == ':';
      if (!name_char) break;
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ErrorAt(const Scanner& scanner, std::string what) {
  return Status::ParseError(what + " at byte offset " +
                            std::to_string(scanner.pos()));
}

/// Parses the attribute list of a start tag; returns attribute names in
/// document order. Stops before '>' or '/>'.
Status ParseAttributes(Scanner& scanner, std::vector<std::string>* names) {
  while (true) {
    scanner.SkipWhitespace();
    if (scanner.AtEnd()) return ErrorAt(scanner, "unterminated start tag");
    char c = scanner.Peek();
    if (c == '>' || c == '/' || c == '?') return Status::OK();
    std::string_view name = scanner.ScanName();
    if (name.empty()) return ErrorAt(scanner, "expected attribute name");
    scanner.SkipWhitespace();
    if (scanner.AtEnd() || scanner.Peek() != '=') {
      return ErrorAt(scanner, "expected '=' after attribute name");
    }
    scanner.Advance();
    scanner.SkipWhitespace();
    if (scanner.AtEnd()) return ErrorAt(scanner, "unterminated attribute");
    char quote = scanner.Peek();
    if (quote != '"' && quote != '\'') {
      return ErrorAt(scanner, "expected quoted attribute value");
    }
    scanner.Advance();
    if (!scanner.SkipUntil(std::string_view(&quote, 1))) {
      return ErrorAt(scanner, "unterminated attribute value");
    }
    names->emplace_back(name);
  }
}

}  // namespace

Result<Document> ParseXmlString(std::string_view xml,
                                const XmlParseOptions& options) {
  std::shared_ptr<LabelDict> dict =
      options.dict ? options.dict : std::make_shared<LabelDict>();
  Document doc(dict);
  Scanner scanner(xml);
  std::vector<NodeId> stack;           // open elements
  std::vector<std::string> open_tags;  // their tag names, for matching

  while (true) {
    scanner.SkipWhitespace();
    if (scanner.AtEnd()) break;
    if (scanner.Peek() != '<') {
      // Character data. Must be inside an element; by default ignored
      // (values are not modeled), optionally bucketed into a synthetic
      // value leaf.
      if (stack.empty() && !doc.empty()) {
        return ErrorAt(scanner, "text outside of root element");
      }
      if (stack.empty()) {
        return ErrorAt(scanner, "text before root element");
      }
      size_t text_start = scanner.pos();
      while (!scanner.AtEnd() && scanner.Peek() != '<') scanner.Advance();
      if (options.model_values) {
        std::string_view text =
            TrimWhitespace(xml.substr(text_start, scanner.pos() - text_start));
        if (!text.empty()) {
          doc.AddNode(ValueBucketLabel(text, options.value_buckets),
                      stack.back());
        }
      }
      continue;
    }
    // '<' seen.
    if (scanner.Match("<?")) {
      if (!scanner.SkipUntil("?>")) {
        return ErrorAt(scanner, "unterminated processing instruction");
      }
      continue;
    }
    if (scanner.Match("<!--")) {
      if (!scanner.SkipUntil("-->")) {
        return ErrorAt(scanner, "unterminated comment");
      }
      continue;
    }
    if (scanner.Match("<![CDATA[")) {
      if (!scanner.SkipUntil("]]>")) {
        return ErrorAt(scanner, "unterminated CDATA section");
      }
      continue;
    }
    if (scanner.Match("<!")) {
      // DOCTYPE or similar declaration; skip to the matching '>'.
      // (Internal DTD subsets with nested '>' are not supported.)
      if (!scanner.SkipUntil(">")) {
        return ErrorAt(scanner, "unterminated markup declaration");
      }
      continue;
    }
    if (scanner.Match("</")) {
      std::string_view name = scanner.ScanName();
      scanner.SkipWhitespace();
      if (!scanner.Match(">")) {
        return ErrorAt(scanner, "malformed end tag");
      }
      if (stack.empty()) {
        return ErrorAt(scanner, "end tag with no open element");
      }
      if (open_tags.back() != name) {
        return ErrorAt(scanner, "mismatched end tag </" + std::string(name) +
                                    ">, expected </" + open_tags.back() + ">");
      }
      stack.pop_back();
      open_tags.pop_back();
      continue;
    }
    // Start tag.
    scanner.Advance();  // consume '<'
    std::string_view name = scanner.ScanName();
    if (name.empty()) return ErrorAt(scanner, "expected element name");
    if (stack.empty() && !doc.empty()) {
      return ErrorAt(scanner, "multiple root elements");
    }
    NodeId parent = stack.empty() ? kInvalidNode : stack.back();
    NodeId node = doc.AddNode(name, parent);

    std::vector<std::string> attr_names;
    Status attr_status = ParseAttributes(scanner, &attr_names);
    if (!attr_status.ok()) return attr_status;
    if (options.model_attributes) {
      for (const std::string& attr : attr_names) {
        doc.AddNode("@" + attr, node);
      }
    }
    scanner.SkipWhitespace();
    if (scanner.Match("/>")) continue;  // empty element
    if (!scanner.Match(">")) {
      return ErrorAt(scanner, "malformed start tag");
    }
    stack.push_back(node);
    open_tags.emplace_back(name);
  }

  if (!stack.empty()) {
    return Status::ParseError("unclosed element <" + open_tags.back() +
                              "> at end of input");
  }
  if (doc.empty()) {
    return Status::ParseError("no root element found");
  }
  Status valid = doc.Validate();
  if (!valid.ok()) return valid;
  return doc;
}

Result<Document> ParseXmlFile(const std::string& path,
                              const XmlParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on " + path);
  std::string contents = buffer.str();
  return ParseXmlString(contents, options);
}

}  // namespace treelattice
