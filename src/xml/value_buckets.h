#ifndef TREELATTICE_XML_VALUE_BUCKETS_H_
#define TREELATTICE_XML_VALUE_BUCKETS_H_

#include <string>
#include <string_view>

#include "util/hash.h"

namespace treelattice {

/// Default number of value buckets used when text values are modeled.
inline constexpr int kDefaultValueBuckets = 64;

/// Support for twig queries with value predicates — the paper's Section 6
/// future-work item #1 ("extend the TreeLattice approach to work on the
/// selectivity estimation for the twig queries with value predicates").
///
/// The paper's structural model deliberately omits values (Section 2.1).
/// This extension folds them back in without touching the estimation
/// machinery: each text value is hashed into one of B buckets and becomes
/// a synthetic leaf child labeled "=<bucket>" of its enclosing element.
/// A value predicate in a query compiles to the same synthetic label, so
/// lattice mining, decomposition and even TreeSketches handle value
/// correlations exactly as structural ones (an XSketches-lite treatment of
/// values). Distinct values colliding in a bucket inflate estimates by at
/// most the bucket's value multiplicity — the classic hash-bucket
/// trade-off, measured in bench_ext_values.
inline std::string ValueBucketLabel(std::string_view value, int buckets) {
  uint64_t bucket = HashBytes(value) % static_cast<uint64_t>(buckets);
  return "=" + std::to_string(bucket);
}

/// True if `label` is a synthetic value-bucket label.
inline bool IsValueBucketLabel(std::string_view label) {
  return !label.empty() && label[0] == '=';
}

}  // namespace treelattice

#endif  // TREELATTICE_XML_VALUE_BUCKETS_H_
