#ifndef TREELATTICE_XML_LABEL_DICT_H_
#define TREELATTICE_XML_LABEL_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace treelattice {

/// Interned label identifier. Labels are element-tag (or attribute-name)
/// strings; all tree structures in the library store LabelIds, never strings.
using LabelId = int32_t;

/// Sentinel for "no label" / invalid.
inline constexpr LabelId kInvalidLabel = -1;

/// Bidirectional mapping between label strings and dense LabelIds.
///
/// The dictionary is shared between a Document and the twig queries posed
/// against it so that label comparison is an integer compare.
class LabelDict {
 public:
  LabelDict() = default;

  /// Returns the id for `name`, interning it if unseen.
  LabelId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    LabelId id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or kInvalidLabel if never interned.
  LabelId Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidLabel : it->second;
  }

  /// Returns the string for a valid id.
  std::string_view Name(LabelId id) const {
    return names_[static_cast<size_t>(id)];
  }

  /// Number of distinct labels interned.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace treelattice

#endif  // TREELATTICE_XML_LABEL_DICT_H_
