#ifndef TREELATTICE_XML_WRITER_H_
#define TREELATTICE_XML_WRITER_H_

#include <string>

#include "util/status.h"
#include "xml/document.h"

namespace treelattice {

/// Serializes a Document back to XML text (structure only; there are no
/// values to emit). Attribute-modeled children ("@name") are written back as
/// attributes with empty values so a parse/write/parse round-trip is stable.
std::string WriteXmlString(const Document& doc, bool pretty = false);

/// Writes the serialized document to a file.
Status WriteXmlFile(const Document& doc, const std::string& path,
                    bool pretty = false);

}  // namespace treelattice

#endif  // TREELATTICE_XML_WRITER_H_
