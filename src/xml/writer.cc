#include "xml/writer.h"

#include <fstream>

namespace treelattice {

namespace {

void WriteNode(const Document& doc, NodeId n, bool pretty, int depth,
               std::string* out) {
  const std::string_view tag = doc.dict().Name(doc.Label(n));
  if (pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(tag);

  // Emit attribute-modeled children first, as attributes. Synthetic
  // value-bucket leaves ("=<k>") carry no recoverable text and are
  // dropped — writing a value-modeled document is lossy by design.
  std::vector<NodeId> element_children;
  for (NodeId c = doc.FirstChild(n); c != kInvalidNode; c = doc.NextSibling(c)) {
    std::string_view child_label = doc.dict().Name(doc.Label(c));
    if (!child_label.empty() && child_label[0] == '@' &&
        doc.NumChildren(c) == 0) {
      out->push_back(' ');
      out->append(child_label.substr(1));
      out->append("=\"\"");
    } else if (!child_label.empty() && child_label[0] == '=' &&
               doc.NumChildren(c) == 0) {
      continue;
    } else {
      element_children.push_back(c);
    }
  }

  if (element_children.empty()) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (pretty) out->push_back('\n');
  for (NodeId c : element_children) {
    WriteNode(doc, c, pretty, depth + 1, out);
  }
  if (pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</");
  out->append(tag);
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

std::string WriteXmlString(const Document& doc, bool pretty) {
  std::string out;
  if (doc.empty()) return out;
  // Iterative emission would avoid deep recursion; document depth in our
  // datasets is bounded (< 20), so recursion is fine here.
  WriteNode(doc, doc.root(), pretty, 0, &out);
  return out;
}

Status WriteXmlFile(const Document& doc, const std::string& path,
                    bool pretty) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  std::string text = WriteXmlString(doc, pretty);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace treelattice
