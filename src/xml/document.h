#ifndef TREELATTICE_XML_DOCUMENT_H_
#define TREELATTICE_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"
#include "xml/label_dict.h"

namespace treelattice {

/// Index of a node within a Document. Nodes are stored in preorder.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// A rooted node-labeled tree modeling an XML document's structure.
///
/// Per the paper (Section 2.1) text values are not modeled; only the element
/// (and optionally attribute-name) structure is kept. Nodes are appended in
/// preorder: a node's parent must already exist when the node is added.
/// Child order is preserved as insertion order via first-child/next-sibling
/// links, although twig matching (Definition 1) is order-insensitive.
class Document {
 public:
  /// Creates an empty document owning a fresh label dictionary.
  Document() : dict_(std::make_shared<LabelDict>()) {}

  /// Creates an empty document sharing an existing dictionary (so queries
  /// and documents agree on LabelIds).
  explicit Document(std::shared_ptr<LabelDict> dict)
      : dict_(std::move(dict)) {}

  /// Appends a node with the given label under `parent` (kInvalidNode for
  /// the root; only one root is allowed). Returns the new node's id.
  NodeId AddNode(LabelId label, NodeId parent);

  /// Convenience overload interning the label string.
  NodeId AddNode(std::string_view label, NodeId parent) {
    return AddNode(dict_->Intern(label), parent);
  }

  size_t NumNodes() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  NodeId root() const { return empty() ? kInvalidNode : 0; }

  LabelId Label(NodeId n) const { return labels_[static_cast<size_t>(n)]; }
  NodeId Parent(NodeId n) const { return parents_[static_cast<size_t>(n)]; }
  NodeId FirstChild(NodeId n) const {
    return first_child_[static_cast<size_t>(n)];
  }
  NodeId NextSibling(NodeId n) const {
    return next_sibling_[static_cast<size_t>(n)];
  }

  /// Number of children of `n` (O(1); maintained incrementally).
  int32_t NumChildren(NodeId n) const {
    return num_children_[static_cast<size_t>(n)];
  }

  /// Collects the children of `n` in document order.
  std::vector<NodeId> Children(NodeId n) const;

  const LabelDict& dict() const { return *dict_; }
  LabelDict& mutable_dict() { return *dict_; }
  std::shared_ptr<LabelDict> shared_dict() const { return dict_; }

  /// Approximate in-memory footprint of the tree structure in bytes.
  size_t MemoryBytes() const {
    return labels_.size() *
           (sizeof(LabelId) + 3 * sizeof(NodeId) + sizeof(int32_t));
  }

  /// Checks structural invariants (preorder parents, single root, link
  /// consistency). Intended for tests and post-parse validation.
  Status Validate() const;

 private:
  std::shared_ptr<LabelDict> dict_;
  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<int32_t> num_children_;
};

/// Inverted index from label to the document nodes carrying it, used by the
/// match counter and the miner to avoid full-tree scans.
class LabelIndex {
 public:
  explicit LabelIndex(const Document& doc);

  /// Nodes labeled `label` in preorder; empty if the label does not occur.
  const std::vector<NodeId>& Nodes(LabelId label) const {
    static const std::vector<NodeId> kEmpty;
    if (label < 0 || static_cast<size_t>(label) >= nodes_by_label_.size()) {
      return kEmpty;
    }
    return nodes_by_label_[static_cast<size_t>(label)];
  }

  /// Number of nodes with the given label.
  size_t Count(LabelId label) const { return Nodes(label).size(); }

  /// One past the largest label id occurring in the document (may exceed
  /// the dictionary size if labels were added with raw ids).
  size_t NumLabels() const { return nodes_by_label_.size(); }

 private:
  std::vector<std::vector<NodeId>> nodes_by_label_;
};

}  // namespace treelattice

#endif  // TREELATTICE_XML_DOCUMENT_H_
