#ifndef TREELATTICE_XML_PARSER_H_
#define TREELATTICE_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"
#include "xml/document.h"

namespace treelattice {

/// Options controlling the structural XML parse.
struct XmlParseOptions {
  /// If true, each attribute `name="v"` becomes a child node labeled
  /// "@name" (the paper models attribute names as interior labels; values
  /// are never modeled).
  bool model_attributes = false;

  /// If true, each contiguous non-whitespace text run becomes a synthetic
  /// leaf child labeled "=<bucket>" (see xml/value_buckets.h), enabling
  /// twig queries with value predicates. Off by default, matching the
  /// paper's value-free model.
  bool model_values = false;

  /// Bucket count for model_values. Must match the bucket count used when
  /// compiling value-predicate queries.
  int value_buckets = 64;

  /// Dictionary to intern labels into; a fresh one is created when null so
  /// that the resulting document is self-contained.
  std::shared_ptr<LabelDict> dict;
};

/// Parses an XML document's element structure into a labeled tree.
///
/// This is a from-scratch non-validating parser covering the subset needed
/// for dataset ingestion: prolog, comments, DOCTYPE (skipped), CDATA
/// (skipped), processing instructions (skipped), elements with attributes,
/// and character data (ignored — values are not modeled). Entity references
/// inside text are ignored along with the text. Returns ParseError with a
/// byte offset on malformed input (mismatched/unterminated tags, garbage).
Result<Document> ParseXmlString(std::string_view xml,
                                const XmlParseOptions& options = {});

/// Reads and parses an XML file from disk.
Result<Document> ParseXmlFile(const std::string& path,
                              const XmlParseOptions& options = {});

}  // namespace treelattice

#endif  // TREELATTICE_XML_PARSER_H_
