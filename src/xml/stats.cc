#include "xml/stats.h"

#include <algorithm>
#include <unordered_set>

namespace treelattice {

DocumentStats ComputeDocumentStats(const Document& doc) {
  DocumentStats stats;
  stats.num_nodes = doc.NumNodes();
  if (doc.empty()) return stats;

  std::unordered_set<LabelId> labels;
  std::vector<int> depth(doc.NumNodes(), 0);
  double depth_sum = 0.0;
  double fanout_sum = 0.0;
  double fanout_sum_sq = 0.0;
  size_t interior = 0;

  for (NodeId n = 0; n < static_cast<NodeId>(doc.NumNodes()); ++n) {
    labels.insert(doc.Label(n));
    if (n != doc.root()) {
      depth[static_cast<size_t>(n)] =
          depth[static_cast<size_t>(doc.Parent(n))] + 1;
    }
    int d = depth[static_cast<size_t>(n)];
    stats.max_depth = std::max(stats.max_depth, d);
    depth_sum += d;
    if (static_cast<size_t>(d) >= stats.depth_histogram.size()) {
      stats.depth_histogram.resize(static_cast<size_t>(d) + 1, 0);
    }
    ++stats.depth_histogram[static_cast<size_t>(d)];

    int fanout = doc.NumChildren(n);
    if (fanout == 0) {
      ++stats.num_leaves;
    } else {
      ++interior;
      fanout_sum += fanout;
      fanout_sum_sq += static_cast<double>(fanout) * fanout;
      stats.max_fanout = std::max(stats.max_fanout, fanout);
    }
  }

  stats.num_labels = labels.size();
  stats.avg_depth = depth_sum / static_cast<double>(doc.NumNodes());
  if (interior > 0) {
    stats.avg_fanout = fanout_sum / static_cast<double>(interior);
    stats.fanout_variance =
        fanout_sum_sq / static_cast<double>(interior) -
        stats.avg_fanout * stats.avg_fanout;
  }
  return stats;
}

}  // namespace treelattice
