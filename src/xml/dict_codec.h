#ifndef TREELATTICE_XML_DICT_CODEC_H_
#define TREELATTICE_XML_DICT_CODEC_H_

#include <string>
#include <string_view>

#include "io/env.h"
#include "util/result.h"
#include "xml/label_dict.h"

namespace treelattice {

/// Serialization for LabelDict. Two encodings exist:
///
///  - A text sidecar ("TLDICT v2"): one label per line with %-escaping so
///    names containing newlines, carriage returns, or '%' round-trip, and
///    empty names occupy their line instead of vanishing. The seed's
///    unescaped format (no header) is still read, WITHOUT skipping empty
///    lines — skipping shifted every subsequent LabelId and silently
///    corrupted all estimates.
///  - A binary block (length-prefixed names) embedded in TLSUMMARY v2
///    container files, which removes the summary/.dict pairing hazard.
///
/// Both decoders reject duplicate names: a duplicate would intern to an
/// existing id and shift every later label.

/// Writes the text sidecar atomically via `env`.
Status SaveLabelDict(const LabelDict& dict, Env* env,
                     const std::string& path);

/// Reads a text sidecar written by SaveLabelDict or by the seed code.
Result<LabelDict> LoadLabelDict(Env* env, const std::string& path);

/// Appends the binary encoding of `dict` to `*out`.
void EncodeLabelDict(const LabelDict& dict, std::string* out);

/// Decodes a binary block produced by EncodeLabelDict into `*dict` (which
/// must be empty). Bounds-checked: corrupt length fields yield Corruption,
/// never an out-of-bounds read.
Status DecodeLabelDict(std::string_view payload, LabelDict* dict);

}  // namespace treelattice

#endif  // TREELATTICE_XML_DICT_CODEC_H_
