file(REMOVE_RECURSE
  "CMakeFiles/calibrated_test.dir/calibrated_test.cc.o"
  "CMakeFiles/calibrated_test.dir/calibrated_test.cc.o.d"
  "calibrated_test"
  "calibrated_test.pdb"
  "calibrated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
