# Empty compiler generated dependencies file for calibrated_test.
# This may be replaced when dependencies are built.
