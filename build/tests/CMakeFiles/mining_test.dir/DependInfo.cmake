
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mining_test.cc" "tests/CMakeFiles/mining_test.dir/mining_test.cc.o" "gcc" "tests/CMakeFiles/mining_test.dir/mining_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/tl_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/twig/CMakeFiles/tl_twig.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/tl_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/tl_match.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/tl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/tl_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/treesketch/CMakeFiles/tl_treesketch.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/tl_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/tl_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
