# Empty compiler generated dependencies file for values_test.
# This may be replaced when dependencies are built.
