file(REMOVE_RECURSE
  "CMakeFiles/values_test.dir/values_test.cc.o"
  "CMakeFiles/values_test.dir/values_test.cc.o.d"
  "values_test"
  "values_test.pdb"
  "values_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/values_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
