# Empty dependencies file for freqt_test.
# This may be replaced when dependencies are built.
