file(REMOVE_RECURSE
  "CMakeFiles/freqt_test.dir/freqt_test.cc.o"
  "CMakeFiles/freqt_test.dir/freqt_test.cc.o.d"
  "freqt_test"
  "freqt_test.pdb"
  "freqt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freqt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
