# Empty dependencies file for treesketch_test.
# This may be replaced when dependencies are built.
