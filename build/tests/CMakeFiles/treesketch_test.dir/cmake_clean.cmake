file(REMOVE_RECURSE
  "CMakeFiles/treesketch_test.dir/treesketch_test.cc.o"
  "CMakeFiles/treesketch_test.dir/treesketch_test.cc.o.d"
  "treesketch_test"
  "treesketch_test.pdb"
  "treesketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
