file(REMOVE_RECURSE
  "CMakeFiles/path_baseline_test.dir/path_baseline_test.cc.o"
  "CMakeFiles/path_baseline_test.dir/path_baseline_test.cc.o.d"
  "path_baseline_test"
  "path_baseline_test.pdb"
  "path_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
