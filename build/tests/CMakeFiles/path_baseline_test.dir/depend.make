# Empty dependencies file for path_baseline_test.
# This may be replaced when dependencies are built.
