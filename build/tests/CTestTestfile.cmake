# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/twig_test[1]_include.cmake")
include("/root/repo/build/tests/decompose_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/summary_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/treesketch_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/calibrated_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/path_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/values_test[1]_include.cmake")
include("/root/repo/build/tests/freqt_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_shapes_test[1]_include.cmake")
add_test(cli_smoke "sh" "/root/repo/tests/cli_smoke.sh" "/root/repo/build/tools/treelattice")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
