# Empty dependencies file for treelattice.
# This may be replaced when dependencies are built.
