file(REMOVE_RECURSE
  "CMakeFiles/treelattice.dir/treelattice_cli.cc.o"
  "CMakeFiles/treelattice.dir/treelattice_cli.cc.o.d"
  "treelattice"
  "treelattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treelattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
