# Empty dependencies file for summary_tuning.
# This may be replaced when dependencies are built.
