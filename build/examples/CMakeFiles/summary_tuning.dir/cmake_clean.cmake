file(REMOVE_RECURSE
  "CMakeFiles/summary_tuning.dir/summary_tuning.cpp.o"
  "CMakeFiles/summary_tuning.dir/summary_tuning.cpp.o.d"
  "summary_tuning"
  "summary_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
