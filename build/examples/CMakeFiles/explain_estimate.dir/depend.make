# Empty dependencies file for explain_estimate.
# This may be replaced when dependencies are built.
