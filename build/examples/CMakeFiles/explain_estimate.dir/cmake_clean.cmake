file(REMOVE_RECURSE
  "CMakeFiles/explain_estimate.dir/explain_estimate.cpp.o"
  "CMakeFiles/explain_estimate.dir/explain_estimate.cpp.o.d"
  "explain_estimate"
  "explain_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
