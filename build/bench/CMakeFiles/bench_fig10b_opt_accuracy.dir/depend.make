# Empty dependencies file for bench_fig10b_opt_accuracy.
# This may be replaced when dependencies are built.
