# Empty compiler generated dependencies file for bench_ext_voting.
# This may be replaced when dependencies are built.
