file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_voting.dir/bench_ext_voting.cc.o"
  "CMakeFiles/bench_ext_voting.dir/bench_ext_voting.cc.o.d"
  "bench_ext_voting"
  "bench_ext_voting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
