file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_incremental.dir/bench_ext_incremental.cc.o"
  "CMakeFiles/bench_ext_incremental.dir/bench_ext_incremental.cc.o.d"
  "bench_ext_incremental"
  "bench_ext_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
