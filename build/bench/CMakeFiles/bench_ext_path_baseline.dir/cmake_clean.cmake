file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_path_baseline.dir/bench_ext_path_baseline.cc.o"
  "CMakeFiles/bench_ext_path_baseline.dir/bench_ext_path_baseline.cc.o.d"
  "bench_ext_path_baseline"
  "bench_ext_path_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_path_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
