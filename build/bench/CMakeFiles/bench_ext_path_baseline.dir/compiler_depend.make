# Empty compiler generated dependencies file for bench_ext_path_baseline.
# This may be replaced when dependencies are built.
