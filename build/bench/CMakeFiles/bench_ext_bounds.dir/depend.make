# Empty dependencies file for bench_ext_bounds.
# This may be replaced when dependencies are built.
