file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bounds.dir/bench_ext_bounds.cc.o"
  "CMakeFiles/bench_ext_bounds.dir/bench_ext_bounds.cc.o.d"
  "bench_ext_bounds"
  "bench_ext_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
