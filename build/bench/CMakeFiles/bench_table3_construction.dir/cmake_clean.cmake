file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_construction.dir/bench_table3_construction.cc.o"
  "CMakeFiles/bench_table3_construction.dir/bench_table3_construction.cc.o.d"
  "bench_table3_construction"
  "bench_table3_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
