# Empty dependencies file for bench_ext_values.
# This may be replaced when dependencies are built.
