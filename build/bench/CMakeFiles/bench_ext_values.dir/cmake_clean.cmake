file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_values.dir/bench_ext_values.cc.o"
  "CMakeFiles/bench_ext_values.dir/bench_ext_values.cc.o.d"
  "bench_ext_values"
  "bench_ext_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
