# Empty compiler generated dependencies file for bench_fig10d_delta_accuracy.
# This may be replaced when dependencies are built.
