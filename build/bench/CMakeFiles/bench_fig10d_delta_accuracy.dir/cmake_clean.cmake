file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10d_delta_accuracy.dir/bench_fig10d_delta_accuracy.cc.o"
  "CMakeFiles/bench_fig10d_delta_accuracy.dir/bench_fig10d_delta_accuracy.cc.o.d"
  "bench_fig10d_delta_accuracy"
  "bench_fig10d_delta_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10d_delta_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
