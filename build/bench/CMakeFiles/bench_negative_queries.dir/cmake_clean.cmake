file(REMOVE_RECURSE
  "CMakeFiles/bench_negative_queries.dir/bench_negative_queries.cc.o"
  "CMakeFiles/bench_negative_queries.dir/bench_negative_queries.cc.o.d"
  "bench_negative_queries"
  "bench_negative_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_negative_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
