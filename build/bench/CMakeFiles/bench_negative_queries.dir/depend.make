# Empty dependencies file for bench_negative_queries.
# This may be replaced when dependencies are built.
