# Empty dependencies file for bench_fig10a_pruning.
# This may be replaced when dependencies are built.
