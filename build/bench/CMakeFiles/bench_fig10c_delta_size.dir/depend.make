# Empty dependencies file for bench_fig10c_delta_size.
# This may be replaced when dependencies are built.
