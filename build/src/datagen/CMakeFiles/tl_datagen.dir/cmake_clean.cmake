file(REMOVE_RECURSE
  "CMakeFiles/tl_datagen.dir/imdb.cc.o"
  "CMakeFiles/tl_datagen.dir/imdb.cc.o.d"
  "CMakeFiles/tl_datagen.dir/nasa.cc.o"
  "CMakeFiles/tl_datagen.dir/nasa.cc.o.d"
  "CMakeFiles/tl_datagen.dir/psd.cc.o"
  "CMakeFiles/tl_datagen.dir/psd.cc.o.d"
  "CMakeFiles/tl_datagen.dir/random_tree.cc.o"
  "CMakeFiles/tl_datagen.dir/random_tree.cc.o.d"
  "CMakeFiles/tl_datagen.dir/registry.cc.o"
  "CMakeFiles/tl_datagen.dir/registry.cc.o.d"
  "CMakeFiles/tl_datagen.dir/xmark.cc.o"
  "CMakeFiles/tl_datagen.dir/xmark.cc.o.d"
  "libtl_datagen.a"
  "libtl_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
