
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/imdb.cc" "src/datagen/CMakeFiles/tl_datagen.dir/imdb.cc.o" "gcc" "src/datagen/CMakeFiles/tl_datagen.dir/imdb.cc.o.d"
  "/root/repo/src/datagen/nasa.cc" "src/datagen/CMakeFiles/tl_datagen.dir/nasa.cc.o" "gcc" "src/datagen/CMakeFiles/tl_datagen.dir/nasa.cc.o.d"
  "/root/repo/src/datagen/psd.cc" "src/datagen/CMakeFiles/tl_datagen.dir/psd.cc.o" "gcc" "src/datagen/CMakeFiles/tl_datagen.dir/psd.cc.o.d"
  "/root/repo/src/datagen/random_tree.cc" "src/datagen/CMakeFiles/tl_datagen.dir/random_tree.cc.o" "gcc" "src/datagen/CMakeFiles/tl_datagen.dir/random_tree.cc.o.d"
  "/root/repo/src/datagen/registry.cc" "src/datagen/CMakeFiles/tl_datagen.dir/registry.cc.o" "gcc" "src/datagen/CMakeFiles/tl_datagen.dir/registry.cc.o.d"
  "/root/repo/src/datagen/xmark.cc" "src/datagen/CMakeFiles/tl_datagen.dir/xmark.cc.o" "gcc" "src/datagen/CMakeFiles/tl_datagen.dir/xmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/tl_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
