file(REMOVE_RECURSE
  "libtl_datagen.a"
)
