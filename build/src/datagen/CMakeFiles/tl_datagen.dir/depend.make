# Empty dependencies file for tl_datagen.
# This may be replaced when dependencies are built.
