file(REMOVE_RECURSE
  "libtl_xml.a"
)
