file(REMOVE_RECURSE
  "CMakeFiles/tl_xml.dir/document.cc.o"
  "CMakeFiles/tl_xml.dir/document.cc.o.d"
  "CMakeFiles/tl_xml.dir/parser.cc.o"
  "CMakeFiles/tl_xml.dir/parser.cc.o.d"
  "CMakeFiles/tl_xml.dir/stats.cc.o"
  "CMakeFiles/tl_xml.dir/stats.cc.o.d"
  "CMakeFiles/tl_xml.dir/writer.cc.o"
  "CMakeFiles/tl_xml.dir/writer.cc.o.d"
  "libtl_xml.a"
  "libtl_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
