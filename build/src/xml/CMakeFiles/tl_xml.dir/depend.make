# Empty dependencies file for tl_xml.
# This may be replaced when dependencies are built.
