file(REMOVE_RECURSE
  "libtl_match.a"
)
