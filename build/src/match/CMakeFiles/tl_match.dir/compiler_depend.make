# Empty compiler generated dependencies file for tl_match.
# This may be replaced when dependencies are built.
