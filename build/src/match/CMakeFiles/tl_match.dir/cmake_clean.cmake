file(REMOVE_RECURSE
  "CMakeFiles/tl_match.dir/brute_force.cc.o"
  "CMakeFiles/tl_match.dir/brute_force.cc.o.d"
  "CMakeFiles/tl_match.dir/matcher.cc.o"
  "CMakeFiles/tl_match.dir/matcher.cc.o.d"
  "libtl_match.a"
  "libtl_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
