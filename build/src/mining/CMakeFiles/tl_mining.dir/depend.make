# Empty dependencies file for tl_mining.
# This may be replaced when dependencies are built.
