file(REMOVE_RECURSE
  "CMakeFiles/tl_mining.dir/freqt_builder.cc.o"
  "CMakeFiles/tl_mining.dir/freqt_builder.cc.o.d"
  "CMakeFiles/tl_mining.dir/incremental.cc.o"
  "CMakeFiles/tl_mining.dir/incremental.cc.o.d"
  "CMakeFiles/tl_mining.dir/lattice_builder.cc.o"
  "CMakeFiles/tl_mining.dir/lattice_builder.cc.o.d"
  "libtl_mining.a"
  "libtl_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
