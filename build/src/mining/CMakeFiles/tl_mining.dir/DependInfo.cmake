
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/freqt_builder.cc" "src/mining/CMakeFiles/tl_mining.dir/freqt_builder.cc.o" "gcc" "src/mining/CMakeFiles/tl_mining.dir/freqt_builder.cc.o.d"
  "/root/repo/src/mining/incremental.cc" "src/mining/CMakeFiles/tl_mining.dir/incremental.cc.o" "gcc" "src/mining/CMakeFiles/tl_mining.dir/incremental.cc.o.d"
  "/root/repo/src/mining/lattice_builder.cc" "src/mining/CMakeFiles/tl_mining.dir/lattice_builder.cc.o" "gcc" "src/mining/CMakeFiles/tl_mining.dir/lattice_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/tl_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/twig/CMakeFiles/tl_twig.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/tl_match.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/tl_summary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
