file(REMOVE_RECURSE
  "libtl_mining.a"
)
