file(REMOVE_RECURSE
  "CMakeFiles/tl_treesketch.dir/tree_sketch.cc.o"
  "CMakeFiles/tl_treesketch.dir/tree_sketch.cc.o.d"
  "libtl_treesketch.a"
  "libtl_treesketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_treesketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
