file(REMOVE_RECURSE
  "libtl_treesketch.a"
)
