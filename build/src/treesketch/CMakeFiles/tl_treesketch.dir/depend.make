# Empty dependencies file for tl_treesketch.
# This may be replaced when dependencies are built.
