# Empty dependencies file for tl_summary.
# This may be replaced when dependencies are built.
