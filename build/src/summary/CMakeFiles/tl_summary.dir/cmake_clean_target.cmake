file(REMOVE_RECURSE
  "libtl_summary.a"
)
