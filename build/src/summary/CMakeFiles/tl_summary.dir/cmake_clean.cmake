file(REMOVE_RECURSE
  "CMakeFiles/tl_summary.dir/lattice_summary.cc.o"
  "CMakeFiles/tl_summary.dir/lattice_summary.cc.o.d"
  "libtl_summary.a"
  "libtl_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
