# Empty dependencies file for tl_xpath.
# This may be replaced when dependencies are built.
