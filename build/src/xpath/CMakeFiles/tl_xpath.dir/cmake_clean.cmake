file(REMOVE_RECURSE
  "CMakeFiles/tl_xpath.dir/xpath.cc.o"
  "CMakeFiles/tl_xpath.dir/xpath.cc.o.d"
  "libtl_xpath.a"
  "libtl_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
