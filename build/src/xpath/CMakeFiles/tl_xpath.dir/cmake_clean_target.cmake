file(REMOVE_RECURSE
  "libtl_xpath.a"
)
