
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twig/automorphisms.cc" "src/twig/CMakeFiles/tl_twig.dir/automorphisms.cc.o" "gcc" "src/twig/CMakeFiles/tl_twig.dir/automorphisms.cc.o.d"
  "/root/repo/src/twig/decompose.cc" "src/twig/CMakeFiles/tl_twig.dir/decompose.cc.o" "gcc" "src/twig/CMakeFiles/tl_twig.dir/decompose.cc.o.d"
  "/root/repo/src/twig/twig.cc" "src/twig/CMakeFiles/tl_twig.dir/twig.cc.o" "gcc" "src/twig/CMakeFiles/tl_twig.dir/twig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/tl_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
