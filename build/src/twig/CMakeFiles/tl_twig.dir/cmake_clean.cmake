file(REMOVE_RECURSE
  "CMakeFiles/tl_twig.dir/automorphisms.cc.o"
  "CMakeFiles/tl_twig.dir/automorphisms.cc.o.d"
  "CMakeFiles/tl_twig.dir/decompose.cc.o"
  "CMakeFiles/tl_twig.dir/decompose.cc.o.d"
  "CMakeFiles/tl_twig.dir/twig.cc.o"
  "CMakeFiles/tl_twig.dir/twig.cc.o.d"
  "libtl_twig.a"
  "libtl_twig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_twig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
