# Empty compiler generated dependencies file for tl_twig.
# This may be replaced when dependencies are built.
