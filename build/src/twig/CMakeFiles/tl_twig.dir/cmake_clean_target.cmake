file(REMOVE_RECURSE
  "libtl_twig.a"
)
