# Empty dependencies file for tl_twig.
# This may be replaced when dependencies are built.
