# Empty dependencies file for tl_workload.
# This may be replaced when dependencies are built.
