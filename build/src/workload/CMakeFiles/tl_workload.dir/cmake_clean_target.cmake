file(REMOVE_RECURSE
  "libtl_workload.a"
)
