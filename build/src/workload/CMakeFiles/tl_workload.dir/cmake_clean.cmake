file(REMOVE_RECURSE
  "CMakeFiles/tl_workload.dir/workload.cc.o"
  "CMakeFiles/tl_workload.dir/workload.cc.o.d"
  "libtl_workload.a"
  "libtl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
