file(REMOVE_RECURSE
  "CMakeFiles/tl_core.dir/calibrated_estimator.cc.o"
  "CMakeFiles/tl_core.dir/calibrated_estimator.cc.o.d"
  "CMakeFiles/tl_core.dir/explain.cc.o"
  "CMakeFiles/tl_core.dir/explain.cc.o.d"
  "CMakeFiles/tl_core.dir/fixed_size_estimator.cc.o"
  "CMakeFiles/tl_core.dir/fixed_size_estimator.cc.o.d"
  "CMakeFiles/tl_core.dir/markov_path_estimator.cc.o"
  "CMakeFiles/tl_core.dir/markov_path_estimator.cc.o.d"
  "CMakeFiles/tl_core.dir/path_decomposition_estimator.cc.o"
  "CMakeFiles/tl_core.dir/path_decomposition_estimator.cc.o.d"
  "CMakeFiles/tl_core.dir/pruning.cc.o"
  "CMakeFiles/tl_core.dir/pruning.cc.o.d"
  "CMakeFiles/tl_core.dir/recursive_estimator.cc.o"
  "CMakeFiles/tl_core.dir/recursive_estimator.cc.o.d"
  "libtl_core.a"
  "libtl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
