file(REMOVE_RECURSE
  "libtl_core.a"
)
