
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibrated_estimator.cc" "src/core/CMakeFiles/tl_core.dir/calibrated_estimator.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/calibrated_estimator.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/tl_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/explain.cc.o.d"
  "/root/repo/src/core/fixed_size_estimator.cc" "src/core/CMakeFiles/tl_core.dir/fixed_size_estimator.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/fixed_size_estimator.cc.o.d"
  "/root/repo/src/core/markov_path_estimator.cc" "src/core/CMakeFiles/tl_core.dir/markov_path_estimator.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/markov_path_estimator.cc.o.d"
  "/root/repo/src/core/path_decomposition_estimator.cc" "src/core/CMakeFiles/tl_core.dir/path_decomposition_estimator.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/path_decomposition_estimator.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/tl_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/recursive_estimator.cc" "src/core/CMakeFiles/tl_core.dir/recursive_estimator.cc.o" "gcc" "src/core/CMakeFiles/tl_core.dir/recursive_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/twig/CMakeFiles/tl_twig.dir/DependInfo.cmake"
  "/root/repo/build/src/summary/CMakeFiles/tl_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/tl_match.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/tl_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
