# Empty dependencies file for tl_core.
# This may be replaced when dependencies are built.
