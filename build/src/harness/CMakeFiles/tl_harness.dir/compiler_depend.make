# Empty compiler generated dependencies file for tl_harness.
# This may be replaced when dependencies are built.
