file(REMOVE_RECURSE
  "CMakeFiles/tl_harness.dir/experiment.cc.o"
  "CMakeFiles/tl_harness.dir/experiment.cc.o.d"
  "CMakeFiles/tl_harness.dir/flags.cc.o"
  "CMakeFiles/tl_harness.dir/flags.cc.o.d"
  "CMakeFiles/tl_harness.dir/metrics.cc.o"
  "CMakeFiles/tl_harness.dir/metrics.cc.o.d"
  "libtl_harness.a"
  "libtl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
