file(REMOVE_RECURSE
  "libtl_harness.a"
)
