file(REMOVE_RECURSE
  "CMakeFiles/tl_util.dir/rng.cc.o"
  "CMakeFiles/tl_util.dir/rng.cc.o.d"
  "CMakeFiles/tl_util.dir/status.cc.o"
  "CMakeFiles/tl_util.dir/status.cc.o.d"
  "CMakeFiles/tl_util.dir/string_util.cc.o"
  "CMakeFiles/tl_util.dir/string_util.cc.o.d"
  "libtl_util.a"
  "libtl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
