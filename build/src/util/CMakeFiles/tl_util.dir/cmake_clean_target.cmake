file(REMOVE_RECURSE
  "libtl_util.a"
)
