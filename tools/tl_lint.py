#!/usr/bin/env python3
"""TreeLattice project-convention linter (the custom leg of the static
analysis gate; see DESIGN.md §8 and tools/run_static_analysis.sh).

Checks, each suppressible per line with `// tl-lint: allow(<rule>)`:

  metric-literal   Every obs metric name used from src/ must be a constant
                   declared in src/obs/metric_names.h — no string literals
                   at MetricsRegistry::counter()/gauge()/histogram() call
                   sites, so the full telemetry surface lives in one header.
  metric-name      Constants in metric_names.h follow the naming scheme
                   lowercase dot-separated "<subsystem>.<metric>" and are
                   unique.
  metric-declared  Every serving-plane metric name string ("serve.*" or
                   "admin.*") appearing anywhere in src/ must be one of the
                   constants declared in src/obs/metric_names.h — a typo'd
                   or ad-hoc name would silently register a parallel metric
                   the dashboards never scrape.
  include-cycle    The src/<module> directories form a DAG under
                   #include "module/...": no include cycles between
                   modules (reported once per cycle, not per line).
  naked-new        No naked `new` expressions in src/ — ownership goes
                   through std::make_unique/std::make_shared/containers.
                   (Placement new and intentional leaks carry the
                   suppression comment with a justification.)
  string-key-map   No std::string-keyed hash containers
                   (unordered_map/unordered_set) in src/core or src/serve:
                   the estimation hot path probes by precomputed 64-bit
                   code hash (LatticeSummary slots, CodeMemo,
                   EstimateCache), and a string-keyed map re-hashes and
                   allocates per probe.
  canonical-in-loop
                   No Twig::CanonicalCode()/CanonicalHash() calls inside a
                   loop in src/core or src/serve — hoist the canonical form
                   out of the loop (it is cached on the Twig, but the call
                   inside a hot loop usually means a per-iteration twig is
                   being re-canonicalized).
  blocking-syscall No potentially blocking calls in the TCP event loop
                   (src/serve/transport.* and src/serve/conn.*): raw
                   read/write/accept/recv/send (socket I/O must go through
                   util/net.h's NetIo, whose every call is
                   MSG_DONTWAIT/O_NONBLOCK), select, and every flavor of
                   sleep. One blocking call anywhere in the loop stalls
                   every connection it serves.

Exit status: 0 clean, 1 findings, 2 usage/environment error.

Usage: tools/tl_lint.py [repo_root]
"""

import os
import re
import sys

ALLOW_RE = re.compile(r"//\s*tl-lint:\s*allow\(([a-z-]+)\)")

METRIC_CALL_RE = re.compile(
    r"(?:->|\.)\s*(?:counter|gauge|histogram)\s*\(\s*\"")
METRIC_CONST_RE = re.compile(
    r"inline\s+constexpr\s+char\s+(k\w+)\[\]\s*=\s*\"([^\"]*)\"")
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
SERVE_METRIC_STRING_RE = re.compile(
    r'"((?:serve|admin)\.[a-z0-9_]+(?:\.[a-z0-9_]+)*)"')
INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')
# `new` introducing an expression: after =, (, {, ",", return, or start of
# statement. Excludes identifiers like "renew" via \b.
NAKED_NEW_RE = re.compile(r"(?:^|[=({,;]|\breturn)\s*\bnew\b")
STRING_KEY_MAP_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<\s*(?:std\s*::\s*)?string\b")
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(|\bdo\s*\{")
CANONICAL_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?:CanonicalCode|CanonicalHash)\s*\(")
HOT_PATH_DIRS = [os.path.join("src", "core"), os.path.join("src", "serve")]

# Event-loop files that must never block (see blocking-syscall above).
EVENT_LOOP_FILES = [
    os.path.join("src", "serve", "transport.h"),
    os.path.join("src", "serve", "transport.cc"),
    os.path.join("src", "serve", "conn.h"),
    os.path.join("src", "serve", "conn.cc"),
]
BLOCKING_CALL_RE = re.compile(
    r"\b(read|write|pread|pwrite|accept|accept4|recv|recvfrom|recvmsg|"
    r"send|sendto|sendmsg|select|pselect|sleep|usleep|nanosleep|"
    r"fgets|fread|fwrite|getchar)\s*\(")
SLEEP_FOR_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")


def strip_comments_and_strings(line, in_block_comment, keep_strings=False):
    """Removes // and /* */ comment text and string-literal contents.

    Keeps the quotes of string literals (so call-site patterns like
    `counter("` still match) but blanks what is inside them — unless
    `keep_strings` is set, which preserves literal contents while still
    stripping comments (for rules that inspect the strings themselves).
    Returns (cleaned_line, still_in_block_comment).
    """
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                out.append(c)
                state = "string"
                i += 1
                continue
            if c == "'":
                # Skip char literal wholesale (handles '\'' and '\\').
                j = i + 1
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == "'":
                        break
                    j += 1
                i = j + 1
                continue
            out.append(c)
            i += 1
        elif state == "string":
            if c == "\\":
                if keep_strings:
                    out.append(line[i:i + 2])
                i += 2
                continue
            if c == '"':
                out.append(c)
                state = "code"
                i += 1
                continue
            if keep_strings:
                out.append(c)
            i += 1
        else:  # block comment
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
    return "".join(out), state == "block"


def iter_source_files(root, subdirs, exts=(".h", ".cc")):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def load_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def allowed(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


def check_metric_constants(root, findings):
    """Returns the set of declared metric name strings."""
    path = os.path.join(root, "src", "obs", "metric_names.h")
    names = {}
    if not os.path.exists(path):
        findings.append((path, 0, "metric-name",
                         "missing metric name registry header"))
        return names
    for lineno, raw in enumerate(load_lines(path), 1):
        m = METRIC_CONST_RE.search(raw)
        if not m:
            continue
        const, name = m.groups()
        if not METRIC_NAME_RE.match(name) and not allowed(raw, "metric-name"):
            findings.append(
                (path, lineno, "metric-name",
                 f'"{name}" is not lowercase dot-separated '
                 '"<subsystem>.<metric>"'))
        if name in names:
            findings.append(
                (path, lineno, "metric-name",
                 f'duplicate metric name "{name}" (also {names[name]})'))
        names[name] = const
    return names


def check_metric_literals(root, findings):
    for path in iter_source_files(root, ["src"]):
        if path.endswith(os.path.join("obs", "metric_names.h")):
            continue
        in_block = False
        for lineno, raw in enumerate(load_lines(path), 1):
            line, in_block = strip_comments_and_strings(raw, in_block)
            if METRIC_CALL_RE.search(line) and not allowed(
                    raw, "metric-literal"):
                findings.append(
                    (path, lineno, "metric-literal",
                     "metric name must be a constant from "
                     "obs/metric_names.h, not a string literal"))


def check_metric_declared(root, declared, findings):
    """Serving-plane metric strings must come from the declared registry."""
    for path in iter_source_files(root, ["src"]):
        if path.endswith(os.path.join("obs", "metric_names.h")):
            continue
        in_block = False
        for lineno, raw in enumerate(load_lines(path), 1):
            line, in_block = strip_comments_and_strings(
                raw, in_block, keep_strings=True)
            for m in SERVE_METRIC_STRING_RE.finditer(line):
                name = m.group(1)
                if name not in declared and not allowed(
                        raw, "metric-declared"):
                    findings.append(
                        (path, lineno, "metric-declared",
                         f'serving-plane metric name "{name}" is not '
                         "declared in obs/metric_names.h"))


def check_naked_new(root, findings):
    for path in iter_source_files(root, ["src", "tools"]):
        in_block = False
        for lineno, raw in enumerate(load_lines(path), 1):
            line, in_block = strip_comments_and_strings(raw, in_block)
            if NAKED_NEW_RE.search(line) and not allowed(raw, "naked-new"):
                findings.append(
                    (path, lineno, "naked-new",
                     "naked `new`: use std::make_unique/make_shared, or "
                     "suppress with a justification"))


def check_string_key_maps(root, findings):
    for path in iter_source_files(root, HOT_PATH_DIRS):
        in_block = False
        for lineno, raw in enumerate(load_lines(path), 1):
            line, in_block = strip_comments_and_strings(raw, in_block)
            if STRING_KEY_MAP_RE.search(line) and not allowed(
                    raw, "string-key-map"):
                findings.append(
                    (path, lineno, "string-key-map",
                     "std::string-keyed hash container on the estimation "
                     "hot path: key by precomputed 64-bit code hash "
                     "(see CodeMemo / LatticeSummary slots)"))


def check_canonical_in_loop(root, findings):
    """Flags CanonicalCode()/CanonicalHash() calls lexically inside a loop.

    Line-based heuristic: a `for`/`while`/`do` header opens a loop region
    that ends at its matching close brace (or, for a braceless body, at the
    next statement-ending `;` at the same depth). Nesting is tracked by
    brace depth on comment/string-stripped text.
    """
    for path in iter_source_files(root, HOT_PATH_DIRS):
        in_block = False
        depth = 0
        parens = 0
        loop_depths = []   # brace depths whose region is a loop body
        pending_loop = False  # header seen, body brace (or `;`) not yet
        for lineno, raw in enumerate(load_lines(path), 1):
            line, in_block = strip_comments_and_strings(raw, in_block)
            if LOOP_HEADER_RE.search(line):
                # Calls on the header line itself count as in-loop; the
                # region bookkeeping below handles following lines.
                pending_loop = True
            in_loop = bool(loop_depths) or pending_loop
            if (in_loop and CANONICAL_CALL_RE.search(line)
                    and not allowed(raw, "canonical-in-loop")):
                findings.append(
                    (path, lineno, "canonical-in-loop",
                     "CanonicalCode()/CanonicalHash() inside a loop: hoist "
                     "the canonical form out of the loop"))
            for c in line:
                if c == "(":
                    parens += 1
                elif c == ")":
                    parens = max(0, parens - 1)
                elif c == "{":
                    depth += 1
                    if pending_loop:
                        loop_depths.append(depth)
                        pending_loop = False
                elif c == "}":
                    if loop_depths and loop_depths[-1] == depth:
                        loop_depths.pop()
                    depth = max(0, depth - 1)
                elif c == ";" and pending_loop and parens == 0:
                    # Braceless single-statement loop body ends here; the
                    # header's own `;`s are inside its parentheses.
                    pending_loop = False


def check_blocking_syscalls(root, findings):
    for rel in EVENT_LOOP_FILES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        in_block = False
        for lineno, raw in enumerate(load_lines(path), 1):
            line, in_block = strip_comments_and_strings(raw, in_block)
            m = BLOCKING_CALL_RE.search(line)
            call = m.group(1) if m else None
            # recv/send with MSG_DONTWAIT and accept4 with SOCK_NONBLOCK
            # cannot block; anything else on the list can.
            if call and call.startswith(("recv", "send")) \
                    and "MSG_DONTWAIT" in line:
                call = None
            if call == "accept4" and "SOCK_NONBLOCK" in line:
                call = None
            if call is None and SLEEP_FOR_RE.search(line):
                call = "sleep_for"
            if call and not allowed(raw, "blocking-syscall"):
                findings.append(
                    (path, lineno, "blocking-syscall",
                     f"`{call}` can block the event loop: socket I/O goes "
                     "through util/net.h NetIo (MSG_DONTWAIT), waiting "
                     "through util/event_poller.h"))


def check_include_cycles(root, findings):
    src = os.path.join(root, "src")
    modules = sorted(
        d for d in os.listdir(src) if os.path.isdir(os.path.join(src, d)))
    module_set = set(modules)
    edges = {m: set() for m in modules}
    for module in modules:
        for path in iter_source_files(src, [module]):
            in_block = False
            for raw in load_lines(path):
                # keep_strings: the include target IS a string literal —
                # blanking it (the old behavior) made this rule vacuous.
                line, in_block = strip_comments_and_strings(
                    raw, in_block, keep_strings=True)
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group(1).split("/", 1)[0]
                if target in module_set and target != module:
                    edges[module].add(target)

    # Iterative DFS cycle detection; report each cycle once.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in modules}
    stack_path = []

    def dfs(start):
        stack = [(start, iter(sorted(edges[start])))]
        color[start] = GRAY
        stack_path.append(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    cycle = stack_path[stack_path.index(nxt):] + [nxt]
                    findings.append(
                        (os.path.join(src, node), 0, "include-cycle",
                         "module include cycle: " + " -> ".join(cycle)))
                elif color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack_path.append(nxt)
                    stack.append((nxt, iter(sorted(edges[nxt]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack_path.pop()
                stack.pop()

    for module in modules:
        if color[module] == WHITE:
            dfs(module)


def main(argv):
    import argparse
    parser = argparse.ArgumentParser(prog="tl_lint.py")
    parser.add_argument("root", nargs="?", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument(
        "--no-blocking-syscall", action="store_true",
        help="skip the file-scoped blocking-syscall regex rule — used when "
        "tl_analyze's call-graph loop-blocking check (its semantic "
        "replacement) runs in the same gate; the regex rule remains the "
        "fallback when libclang is unavailable")
    args = parser.parse_args(argv[1:])
    root = args.root
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"tl_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    declared = check_metric_constants(root, findings)
    check_metric_literals(root, findings)
    check_metric_declared(root, declared, findings)
    check_naked_new(root, findings)
    check_string_key_maps(root, findings)
    check_canonical_in_loop(root, findings)
    if not args.no_blocking_syscall:
        check_blocking_syscalls(root, findings)
    check_include_cycles(root, findings)

    for path, lineno, rule, message in sorted(findings):
        rel = os.path.relpath(path, root)
        where = f"{rel}:{lineno}" if lineno else rel
        print(f"{where}: [{rule}] {message}")
    if findings:
        print(f"tl_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tl_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
