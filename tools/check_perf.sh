#!/bin/sh
# Guards the machine-independent perf ratios (DESIGN.md "Estimation hot
# path", §14 "Batched estimation"). Each guarded bench measures a
# production path against an in-bench reference on the same workload,
# asserts bit-identical estimates first, and reports a `speedup` ratio:
#
#   hotpath  bench_ext_hotpath — interned/flat-hash estimation vs the
#            legacy string-keyed replica (size-8 voting queries);
#   batch    bench_ext_batch — batch-64 EstimateBatch vs the sequential
#            single-query path over the same query stream.
#
# For every checked name:
#   - speedup must stay >= MIN_SPEEDUP (default 2.0, the tentpole target);
#   - speedup must stay within TOLERANCE_PCT (default 25%) of the committed
#     baseline bench/baselines/<name>.json. Below the band fails (a
#     regression); above it passes with a notice to re-baseline.
#
#   tools/check_perf.sh [build_dir] [name...]     (default: all names)
#
# Run records are written to BENCH_<name>.json at the repo root.
# Environment: TOLERANCE_PCT, MIN_SPEEDUP, BENCH_FLAGS (extra bench flags
# applied to every name, overriding the per-name defaults that keep the
# `perf` ctest label fast).
set -eu

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift
NAMES="${*:-hotpath batch}"
SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
REPO_ROOT=$(dirname "$SCRIPT_DIR")
TOLERANCE_PCT="${TOLERANCE_PCT:-25}"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"

PYTHON=$(command -v python3 || command -v python) || {
  echo "error: python3 required to parse bench JSON" >&2
  exit 2
}

check_one() {
  name="$1"
  BIN="$BUILD_DIR/bench/bench_ext_$name"
  BASELINE="$REPO_ROOT/bench/baselines/$name.json"
  OUT_JSON="$REPO_ROOT/BENCH_$name.json"
  case "$name" in
    hotpath) default_flags="--scale=400 --queries=16 --reps=3" ;;
    batch) default_flags="--scale=400 --pool=12 --stream=128 --reps=3" ;;
    *) default_flags="" ;;
  esac
  flags="${BENCH_FLAGS:-$default_flags}"

  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    return 2
  fi
  if [ ! -f "$BASELINE" ]; then
    echo "error: $BASELINE not found" >&2
    return 2
  fi

  echo "=== bench_ext_$name $flags -> $OUT_JSON ==="
  # shellcheck disable=SC2086 # flags are intentionally word-split
  "$BIN" --json="$OUT_JSON" $flags

  "$PYTHON" - "$OUT_JSON" "$BASELINE" "$TOLERANCE_PCT" "$MIN_SPEEDUP" "$name" <<'EOF'
import json, sys

out_path, baseline_path, tolerance_pct, min_speedup, name = sys.argv[1:6]
tolerance = float(tolerance_pct) / 100.0
floor = float(min_speedup)

measured = json.load(open(out_path))["results"]["speedup"]
baseline = json.load(open(baseline_path))["results"]["speedup"]

low = baseline * (1.0 - tolerance)
high = baseline * (1.0 + tolerance)
print(f"{name} speedup: measured {measured:.2f}x, baseline {baseline:.2f}x, "
      f"band [{low:.2f}x, {high:.2f}x], floor {floor:.2f}x")

if measured < floor:
    print(f"FAIL: {name} speedup {measured:.2f}x below the {floor:.2f}x floor",
          file=sys.stderr)
    sys.exit(1)
if measured < low:
    print(f"FAIL: {name} speedup {measured:.2f}x regressed below the baseline "
          f"band (update bench/baselines/{name}.json only with a rationale)",
          file=sys.stderr)
    sys.exit(1)
if measured > high:
    print(f"NOTE: {name} speedup {measured:.2f}x above the baseline band — "
          f"re-baseline bench/baselines/{name}.json to tighten the guard")
print(f"OK: {name} speedup within the guard band")
EOF
}

status=0
for name in $NAMES; do
  check_one "$name" || status=$?
done
exit $status
