#!/bin/sh
# Guards the estimation hot path (DESIGN.md "Estimation hot path"):
# bench_ext_hotpath runs the interned production path and an in-bench
# replica of the legacy string-keyed path over the same size-8 voting
# workload (asserting bit-identical estimates), and its `speedup` result is
# the machine-independent ratio this script checks:
#
#   - speedup must stay >= MIN_SPEEDUP (default 2.0, the tentpole target);
#   - speedup must stay within TOLERANCE_PCT (default 25%) of the committed
#     baseline bench/baselines/hotpath.json. Below the band fails (a hot-
#     path regression); above it passes with a notice to re-baseline.
#
#   tools/check_perf.sh [build_dir]
#
# The run record is written to BENCH_hotpath.json at the repo root.
# Environment: TOLERANCE_PCT, MIN_SPEEDUP, BENCH_FLAGS (extra bench flags,
# default a reduced workload so the `perf` ctest label stays fast).
set -eu

BUILD_DIR="${1:-build}"
SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
REPO_ROOT=$(dirname "$SCRIPT_DIR")
BIN="$BUILD_DIR/bench/bench_ext_hotpath"
BASELINE="$REPO_ROOT/bench/baselines/hotpath.json"
OUT_JSON="$REPO_ROOT/BENCH_hotpath.json"
TOLERANCE_PCT="${TOLERANCE_PCT:-25}"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
BENCH_FLAGS="${BENCH_FLAGS:---scale=400 --queries=16 --reps=3}"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi
if [ ! -f "$BASELINE" ]; then
  echo "error: $BASELINE not found" >&2
  exit 2
fi

PYTHON=$(command -v python3 || command -v python) || {
  echo "error: python3 required to parse bench JSON" >&2
  exit 2
}

echo "=== bench_ext_hotpath $BENCH_FLAGS -> $OUT_JSON ==="
# shellcheck disable=SC2086 # BENCH_FLAGS is intentionally word-split
"$BIN" --json="$OUT_JSON" $BENCH_FLAGS

"$PYTHON" - "$OUT_JSON" "$BASELINE" "$TOLERANCE_PCT" "$MIN_SPEEDUP" <<'EOF'
import json, sys

out_path, baseline_path, tolerance_pct, min_speedup = sys.argv[1:5]
tolerance = float(tolerance_pct) / 100.0
floor = float(min_speedup)

measured = json.load(open(out_path))["results"]["speedup"]
baseline = json.load(open(baseline_path))["results"]["speedup"]

low = baseline * (1.0 - tolerance)
high = baseline * (1.0 + tolerance)
print(f"speedup: measured {measured:.2f}x, baseline {baseline:.2f}x, "
      f"band [{low:.2f}x, {high:.2f}x], floor {floor:.2f}x")

if measured < floor:
    print(f"FAIL: speedup {measured:.2f}x below the {floor:.2f}x floor",
          file=sys.stderr)
    sys.exit(1)
if measured < low:
    print(f"FAIL: speedup {measured:.2f}x regressed below the baseline band "
          f"(update bench/baselines/hotpath.json only with a rationale)",
          file=sys.stderr)
    sys.exit(1)
if measured > high:
    print(f"NOTE: speedup {measured:.2f}x above the baseline band — "
          f"re-baseline bench/baselines/hotpath.json to tighten the guard")
print("OK: hot-path speedup within the guard band")
EOF
