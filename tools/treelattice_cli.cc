// treelattice — command-line front end for the library.
//
//   treelattice build <doc.xml> --out=<summary> [--level=4]
//       [--prune-delta=<d>]        mine a K-lattice summary from XML
//   treelattice stats <summary>    print per-level pattern counts & size
//   treelattice estimate <summary> <query>... [--estimator=recursive|
//       voting|voting-median|fixed] estimate selectivity of queries
//   treelattice truth <doc.xml> <query>...
//                                  exact match counts (ground truth)
//
// Queries may be written in the twig format "a(b,c(d))" or as an XPath
// subset "/a/b[c][d/e]" — anything containing '/' or '[' is treated as
// XPath. Summaries are written as two files: <out> (the lattice) and
// <out>.dict (the label dictionary), so estimation never needs the
// original document.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/explain.h"
#include "core/fixed_size_estimator.h"
#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "harness/flags.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "xml/parser.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  treelattice build <doc.xml> --out=<summary> [--level=4] "
               "[--prune-delta=<d>]\n"
               "  treelattice stats <summary>\n"
               "  treelattice estimate <summary> <query>... "
               "[--estimator=recursive|voting|voting-median|fixed] "
               "[--explain]\n"
               "  treelattice truth <doc.xml> <query>...\n");
  return 2;
}

Status SaveDict(const LabelDict& dict, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (size_t i = 0; i < dict.size(); ++i) {
    out << dict.Name(static_cast<LabelId>(i)) << '\n';
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<LabelDict> LoadDict(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  LabelDict dict;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) dict.Intern(line);
  }
  return dict;
}

Result<Twig> ParseQuery(const std::string& text, LabelDict* dict) {
  if (text.find('/') != std::string::npos ||
      text.find('[') != std::string::npos) {
    return CompileXPath(text, dict);
  }
  return Twig::Parse(text, dict);
}

/// Positional (non --flag) arguments after the subcommand.
std::vector<std::string> Positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) out.emplace_back(argv[i]);
  }
  return out;
}

int RunBuild(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "build: --out=<summary> is required\n");
    return 2;
  }

  WallTimer timer;
  Result<Document> doc = ParseXmlFile(args[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu elements in %.2fs\n", doc->NumNodes(),
              timer.ElapsedSeconds());

  LatticeBuildOptions options;
  options.max_level = static_cast<int>(flags.GetInt("level", 4));
  LatticeBuildStats stats;
  Result<LatticeSummary> summary = BuildLattice(*doc, options, &stats);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu patterns (levels 1-%d) in %.2fs\n",
              summary->NumPatterns(), options.max_level, stats.build_seconds);

  double delta = flags.GetDouble("prune-delta", -1.0);
  if (delta >= 0.0) {
    PruneOptions prune;
    prune.delta = delta;
    PruneStats prune_stats;
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(*summary, prune, &prune_stats);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
      return 1;
    }
    std::printf("pruned %zu derivable patterns (delta=%.2f): %s -> %s\n",
                prune_stats.patterns_before - prune_stats.patterns_after,
                delta, HumanBytes(prune_stats.bytes_before).c_str(),
                HumanBytes(prune_stats.bytes_after).c_str());
    summary = std::move(pruned);
  }

  if (Status s = summary->SaveToFile(out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = SaveDict(doc->dict(), out_path + ".dict"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%s) and %s.dict\n", out_path.c_str(),
              HumanBytes(summary->MemoryBytes()).c_str(), out_path.c_str());
  return 0;
}

int RunStats(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  Result<LatticeSummary> summary = LatticeSummary::LoadFromFile(args[0]);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("max level:        %d\n", summary->max_level());
  std::printf("complete through: %d\n", summary->complete_through_level());
  for (int level = 1; level <= summary->max_level(); ++level) {
    std::printf("level %d patterns: %zu\n", level,
                summary->NumPatterns(level));
  }
  std::printf("total:            %zu patterns, %s\n", summary->NumPatterns(),
              HumanBytes(summary->MemoryBytes()).c_str());
  return 0;
}

int RunEstimate(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() < 2) return Usage();
  Result<LatticeSummary> summary = LatticeSummary::LoadFromFile(args[0]);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  Result<LabelDict> dict = LoadDict(args[0] + ".dict");
  if (!dict.ok()) {
    std::fprintf(stderr, "%s (summaries written by 'build' carry a .dict "
                         "sidecar)\n",
                 dict.status().ToString().c_str());
    return 1;
  }

  std::string kind = flags.GetString("estimator", "recursive");
  std::unique_ptr<SelectivityEstimator> estimator;
  using Options = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  if (kind == "recursive") {
    estimator =
        std::make_unique<RecursiveDecompositionEstimator>(&*summary);
  } else if (kind == "voting") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(
        &*summary, Options{true, 0, Agg::kMean});
  } else if (kind == "voting-median") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(
        &*summary, Options{true, 0, Agg::kMedian});
  } else if (kind == "fixed") {
    estimator =
        std::make_unique<FixedSizeDecompositionEstimator>(&*summary);
  } else {
    std::fprintf(stderr, "unknown estimator '%s'\n", kind.c_str());
    return 2;
  }

  const bool explain = flags.GetBool("explain", false);
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<Twig> query = ParseQuery(args[i], &*dict);
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   query.status().ToString().c_str());
      ++failures;
      continue;
    }
    WallTimer timer;
    Result<double> estimate = estimator->Estimate(*query);
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   estimate.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-50s %14.2f   (%.0f us, %s)\n", args[i].c_str(), *estimate,
                timer.ElapsedMicros(), estimator->name().c_str());
    if (explain) {
      Result<std::unique_ptr<ExplainNode>> trace =
          ExplainEstimate(*summary, *query, *dict);
      if (trace.ok()) {
        std::printf("%s", RenderExplain(**trace).c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunTruth(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() < 2) return Usage();
  Result<Document> doc = ParseXmlFile(args[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  MatchCounter counter(*doc);
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<Twig> query = ParseQuery(args[i], &doc->mutable_dict());
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   query.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-50s %14llu\n", args[i].c_str(),
                static_cast<unsigned long long>(counter.Count(*query)));
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string command = argv[1];
  if (command == "build") return RunBuild(argc, argv, flags);
  if (command == "stats") return RunStats(argc, argv);
  if (command == "estimate") return RunEstimate(argc, argv, flags);
  if (command == "truth") return RunTruth(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) { return treelattice::Main(argc, argv); }
