// treelattice — command-line front end for the library.
//
//   treelattice build <doc.xml> --out=<summary> [--level=4]
//       [--prune-delta=<d>]        mine a K-lattice summary from XML
//   treelattice stats <summary>    print per-level pattern counts & size
//   treelattice verify <summary>   check checksums, print per-level integrity
//   treelattice estimate <summary> <query>... [--estimator=recursive|
//       voting|voting-median|fixed] estimate selectivity of queries
//   treelattice truth <doc.xml> <query>...
//                                  exact match counts (ground truth)
//
// Queries may be written in the twig format "a(b,c(d))" or as an XPath
// subset "/a/b[c][d/e]" — anything containing '/' or '[' is treated as
// XPath. `build` writes a single TLSUMMARY v2 container (checksummed,
// written atomically, label dictionary embedded), so estimation never
// needs the original document or a sidecar file. Summaries from older
// builds (v1 text + <out>.dict sidecar) still load.

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/explain.h"
#include "core/fixed_size_estimator.h"
#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "harness/flags.h"
#include "io/env.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "xml/dict_codec.h"
#include "xml/parser.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  treelattice build <doc.xml> --out=<summary> [--level=4] "
               "[--prune-delta=<d>]\n"
               "  treelattice stats <summary>\n"
               "  treelattice verify <summary>\n"
               "  treelattice estimate <summary> <query>... "
               "[--estimator=recursive|voting|voting-median|fixed] "
               "[--explain]\n"
               "  treelattice truth <doc.xml> <query>...\n");
  return 2;
}

Result<Twig> ParseQuery(const std::string& text, LabelDict* dict) {
  if (text.find('/') != std::string::npos ||
      text.find('[') != std::string::npos) {
    return CompileXPath(text, dict);
  }
  return Twig::Parse(text, dict);
}

/// Positional (non --flag) arguments after the subcommand.
std::vector<std::string> Positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) out.emplace_back(argv[i]);
  }
  return out;
}

/// Loads a summary for read commands, warning on salvage. Returns nullopt
/// (after printing the error) when nothing loadable exists.
std::optional<LoadedSummary> LoadOrComplain(const std::string& path) {
  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return std::nullopt;
  }
  if (loaded->salvaged) {
    std::fprintf(stderr,
                 "warning: %s is damaged (%s); salvaged %zu patterns, "
                 "complete through level %d\n",
                 path.c_str(), loaded->corruption_detail.c_str(),
                 loaded->summary.NumPatterns(),
                 loaded->summary.complete_through_level());
  }
  return std::move(*loaded);
}

int RunBuild(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "build: --out=<summary> is required\n");
    return 2;
  }

  WallTimer timer;
  Result<Document> doc = ParseXmlFile(args[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu elements in %.2fs\n", doc->NumNodes(),
              timer.ElapsedSeconds());

  LatticeBuildOptions options;
  options.max_level = static_cast<int>(flags.GetInt("level", 4));
  LatticeBuildStats stats;
  Result<LatticeSummary> summary = BuildLattice(*doc, options, &stats);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu patterns (levels 1-%d) in %.2fs\n",
              summary->NumPatterns(), options.max_level, stats.build_seconds);

  double delta = flags.GetDouble("prune-delta", -1.0);
  if (delta >= 0.0) {
    PruneOptions prune;
    prune.delta = delta;
    PruneStats prune_stats;
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(*summary, prune, &prune_stats);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
      return 1;
    }
    std::printf("pruned %zu derivable patterns (delta=%.2f): %s -> %s\n",
                prune_stats.patterns_before - prune_stats.patterns_after,
                delta, HumanBytes(prune_stats.bytes_before).c_str(),
                HumanBytes(prune_stats.bytes_after).c_str());
    summary = std::move(pruned);
  }

  if (Status s = SaveSummaryV2(*summary, &doc->dict(), Env::Default(),
                               out_path);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<uint64_t> file_size = Env::Default()->GetFileSize(out_path);
  std::printf("wrote %s (%s, dict embedded)\n", out_path.c_str(),
              HumanBytes(file_size.ok() ? *file_size : 0).c_str());
  return 0;
}

int RunStats(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  std::optional<LoadedSummary> loaded = LoadOrComplain(args[0]);
  if (!loaded) return 1;
  const LatticeSummary& summary = loaded->summary;
  std::printf("format:           TLSUMMARY v%d\n", loaded->format_version);
  std::printf("max level:        %d\n", summary.max_level());
  std::printf("complete through: %d\n", summary.complete_through_level());
  std::printf("dict:             %s\n",
              loaded->dict ? "embedded" : "none (v1 sidecar)");
  for (int level = 1; level <= summary.max_level(); ++level) {
    std::printf("level %d patterns: %zu\n", level, summary.NumPatterns(level));
  }
  std::printf("total:            %zu patterns, %s\n", summary.NumPatterns(),
              HumanBytes(summary.MemoryBytes()).c_str());
  return 0;
}

int RunVerify(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  Result<VerifyReport> report = VerifySummaryFile(Env::Default(), args[0]);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("format:           TLSUMMARY v%d\n", report->format_version);
  if (report->format_version == 2) {
    std::printf("max level:        %d\n", report->max_level);
    std::printf("complete through: %d\n", report->complete_through_level);
    std::printf("declared patterns:%llu\n",
                static_cast<unsigned long long>(report->total_patterns));
    for (const SectionIntegrity& section : report->sections) {
      std::string name;
      switch (section.tag) {
        case 'D':
          name = "dict";
          break;
        case 'L':
          name = "level " + std::to_string(section.level);
          break;
        default:
          name = "end marker";
      }
      if (section.intact) {
        if (section.tag == 'L') {
          std::printf("%-12s OK       %llu patterns\n", name.c_str(),
                      static_cast<unsigned long long>(section.patterns));
        } else {
          std::printf("%-12s OK\n", name.c_str());
        }
      } else {
        std::printf("%-12s CORRUPT  %s\n", name.c_str(),
                    section.detail.c_str());
      }
    }
  }
  if (report->intact) {
    std::printf("RESULT: intact\n");
    return 0;
  }
  std::printf("RESULT: CORRUPT (%s); salvage keeps complete through level %d\n",
              report->detail.c_str(),
              report->salvage_complete_through_level);
  return 1;
}

int RunEstimate(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() < 2) return Usage();
  std::optional<LoadedSummary> loaded = LoadOrComplain(args[0]);
  if (!loaded) return 1;
  const LatticeSummary& summary = loaded->summary;

  std::optional<LabelDict> dict = std::move(loaded->dict);
  if (!dict) {
    // v1 summaries (and v2 files whose dict section was lost) fall back to
    // the .dict sidecar written by older builds.
    Result<LabelDict> sidecar = LoadLabelDict(Env::Default(),
                                              args[0] + ".dict");
    if (!sidecar.ok()) {
      std::fprintf(stderr,
                   "%s (no dictionary: v2 summaries embed one, v1 summaries "
                   "need the .dict sidecar next to the file)\n",
                   sidecar.status().ToString().c_str());
      return 1;
    }
    dict = std::move(*sidecar);
  }

  std::string kind = flags.GetString("estimator", "recursive");
  std::unique_ptr<SelectivityEstimator> estimator;
  using Options = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  if (kind == "recursive") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(&summary);
  } else if (kind == "voting") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(
        &summary, Options{true, 0, Agg::kMean});
  } else if (kind == "voting-median") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(
        &summary, Options{true, 0, Agg::kMedian});
  } else if (kind == "fixed") {
    estimator = std::make_unique<FixedSizeDecompositionEstimator>(&summary);
  } else {
    std::fprintf(stderr, "unknown estimator '%s'\n", kind.c_str());
    return 2;
  }

  const bool explain = flags.GetBool("explain", false);
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<Twig> query = ParseQuery(args[i], &*dict);
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   query.status().ToString().c_str());
      ++failures;
      continue;
    }
    WallTimer timer;
    Result<double> estimate = estimator->Estimate(*query);
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   estimate.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-50s %14.2f   (%.0f us, %s)\n", args[i].c_str(), *estimate,
                timer.ElapsedMicros(), estimator->name().c_str());
    if (explain) {
      Result<std::unique_ptr<ExplainNode>> trace =
          ExplainEstimate(summary, *query, *dict);
      if (trace.ok()) {
        std::printf("%s", RenderExplain(**trace).c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunTruth(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() < 2) return Usage();
  Result<Document> doc = ParseXmlFile(args[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  MatchCounter counter(*doc);
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<Twig> query = ParseQuery(args[i], &doc->mutable_dict());
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   query.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-50s %14llu\n", args[i].c_str(),
                static_cast<unsigned long long>(counter.Count(*query)));
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string command = argv[1];
  if (command == "build") return RunBuild(argc, argv, flags);
  if (command == "stats") return RunStats(argc, argv);
  if (command == "verify") return RunVerify(argc, argv);
  if (command == "estimate") return RunEstimate(argc, argv, flags);
  if (command == "truth") return RunTruth(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) { return treelattice::Main(argc, argv); }
