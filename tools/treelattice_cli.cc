// treelattice — command-line front end for the library.
//
//   treelattice build <doc.xml> --out=<summary> [--level=4]
//       [--prune-delta=<d>]        mine a K-lattice summary from XML
//   treelattice stats <summary>    print per-level pattern counts & size
//   treelattice verify <summary>   check checksums, print per-level integrity
//   treelattice estimate <summary> <query>... [--estimator=recursive|
//       voting|voting-median|fixed] estimate selectivity of queries
//   treelattice truth <doc.xml> <query>...
//                                  exact match counts (ground truth)
//   treelattice serve <summary> [--workers=4] [--queue=128]
//       [--deadline-ms=<d>] [--max-steps=<n>]
//                                  answer newline-delimited queries on stdin
//                                  with JSON lines on stdout until EOF or
//                                  SIGTERM/SIGINT (graceful drain)
//
// Queries may be written in the twig format "a(b,c(d))" or as an XPath
// subset "/a/b[c][d/e]" — anything containing '/' or '[' is treated as
// XPath. `build` writes a single TLSUMMARY v2 container (checksummed,
// written atomically, label dictionary embedded), so estimation never
// needs the original document or a sidecar file. Summaries from older
// builds (v1 text + <out>.dict sidecar) still load.
//
// Every subcommand also takes the telemetry flags
//   --metrics=<file|->           dump the metrics registry after the command
//   --metrics-format=json|prom   registry dump format (default json)
//   --trace=<file>               write a Chrome trace_event JSON file
// and `estimate --json` prints one JSON record per query instead of the
// human table.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_estimator.h"
#include "core/estimator_metrics.h"
#include "core/explain.h"
#include "core/fixed_size_estimator.h"
#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "harness/flags.h"
#include "io/env.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/introspect.h"
#include "serve/server.h"
#include "serve/slow_log.h"
#include "serve/snapshot.h"
#include "serve/transport.h"
#include "util/net.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "xml/dict_codec.h"
#include "xml/parser.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  treelattice build <doc.xml> --out=<summary> [--level=4] "
               "[--prune-delta=<d>]\n"
               "  treelattice stats <summary>\n"
               "  treelattice verify <summary>\n"
               "  treelattice estimate <summary> <query>... "
               "[--estimator=recursive|voting|voting-median|fixed] "
               "[--explain] [--json] [--batch]\n"
               "  treelattice truth <doc.xml> <query>...\n"
               "  treelattice serve <summary> [--workers=4] [--queue=128]\n"
               "      [--deadline-ms=<d>] [--max-steps=<n>] "
               "[--estimator=voting|recursive|voting-median]\n"
               "      [--reload-attempts=3] [--reload-backoff-ms=10] "
               "[--worker-delay-ms=0]\n"
               "      [--cache=1] [--cache-capacity=1024]\n"
               "      [--listen=<host:port>] [--max-conns=1024] "
               "[--max-frame-bytes=1048576]\n"
               "      [--idle-timeout-ms=300000] [--request-timeout-ms=30000] "
               "[--drain-ms=5000]\n"
               "      [--write-high-water=1048576] [--poll] "
               "[--net-fault-seed=<s>]\n"
               "      [--net-fault-short=<p>] [--net-fault-eagain=<p>] "
               "[--net-fault-reset=<p>]\n"
               "      [--admin=<host:port>] [--slow-threshold-ms=250] "
               "[--slow-log-size=128]\n"
               "      [--trace-flush-ms=1000]\n"
               "\n"
               "serve reads one request per line from stdin — a bare query, "
               "or a JSON\nenvelope {\"query\":...,\"deadline_ms\":...,"
               "\"max_steps\":...,\"id\":...} — and\nwrites one JSON response "
               "per request to stdout. Control lines: '#reload'\nhot-swaps "
               "the summary from disk (keeping the old snapshot on failure),\n"
               "'#stats' prints a stats record. SIGTERM/SIGINT or EOF drain "
               "gracefully.\n"
               "\n"
               "serve --listen answers the same protocol over TCP instead of "
               "stdin:\nmany concurrent connections, pipelined NDJSON, "
               "backpressure, idle and\nslowloris timeouts, a connection cap "
               "with ResourceExhausted turn-away,\nand graceful drain on "
               "SIGTERM (unfinished work is cancelled after\n--drain-ms, "
               "stuck peers closed at twice that). --listen=:0 picks an\n"
               "ephemeral port, printed as 'serve: listening on "
               "<host>:<port>'.\n"
               "\n"
               "serve --listen --admin=<host:port> adds an HTTP introspection "
               "plane on the\nsame event loop: GET /metrics (Prometheus), "
               "/healthz (readiness), /statusz\n(full status JSON), /slowz "
               "(slow-query log). Requests slower than\n--slow-threshold-ms "
               "are kept (newest --slow-log-size) with their full\nstage "
               "timeline and twig shape. With --trace, serve flushes the "
               "trace file\nevery --trace-flush-ms so it survives an abnormal "
               "exit.\n"
               "\n"
               "telemetry flags (any subcommand):\n"
               "  --metrics=<file|->           dump the metrics registry "
               "after the command\n"
               "  --metrics-format=json|prom   dump format (default json)\n"
               "  --trace=<file>               write Chrome trace_event JSON "
               "(chrome://tracing)\n"
               "\n"
               "estimate --json prints one JSON record per query (estimate, "
               "wall micros,\nsummary lookup and decomposition counters). "
               "--explain traces the non-voting\ndecomposition path: with a "
               "voting estimator the trace shows one\nrepresentative path "
               "and its root may differ from the voted estimate.\n"
               "\n"
               "estimate --batch answers all queries through the batched "
               "pipeline\n(DESIGN.md §14): one canonicalization pass, "
               "cross-query sub-twig dedup,\ngrouped summary probes, and a "
               "shared memo — same estimates, less work.\nserve accepts the "
               "batch form too: a JSON array request line (of query\nstrings "
               "or request envelopes) gets one JSON array response line, "
               "in\norder, both on stdin and over --listen.\n");
  return 2;
}

Result<Twig> ParseQuery(const std::string& text, LabelDict* dict) {
  if (text.find('/') != std::string::npos ||
      text.find('[') != std::string::npos) {
    return CompileXPath(text, dict);
  }
  return Twig::Parse(text, dict);
}

/// Positional (non --flag) arguments after the subcommand.
std::vector<std::string> Positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) out.emplace_back(argv[i]);
  }
  return out;
}

/// Loads a summary for read commands, warning on salvage. Returns nullopt
/// (after printing the error) when nothing loadable exists.
std::optional<LoadedSummary> LoadOrComplain(const std::string& path) {
  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return std::nullopt;
  }
  if (loaded->salvaged) {
    std::fprintf(stderr,
                 "warning: %s is damaged (%s); salvaged %zu patterns, "
                 "complete through level %d\n",
                 path.c_str(), loaded->corruption_detail.c_str(),
                 loaded->summary.NumPatterns(),
                 loaded->summary.complete_through_level());
  }
  return std::move(*loaded);
}

int RunBuild(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "build: --out=<summary> is required\n");
    return 2;
  }

  WallTimer timer;
  Result<Document> doc = ParseXmlFile(args[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu elements in %.2fs\n", doc->NumNodes(),
              timer.ElapsedSeconds());

  LatticeBuildOptions options;
  options.max_level = static_cast<int>(flags.GetInt("level", 4));
  LatticeBuildStats stats;
  Result<LatticeSummary> summary = BuildLattice(*doc, options, &stats);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu patterns (levels 1-%d) in %.2fs\n",
              summary->NumPatterns(), options.max_level, stats.build_seconds);

  double delta = flags.GetDouble("prune-delta", -1.0);
  if (delta >= 0.0) {
    PruneOptions prune;
    prune.delta = delta;
    PruneStats prune_stats;
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(*summary, prune, &prune_stats);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
      return 1;
    }
    std::printf("pruned %zu derivable patterns (delta=%.2f): %s -> %s\n",
                prune_stats.patterns_before - prune_stats.patterns_after,
                delta, HumanBytes(prune_stats.bytes_before).c_str(),
                HumanBytes(prune_stats.bytes_after).c_str());
    summary = std::move(pruned);
  }

  if (Status s = SaveSummaryV2(*summary, &doc->dict(), Env::Default(),
                               out_path);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<uint64_t> file_size = Env::Default()->GetFileSize(out_path);
  std::printf("wrote %s (%s, dict embedded)\n", out_path.c_str(),
              HumanBytes(file_size.ok() ? *file_size : 0).c_str());
  return 0;
}

int RunStats(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  std::optional<LoadedSummary> loaded = LoadOrComplain(args[0]);
  if (!loaded) return 1;
  const LatticeSummary& summary = loaded->summary;
  std::printf("format:           TLSUMMARY v%d\n", loaded->format_version);
  std::printf("max level:        %d\n", summary.max_level());
  std::printf("complete through: %d\n", summary.complete_through_level());
  std::printf("dict:             %s\n",
              loaded->dict ? "embedded" : "none (v1 sidecar)");
  for (int level = 1; level <= summary.max_level(); ++level) {
    std::printf("level %d patterns: %zu\n", level, summary.NumPatterns(level));
  }
  std::printf("total:            %zu patterns, %s\n", summary.NumPatterns(),
              HumanBytes(summary.MemoryBytes()).c_str());
  return 0;
}

int RunVerify(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  Result<VerifyReport> report = VerifySummaryFile(Env::Default(), args[0]);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("format:           TLSUMMARY v%d\n", report->format_version);
  if (report->format_version == 2) {
    std::printf("max level:        %d\n", report->max_level);
    std::printf("complete through: %d\n", report->complete_through_level);
    std::printf("declared patterns:%llu\n",
                static_cast<unsigned long long>(report->total_patterns));
    for (const SectionIntegrity& section : report->sections) {
      std::string name;
      switch (section.tag) {
        case 'D':
          name = "dict";
          break;
        case 'L':
          name = "level " + std::to_string(section.level);
          break;
        default:
          name = "end marker";
      }
      if (section.intact) {
        if (section.tag == 'L') {
          std::printf("%-12s OK       %llu patterns\n", name.c_str(),
                      static_cast<unsigned long long>(section.patterns));
        } else {
          std::printf("%-12s OK\n", name.c_str());
        }
      } else {
        std::printf("%-12s CORRUPT  %s\n", name.c_str(),
                    section.detail.c_str());
      }
    }
  }
  if (report->intact) {
    std::printf("RESULT: intact\n");
    return 0;
  }
  std::printf("RESULT: CORRUPT (%s); salvage keeps complete through level %d\n",
              report->detail.c_str(),
              report->salvage_complete_through_level);
  return 1;
}

int RunEstimate(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() < 2) return Usage();
  std::optional<LoadedSummary> loaded = LoadOrComplain(args[0]);
  if (!loaded) return 1;
  const LatticeSummary& summary = loaded->summary;

  std::optional<LabelDict> dict = std::move(loaded->dict);
  if (!dict) {
    // v1 summaries (and v2 files whose dict section was lost) fall back to
    // the .dict sidecar written by older builds.
    Result<LabelDict> sidecar = LoadLabelDict(Env::Default(),
                                              args[0] + ".dict");
    if (!sidecar.ok()) {
      std::fprintf(stderr,
                   "%s (no dictionary: v2 summaries embed one, v1 summaries "
                   "need the .dict sidecar next to the file)\n",
                   sidecar.status().ToString().c_str());
      return 1;
    }
    dict = std::move(*sidecar);
  }

  std::string kind = flags.GetString("estimator", "recursive");
  std::unique_ptr<SelectivityEstimator> estimator;
  using Options = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  if (kind == "recursive") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(&summary);
  } else if (kind == "voting") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(
        &summary, Options{true, 0, Agg::kMean});
  } else if (kind == "voting-median") {
    estimator = std::make_unique<RecursiveDecompositionEstimator>(
        &summary, Options{true, 0, Agg::kMedian});
  } else if (kind == "fixed") {
    estimator = std::make_unique<FixedSizeDecompositionEstimator>(&summary);
  } else {
    std::fprintf(stderr, "unknown estimator '%s'\n", kind.c_str());
    return 2;
  }

  if (flags.GetBool("batch", false)) {
    if (kind == "fixed") {
      std::fprintf(stderr,
                   "--batch drives the recursive/voting estimators; "
                   "--estimator=fixed has no batched form\n");
      return 2;
    }
    Options batch_options;
    if (kind == "voting") {
      batch_options = Options{true, 0, Agg::kMean};
    } else if (kind == "voting-median") {
      batch_options = Options{true, 0, Agg::kMedian};
    }
    BatchEstimator batch_estimator(&summary, batch_options);
    std::vector<Twig> twigs;
    std::vector<size_t> arg_index;
    int failures = 0;
    for (size_t i = 1; i < args.size(); ++i) {
      Result<Twig> query = ParseQuery(args[i], &*dict);
      if (!query.ok()) {
        std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                     query.status().ToString().c_str());
        ++failures;
        continue;
      }
      twigs.push_back(std::move(*query));
      arg_index.push_back(i);
    }
    std::vector<EstimateResult> results(twigs.size());
    WallTimer timer;
    Status batched = batch_estimator.EstimateBatch(
        twigs, EstimateOptions(), results);
    const double wall_micros = timer.ElapsedMicros();
    if (!batched.ok()) {
      std::fprintf(stderr, "%s\n", batched.ToString().c_str());
      return 1;
    }
    const bool batch_json = flags.GetBool("json", false);
    for (size_t k = 0; k < twigs.size(); ++k) {
      const std::string& text = args[arg_index[k]];
      if (!results[k].status.ok()) {
        std::fprintf(stderr, "%s: %s\n", text.c_str(),
                     results[k].status.ToString().c_str());
        ++failures;
        continue;
      }
      if (batch_json) {
        JsonWriter w;
        w.BeginObject();
        w.Key("query").String(text);
        w.Key("estimator").String(batch_estimator.name());
        w.Key("estimate").Double(results[k].estimate);
        w.Key("batch_size").Uint(twigs.size());
        w.Key("batch_wall_micros").Double(wall_micros);
        w.EndObject();
        std::printf("%s\n", w.str().c_str());
      } else {
        std::printf("%-50s %14.2f   (batch of %zu, %.0f us total, %s)\n",
                    text.c_str(), results[k].estimate, twigs.size(),
                    wall_micros, batch_estimator.name().c_str());
      }
    }
    return failures == 0 ? 0 : 1;
  }

  const bool explain = flags.GetBool("explain", false);
  const bool json = flags.GetBool("json", false);
  // Per-query counter deltas for --json. Every estimator shares the
  // estimator.* names, so one set of before/after reads works for all.
  EstimatorMetrics& em = EstimatorMetrics::Get();
  struct NamedCounter {
    const char* key;
    obs::Counter* counter;
  };
  const NamedCounter delta_counters[] = {
      {"summary_hits", em.summary_hits},
      {"summary_misses", em.summary_misses},
      {"exhaustive_zeros", em.exhaustive_zeros},
      {"decompositions", em.decompositions},
      {"zero_overlap_fallbacks", em.zero_overlap_fallbacks},
      {"memo_hits", em.memo_hits},
  };
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<Twig> query = ParseQuery(args[i], &*dict);
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   query.status().ToString().c_str());
      ++failures;
      continue;
    }
    uint64_t before[std::size(delta_counters)];
    for (size_t c = 0; c < std::size(delta_counters); ++c) {
      before[c] = delta_counters[c].counter->value();
    }
    WallTimer timer;
    Result<double> estimate = estimator->Estimate(*query);
    double wall_micros = timer.ElapsedMicros();
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   estimate.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (json) {
      JsonWriter w;
      w.BeginObject();
      w.Key("query").String(args[i]);
      w.Key("estimator").String(estimator->name());
      w.Key("estimate").Double(*estimate);
      w.Key("wall_micros").Double(wall_micros);
      w.Key("counters").BeginObject();
      for (size_t c = 0; c < std::size(delta_counters); ++c) {
        w.Key(delta_counters[c].key)
            .Uint(delta_counters[c].counter->value() - before[c]);
      }
      w.EndObject();
      w.EndObject();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf("%-50s %14.2f   (%.0f us, %s)\n", args[i].c_str(),
                  *estimate, wall_micros, estimator->name().c_str());
    }
    if (explain) {
      Result<std::unique_ptr<ExplainNode>> trace =
          ExplainEstimate(summary, *query, *dict);
      if (trace.ok()) {
        std::printf("%s", RenderExplain(**trace).c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunTruth(int argc, char** argv) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() < 2) return Usage();
  Result<Document> doc = ParseXmlFile(args[0]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  MatchCounter counter(*doc);
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<Twig> query = ParseQuery(args[i], &doc->mutable_dict());
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   query.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-50s %14llu\n", args[i].c_str(),
                static_cast<unsigned long long>(counter.Count(*query)));
  }
  return failures == 0 ? 0 : 1;
}

// --- serve ---------------------------------------------------------------

volatile std::sig_atomic_t g_serve_shutdown = 0;

void HandleServeSignal(int) { g_serve_shutdown = 1; }

/// Installs a handler WITHOUT SA_RESTART so a blocking stdin read returns
/// with EINTR on SIGTERM/SIGINT instead of silently resuming — that is
/// what lets the read loop notice the signal and start the drain.
void InstallServeSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleServeSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// The TCP leg of `serve --listen`: the Transport owns the event loop and
/// its Server; this function supplies the control handler (#reload hot-swap
/// with a JSON ack) and turns the signal flag into a graceful drain.
int RunServeTcp(const std::string& summary_path, const std::string& listen,
                serve::ServerOptions options, serve::ReloadOptions reload,
                serve::SnapshotHolder* snapshots,
                serve::SlowQueryLog* slow_log, const Flags& flags) {
  Result<HostPort> host_port = ParseHostPort(listen);
  if (!host_port.ok()) {
    std::fprintf(stderr, "serve: bad --listen '%s': %s\n", listen.c_str(),
                 host_port.status().ToString().c_str());
    return 2;
  }

  serve::Transport::Options net;
  net.host = host_port->host;
  net.port = host_port->port;
  net.max_connections = static_cast<int>(flags.GetInt("max-conns", 1024));
  net.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max-frame-bytes", 1 << 20));
  net.idle_timeout_millis = flags.GetDouble("idle-timeout-ms", 300000.0);
  net.request_timeout_millis = flags.GetDouble("request-timeout-ms", 30000.0);
  net.drain_deadline_millis = flags.GetDouble("drain-ms", 5000.0);
  net.write_high_water =
      static_cast<size_t>(flags.GetInt("write-high-water", 1 << 20));
  net.write_low_water = net.write_high_water / 4;
  net.force_poll = flags.GetInt("poll", 0) != 0;
  net.faults.seed = static_cast<uint64_t>(flags.GetInt("net-fault-seed", 0));
  net.faults.short_io = flags.GetDouble("net-fault-short", 0.0);
  net.faults.eagain = flags.GetDouble("net-fault-eagain", 0.0);
  net.faults.reset = flags.GetDouble("net-fault-reset", 0.0);
  net.slow_log = slow_log;
  if (std::string admin = flags.GetString("admin", ""); !admin.empty()) {
    Result<HostPort> admin_host_port = ParseHostPort(admin);
    if (!admin_host_port.ok()) {
      std::fprintf(stderr, "serve: bad --admin '%s': %s\n", admin.c_str(),
                   admin_host_port.status().ToString().c_str());
      return 2;
    }
    net.admin_enabled = true;
    net.admin_host = admin_host_port->host;
    net.admin_port = admin_host_port->port;
  }

  // '#reload' over the wire answers with a JSON ack so remote operators
  // see the outcome; the stderr log mirrors stdin mode. Runs on the loop
  // thread — reloads are rare and the strict loader fails fast.
  auto control = [&](std::string_view line) -> std::string {
    if (line != "#reload") return std::string();
    Status s =
        serve::ReloadSummary(Env::Default(), summary_path, reload, snapshots);
    if (s.ok()) {
      std::fprintf(stderr, "serve: reloaded %s (snapshot v%lld)\n",
                   summary_path.c_str(),
                   static_cast<long long>(snapshots->version()));
    } else {
      std::fprintf(stderr, "serve: reload failed, keeping snapshot v%lld: %s\n",
                   static_cast<long long>(snapshots->version()),
                   s.ToString().c_str());
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("reload").BeginObject();
    w.Key("ok").Bool(s.ok());
    if (!s.ok()) w.Key("error").String(s.ToString());
    w.Key("snapshot_version").Int(snapshots->version());
    w.EndObject();
    w.EndObject();
    return w.TakeString();
  };

  const int workers = options.workers;
  const size_t queue_capacity = options.queue_capacity;
  serve::Transport transport(snapshots, std::move(options), net, control);
  Result<uint16_t> port = transport.Listen();
  if (!port.ok()) {
    std::fprintf(stderr, "serve: cannot listen on %s: %s\n", listen.c_str(),
                 port.status().ToString().c_str());
    return 1;
  }

  InstallServeSignalHandlers();
  std::fprintf(stderr, "serve: listening on %s:%u\n", net.host.c_str(),
               static_cast<unsigned>(*port));
  if (net.admin_enabled) {
    std::fprintf(stderr, "serve: admin on %s:%u\n", net.admin_host.c_str(),
                 static_cast<unsigned>(transport.admin_port()));
  }
  std::fprintf(stderr, "serve: ready (%d workers, queue %zu)\n", workers,
               queue_capacity);

  Status run = transport.Run(&g_serve_shutdown);
  serve::Transport::Stats stats = transport.GetStats();
  std::fprintf(stderr,
               "serve: drained (accepted=%llu rejected=%llu admitted=%llu "
               "delivered=%llu orphaned=%llu resets=%llu drain_ms=%.1f)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.requests_admitted),
               static_cast<unsigned long long>(stats.responses_delivered),
               static_cast<unsigned long long>(stats.responses_orphaned),
               static_cast<unsigned long long>(stats.resets),
               stats.drain_micros / 1000.0);
  if (!run.ok()) {
    std::fprintf(stderr, "serve: transport error: %s\n",
                 run.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunServe(int argc, char** argv, const Flags& flags) {
  std::vector<std::string> args = Positionals(argc, argv);
  if (args.size() != 1) return Usage();
  const std::string& summary_path = args[0];

  serve::ServerOptions options;
  options.workers = static_cast<int>(flags.GetInt("workers", 4));
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 128));
  options.default_deadline_millis = flags.GetDouble("deadline-ms", 0.0);
  options.default_max_work_steps =
      static_cast<uint64_t>(flags.GetInt("max-steps", 0));
  options.worker_delay_millis = flags.GetDouble("worker-delay-ms", 0.0);
  options.enable_estimate_cache = flags.GetInt("cache", 1) != 0;
  options.estimate_cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 1024));

  std::string kind = flags.GetString("estimator", "voting");
  using PrimaryOptions = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  if (kind == "voting") {
    options.estimator.primary = PrimaryOptions{true, 0, Agg::kMean};
  } else if (kind == "voting-median") {
    options.estimator.primary = PrimaryOptions{true, 0, Agg::kMedian};
  } else if (kind == "recursive") {
    options.estimator.primary = PrimaryOptions{false, 0, Agg::kMean};
  } else {
    std::fprintf(stderr, "unknown estimator '%s'\n", kind.c_str());
    return 2;
  }

  serve::ReloadOptions reload;
  reload.attempts = static_cast<int>(flags.GetInt("reload-attempts", 3));
  reload.backoff_millis = flags.GetDouble("reload-backoff-ms", 10.0);

  // Startup accepts a salvaged summary (a degraded snapshot beats not
  // starting); hot reloads below stay strict so a damaged file on disk
  // never replaces a good serving snapshot.
  serve::SnapshotHolder snapshots;
  serve::ReloadOptions startup = reload;
  startup.accept_salvaged = true;
  if (Status s = serve::ReloadSummary(Env::Default(), summary_path, startup,
                                      &snapshots);
      !s.ok()) {
    std::fprintf(stderr, "serve: cannot load %s: %s\n", summary_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (std::shared_ptr<const serve::SummarySnapshot> snap = snapshots.Get();
      snap != nullptr && snap->salvaged) {
    std::fprintf(stderr, "serve: warning: serving salvaged summary (%s)\n",
                 snap->source.c_str());
  }

  // The slow-query ring is shared by both modes: the transport finalizes
  // into it on the TCP path, the stdin sink below on the pipe path.
  serve::SlowQueryLog::Options slow_options;
  slow_options.threshold_millis = flags.GetDouble("slow-threshold-ms", 250.0);
  slow_options.capacity =
      static_cast<size_t>(flags.GetInt("slow-log-size", 128));
  serve::SlowQueryLog slow_log(slow_options);

  if (std::string listen = flags.GetString("listen", ""); !listen.empty()) {
    return RunServeTcp(summary_path, listen, std::move(options), reload,
                       &snapshots, &slow_log, flags);
  }

  // One fprintf call per line: stdio's per-call lock keeps worker output
  // lines whole even though #stats lines come from the main thread.
  // stdout's flush is the pipe-mode "wire": the trace's serialize stage
  // covers JSON rendering, flush covers fprintf+fflush.
  serve::Server server(
      &snapshots, options, [&slow_log](const serve::ServeResponse& response) {
        serve::RequestTrace trace = response.trace;
        const std::string line = response.ToJsonLine();
        trace.StampSerialized();
        std::fprintf(stdout, "%s\n", line.c_str());
        std::fflush(stdout);
        trace.StampFlushed();
        serve::RequestOutcome outcome;
        outcome.query = response.query;
        outcome.rung = response.rung;
        outcome.error_code = response.error_code;
        outcome.ok = response.ok;
        outcome.cached = response.cached;
        outcome.degraded = response.degraded;
        outcome.snapshot_version = response.snapshot_version;
        serve::FinalizeRequestTrace(trace, outcome, &slow_log);
      },
      [&slow_log](serve::ServeBatchResponse response) {
        // One array line answers the whole batch, mirroring the TCP path.
        serve::RequestTrace trace = response.trace;
        const std::string line = response.ToJsonLine();
        trace.StampSerialized();
        std::fprintf(stdout, "%s\n", line.c_str());
        std::fflush(stdout);
        trace.StampFlushed();
        serve::RequestOutcome outcome;
        outcome.query =
            "[batch:" + std::to_string(response.items.size()) + "]";
        outcome.ok = true;
        for (const serve::ServeResponse& item : response.items) {
          if (!item.ok && outcome.error_code.empty()) {
            outcome.ok = false;
            outcome.error_code = item.error_code;
          }
          outcome.degraded = outcome.degraded || item.degraded;
          outcome.cached = outcome.cached || item.cached;
          outcome.snapshot_version = item.snapshot_version;
        }
        serve::FinalizeRequestTrace(trace, outcome, &slow_log);
      });

  InstallServeSignalHandlers();
  std::fprintf(stderr, "serve: ready (%d workers, queue %zu)\n",
               options.workers, options.queue_capacity);

  uint64_t next_id = 0;
  char line[65536];
  while (g_serve_shutdown == 0) {
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string_view text = line;
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.remove_suffix(1);
    }
    if (text.empty()) continue;
    if (text == "#reload") {
      Status s =
          serve::ReloadSummary(Env::Default(), summary_path, reload,
                               &snapshots);
      if (s.ok()) {
        std::fprintf(stderr, "serve: reloaded %s (snapshot v%lld)\n",
                     summary_path.c_str(),
                     static_cast<long long>(snapshots.version()));
      } else {
        std::fprintf(stderr,
                     "serve: reload failed, keeping snapshot v%lld: %s\n",
                     static_cast<long long>(snapshots.version()),
                     s.ToString().c_str());
      }
      continue;
    }
    if (text == "#stats") {
      // The same snapshot/rendering path the TCP transport and /statusz
      // use (serve/introspect.h) — the surfaces cannot drift apart.
      serve::StatusSnapshot status;
      status.server = server.GetStats();
      status.queue_capacity = options.queue_capacity;
      status.workers = options.workers;
      status.snapshot_version = snapshots.version();
      if (auto snap = snapshots.Get()) {
        status.snapshot_salvaged = snap->salvaged;
      }
      status.slow_queries = slow_log.total_recorded();
      status.slow_threshold_millis = slow_log.options().threshold_millis;
      std::fprintf(stdout, "%s\n",
                   serve::introspect::StatsJsonLine(status).c_str());
      std::fflush(stdout);
      continue;
    }
    if (serve::IsBatchRequestLine(text)) {
      ++next_id;
      serve::RequestTrace batch_trace = serve::RequestTrace::Begin(next_id);
      Result<serve::ServeBatch> batch =
          serve::ParseBatchRequestLine(text, options.queue_capacity);
      if (!batch.ok()) {
        serve::ServeResponse response;
        response.id = next_id;
        response.req = next_id;
        response.error_code =
            std::string(StatusCodeToString(batch.status().code()));
        response.error_message = batch.status().message();
        std::fprintf(stdout, "%s\n", response.ToJsonLine().c_str());
        std::fflush(stdout);
        continue;
      }
      batch_trace.batch_size = static_cast<uint32_t>(batch->items.size());
      batch->trace = batch_trace;
      server.SubmitBatch(std::move(*batch));
      continue;
    }
    ++next_id;
    serve::RequestTrace trace = serve::RequestTrace::Begin(next_id);
    Result<serve::ServeRequest> request = serve::ParseRequestLine(text);
    if (!request.ok()) {
      serve::ServeResponse response;
      response.id = next_id;
      response.req = next_id;
      response.query = std::string(text);
      response.error_code =
          std::string(StatusCodeToString(request.status().code()));
      response.error_message = request.status().message();
      std::fprintf(stdout, "%s\n", response.ToJsonLine().c_str());
      std::fflush(stdout);
      continue;
    }
    if (request->id == 0) request->id = next_id;
    request->trace = trace;
    server.Submit(std::move(*request));
  }

  // EOF or signal: stop admission, answer everything already queued, then
  // report the tally. Every submitted request got exactly one response.
  server.Shutdown();
  serve::Server::Stats stats = server.GetStats();
  std::fprintf(stderr,
               "serve: drained (submitted=%llu ok=%llu errors=%llu "
               "shed=%llu degraded=%llu)\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.degraded));
  return 0;
}

/// Writes the registry dump after a command: "-" → stdout, otherwise an
/// atomic file write. Failures are reported but do not change the command's
/// exit code — telemetry must never mask the real result.
void DumpMetrics(const std::string& target, const std::string& format) {
  std::string text = (format == "prom")
                         ? obs::MetricsRegistry::Default()->ToPrometheusText()
                         : obs::MetricsRegistry::Default()->ToJson();
  if (target == "-") {
    std::printf("%s\n", text.c_str());
    return;
  }
  if (Status s = WriteFileAtomic(Env::Default(), target, text); !s.ok()) {
    std::fprintf(stderr, "--metrics: %s\n", s.ToString().c_str());
  }
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string command = argv[1];

  const std::string metrics_target = flags.GetString("metrics", "");
  const std::string metrics_format = flags.GetString("metrics-format", "json");
  if (metrics_format != "json" && metrics_format != "prom") {
    std::fprintf(stderr, "--metrics-format must be json or prom\n");
    return 2;
  }
  const std::string trace_target = flags.GetString("trace", "");
  if (!trace_target.empty()) {
    obs::Tracer::Start();
    // Long-running serve processes flush the trace file periodically so
    // spans survive SIGKILL/crash; one-shot commands write once at exit.
    if (command == "serve") {
      const double flush_millis = flags.GetDouble("trace-flush-ms", 1000.0);
      if (flush_millis > 0.0) {
        if (Status s =
                obs::Tracer::StartPeriodicFlush(trace_target, flush_millis);
            !s.ok()) {
          std::fprintf(stderr, "--trace: periodic flush disabled: %s\n",
                       s.ToString().c_str());
        }
      }
    }
  }

  int rc;
  if (command == "build") {
    rc = RunBuild(argc, argv, flags);
  } else if (command == "stats") {
    rc = RunStats(argc, argv);
  } else if (command == "verify") {
    rc = RunVerify(argc, argv);
  } else if (command == "estimate") {
    rc = RunEstimate(argc, argv, flags);
  } else if (command == "truth") {
    rc = RunTruth(argc, argv);
  } else if (command == "serve") {
    rc = RunServe(argc, argv, flags);
  } else {
    return Usage();
  }

  if (!trace_target.empty()) {
    obs::Tracer::StopPeriodicFlush();
    obs::Tracer::Stop();
    if (Status s = WriteFileAtomic(Env::Default(), trace_target,
                                   obs::Tracer::ChromeTraceJson());
        !s.ok()) {
      std::fprintf(stderr, "--trace: %s\n", s.ToString().c_str());
    }
  }
  if (!metrics_target.empty()) DumpMetrics(metrics_target, metrics_format);
  return rc;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) { return treelattice::Main(argc, argv); }
