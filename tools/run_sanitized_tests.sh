#!/bin/sh
# Builds and runs the full test suite under AddressSanitizer and
# UndefinedBehaviorSanitizer (CI entry point for the robustness suite).
#
#   tools/run_sanitized_tests.sh [address|undefined|thread ...]
#
# With no arguments, runs ASan, UBSan, then TSan (the concurrency suite
# is only meaningful under the last one). Each sanitizer gets its own
# build directory (build-asan/, build-ubsan/, build-tsan/) so incremental
# rebuilds stay fast. Exits non-zero on the first failing suite.
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZERS="${*:-address undefined thread}"

# shellcheck disable=SC2086 # word splitting of the sanitizer list is intended
for SAN in $SANITIZERS; do
  case "$SAN" in
    address) DIR="$ROOT/build-asan" ;;
    undefined) DIR="$ROOT/build-ubsan" ;;
    thread) DIR="$ROOT/build-tsan" ;;
    *)
      echo "unknown sanitizer '$SAN' (expected address|undefined|thread)" >&2
      exit 2
      ;;
  esac
  echo "=== $SAN: configuring $DIR ==="
  cmake -B "$DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREELATTICE_SANITIZE="$SAN"
  echo "=== $SAN: building ==="
  cmake --build "$DIR" -j "$(nproc 2>/dev/null || echo 4)"
  echo "=== $SAN: running ctest ==="
  # halt_on_error makes UBSan failures fatal instead of log-only.
  (cd "$DIR" && \
    ASAN_OPTIONS=detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)")
  echo "=== $SAN: OK ==="
done
