#!/bin/sh
# Runs every bench binary with --json, collecting machine-readable run
# records (name, params, wall time, metrics-registry snapshot) under one
# output directory.
#
#   tools/run_benchmarks.sh [build_dir] [out_dir] [extra bench flags...]
#
# Defaults: build_dir=build, out_dir=<build_dir>/bench_results. Extra flags
# (e.g. --scale=0 --queries=10) are passed to every Run-style bench.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench_results}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

failures=0
for bin in "$BENCH_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  out_json="$OUT_DIR/BENCH_$name.json"
  echo "=== $name -> $out_json"
  if "$bin" --json="$out_json" "$@" > "$OUT_DIR/$name.log" 2>&1; then
    :
  else
    rc=$?
    echo "    FAILED (exit $rc); log: $OUT_DIR/$name.log" >&2
    failures=$((failures + 1))
  fi
done

# The TCP transport sweep gets its own record: bench_ext_serve --net-only
# drives the epoll front end over loopback at 1/100/1k/10k concurrent
# connections (fd-limit-gated legs skip themselves with a notice).
if [ -x "$BENCH_DIR/bench_ext_serve" ]; then
  out_json="$OUT_DIR/BENCH_serve_net.json"
  echo "=== bench_ext_serve --net-only -> $out_json"
  if "$BENCH_DIR/bench_ext_serve" --net-only --json="$out_json" "$@" \
      > "$OUT_DIR/bench_ext_serve_net.log" 2>&1; then
    :
  else
    rc=$?
    echo "    FAILED (exit $rc); log: $OUT_DIR/bench_ext_serve_net.log" >&2
    failures=$((failures + 1))
  fi
fi

echo "=== perf guards: hotpath + batch (tools/check_perf.sh)"
SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
if "$SCRIPT_DIR/check_perf.sh" "$BUILD_DIR" hotpath batch > "$OUT_DIR/check_perf.log" 2>&1; then
  :
else
  rc=$?
  echo "    FAILED (exit $rc); log: $OUT_DIR/check_perf.log" >&2
  failures=$((failures + 1))
fi

echo "results in $OUT_DIR ($failures failure(s))"
[ "$failures" -eq 0 ]
