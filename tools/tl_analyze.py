#!/usr/bin/env python3
"""TreeLattice semantic analyzer: libclang AST + call-graph checks.

The semantic leg of the static-analysis gate (DESIGN.md §13). Where
tools/tl_lint.py matches regexes against lines, this tool parses every
translation unit in compile_commands.json with libclang and checks
project invariants that regexes cannot see through a function call:

  status-discard   A call whose result is Status / Result<T>, used as a
                   discarded full-expression, loses an error the model
                   depends on (a silently failed reload/write/send turns a
                   model-correct estimate into a quietly wrong answer).
                   Blanket `(void)`-casts of Status are findings too: the
                   sanctioned spellings are handling the value, the
                   IgnoreStatus(status, "justification") helper from
                   util/status.h, or a suppression comment.

  hot-alloc        Functions annotated TL_HOT (util/analysis_annotations.h)
                   are allocation-free hot-path roots — the PR 5 contract.
                   The check walks the call graph from every TL_HOT root
                   and reports any reachable allocating operation (operator
                   new, malloc family, allocating std:: members such as
                   push_back/resize/append, std::string construction,
                   std::to_string) with the full call chain. Functions
                   annotated TL_ALLOC_OK (amortized growth, cold-start
                   publication) stop the walk.

  loop-blocking    Functions annotated TL_EVENT_LOOP run on the
                   single-threaded TCP event loop; one blocking call
                   anywhere below them stalls every connection. The check
                   walks the call graph from every TL_EVENT_LOOP root to
                   blocking syscalls (read/write/accept/recv/send/select,
                   every sleep flavor, condition_variable::wait,
                   thread::join) — the semantic upgrade of tl_lint's
                   file-scoped `blocking-syscall` regex, which remains the
                   fallback when libclang is absent. recv/send call sites
                   spelling MSG_DONTWAIT (and accept4 with SOCK_NONBLOCK)
                   are exempt: those cannot block.

  guard-coverage   A class that owns a std::mutex must say what the mutex
                   protects: every mutable field is TL_GUARDED_BY /
                   TL_PT_GUARDED_BY-annotated, intrinsically thread-safe
                   (std::atomic, the mutexes and condition variables
                   themselves, const), or explicitly suppressed with a
                   justification. Extends PR 3's thread-safety layer from
                   "annotations are checked" to "annotations are required".

Suppressions: `// tl-analyze: allow(<check>) -- <justification>` on the
finding line or the line directly above. For the call-graph checks the
comment applies where the finding anchors (the allocation / blocking call
site) and also at a call edge, which prunes the walk through that call.

Baseline: --baseline FILE (default tools/tl_analyze_baseline.txt when it
exists) holds one normalized finding key per line ('#' comments allowed);
matching findings are reported as baselined and do not fail the gate.
--update-baseline rewrites the file from the current run.

SKIP contract: when libclang (the clang python bindings plus the shared
library) is unavailable the tool prints a SKIP line and exits with
--skip-exit-code (default 0) — the same non-vacuous-gate contract as the
clang-tidy leg. Set TL_ANALYZE_REQUIRE=1 to turn SKIP into a hard failure
(CI does, so the semantic leg can never silently stop running there).

Exit status: 0 clean (or SKIP), 1 findings, 2 usage/environment error.

Usage:
  tools/tl_analyze.py [--root DIR] [--build-dir DIR]
                      [--compile-commands FILE] [--checks a,b,...]
                      [--baseline FILE] [--update-baseline]
                      [--skip-exit-code N] [--probe] [-v]
"""

import argparse
import json
import os
import re
import sys

CHECKS = ("status-discard", "hot-alloc", "loop-blocking", "guard-coverage")

ALLOW_RE = re.compile(r"//\s*tl-analyze:\s*allow\(([a-z-]+)\)")

# Annotation tags planted by util/analysis_annotations.h.
TAG_HOT = "tl_hot"
TAG_EVENT_LOOP = "tl_event_loop"
TAG_ALLOC_OK = "tl_alloc_ok"

# Functions (by unqualified spelling) that block the calling thread.
BLOCKING_FUNCTIONS = {
    "read", "write", "pread", "pwrite", "accept", "accept4", "recv",
    "recvfrom", "recvmsg", "send", "sendto", "sendmsg", "select", "pselect",
    "sleep", "usleep", "nanosleep", "fgets", "fread", "fwrite", "getchar",
    "fsync", "fdatasync", "flock", "connect", "sleep_for", "sleep_until",
}
# Blocking std:: members, matched as (class, method).
BLOCKING_STD_MEMBERS = {
    ("condition_variable", "wait"),
    ("condition_variable", "wait_for"),
    ("condition_variable", "wait_until"),
    ("condition_variable_any", "wait"),
    ("thread", "join"),
    ("future", "get"),
    ("future", "wait"),
}

# std:: member functions that may grow / allocate heap storage.
ALLOCATING_STD_MEMBERS = {
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "insert", "insert_or_assign", "resize", "reserve", "append", "assign",
    "push", "operator+=", "substr", "str", "to_string", "rehash",
}
# Free / static allocation entry points by unqualified spelling.
ALLOCATING_FUNCTIONS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string", "operator new",
    "operator new[]", "operator+",
}
# std:: classes whose construction implies allocation when fed a character
# pointer or another instance (SSO notwithstanding: the hot path must not
# construct strings at all).
ALLOCATING_STD_CONSTRUCTORS = {"basic_string", "string"}

# hot-alloc exemption: arguments of Status factory calls. Building an
# error message allocates by design; the check targets the steady-state
# success path, and the factory call itself marks the error path.
STATUS_FACTORY_PARENT = "Status"

MUTEX_TYPE_RE = re.compile(r"\bstd::(recursive_)?(timed_)?mutex\b|\bmutex\b$")
EXEMPT_FIELD_TYPE_RE = re.compile(
    r"\bstd::atomic\b|\bstd::condition_variable\b|\bstd::(recursive_)?"
    r"(timed_)?mutex\b|\batomic<")

MAX_CHAIN_DEPTH = 24


def eprint(*args):
    print(*args, file=sys.stderr)


# --------------------------------------------------------------------------
# libclang discovery


def load_cindex(verbose=False):
    """Returns the clang.cindex module with a working libclang, or None."""
    try:
        from clang import cindex  # noqa: deferred, may be absent
    except ImportError:
        if verbose:
            eprint("tl_analyze: python clang bindings not importable")
        return None
    candidates = [None]  # None = the binding's built-in default
    env_lib = os.environ.get("TL_LIBCLANG")
    if env_lib:
        candidates.insert(0, env_lib)
    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                    "/usr/lib/libclang.so*"):
        import glob
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for lib in candidates:
        try:
            if lib is not None:
                cindex.Config.library_file = lib
            index = cindex.Index.create()
            del index
            return cindex
        except Exception:  # noqa: probe failure, try the next candidate
            # Config caches the first successful load; reset for the retry.
            cindex.Config.loaded = False
            continue
    if verbose:
        eprint("tl_analyze: no loadable libclang shared library")
    return None


# --------------------------------------------------------------------------
# Source-line cache + suppression lookup


class SourceCache:
    def __init__(self):
        self._lines = {}

    def lines(self, path):
        if path not in self._lines:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._lines[path] = f.read().splitlines()
            except OSError:
                self._lines[path] = []
        return self._lines[path]

    def text_at(self, path, line):
        lines = self.lines(path)
        return lines[line - 1] if 0 < line <= len(lines) else ""

    def allowed(self, path, line, check):
        """True when `line` or the line above carries allow(<check>)."""
        for lineno in (line, line - 1):
            m = ALLOW_RE.search(self.text_at(path, lineno))
            if m and m.group(1) == check:
                return True
        return False


# --------------------------------------------------------------------------
# Model: one merged view of every parsed TU


class FunctionInfo:
    __slots__ = ("usr", "name", "file", "line", "calls", "allocs", "news")

    def __init__(self, usr, name, file, line):
        self.usr = usr
        self.name = name  # qualified-ish display name
        self.file = file
        self.line = line
        self.calls = []   # (usr, display, file, line, cursor, in_error)
        self.allocs = []  # unused; kept for symmetry with news
        self.news = []    # (description, file, line, in_error)


class Model:
    def __init__(self):
        self.functions = {}    # usr -> FunctionInfo (definitions only)
        self.annotations = {}  # usr -> set of tags (from any declaration)
        self.discards = []     # (display, type_spelling, file, line, kind)
        self.classes = {}      # usr -> class record for guard-coverage
        self.parsed_files = set()
        self.failed_files = []

    def annotate(self, usr, tag):
        self.annotations.setdefault(usr, set()).add(tag)

    def tags(self, usr):
        return self.annotations.get(usr, set())


def display_name(cursor):
    parts = []
    c = cursor
    while c is not None and c.spelling:
        kind = c.kind.name
        if kind in ("TRANSLATION_UNIT",):
            break
        parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts)) or cursor.spelling


def semantic_path(cursor):
    """List of semantic-parent spellings, innermost first."""
    out = []
    c = cursor.semantic_parent if cursor is not None else None
    while c is not None and c.spelling:
        out.append(c.spelling)
        c = c.semantic_parent
    return out


def in_std(cursor):
    return "std" in semantic_path(cursor) or \
        "__gnu_cxx" in semantic_path(cursor)


def location_of(cursor):
    loc = cursor.location
    if loc and loc.file:
        return os.path.realpath(loc.file.name), loc.line
    return None, 0


# --------------------------------------------------------------------------
# TU walking


def build_parse_args(command_args):
    """compile_commands argv -> libclang args (drop driver, -c/-o, source)."""
    args = []
    skip_next = False
    for arg in command_args[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c",):
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if arg.endswith((".cc", ".cpp", ".cxx", ".c")):
            continue
        args.append(arg)
    return args


FUNCTION_KINDS = None  # set lazily once cindex is importable


def is_function_kind(cindex, kind):
    global FUNCTION_KINDS
    if FUNCTION_KINDS is None:
        FUNCTION_KINDS = {
            cindex.CursorKind.FUNCTION_DECL,
            cindex.CursorKind.CXX_METHOD,
            cindex.CursorKind.CONSTRUCTOR,
            cindex.CursorKind.DESTRUCTOR,
            cindex.CursorKind.CONVERSION_FUNCTION,
            cindex.CursorKind.FUNCTION_TEMPLATE,
        }
    return kind in FUNCTION_KINDS


def is_status_like(type_spelling):
    s = type_spelling
    # const/ref qualifiers never appear on a prvalue call result we care
    # about, but be permissive about namespace spelling.
    return (s.endswith("Status") and "StatusCode" not in s) or \
        re.search(r"\bResult<", s) is not None


def record_annotations(model, cursor):
    tags = set()
    for child in cursor.get_children():
        if child.kind.name == "ANNOTATE_ATTR" and child.spelling in (
                TAG_HOT, TAG_EVENT_LOOP, TAG_ALLOC_OK):
            tags.add(child.spelling)
    if tags:
        usr = cursor.get_usr()
        for tag in tags:
            model.annotate(usr, tag)


def statement_children_in_statement_position(cindex, node):
    """Yields child statements whose value, if any, is discarded."""
    k = cindex.CursorKind
    if node.kind == k.COMPOUND_STMT:
        yield from node.get_children()
    elif node.kind in (k.IF_STMT, k.WHILE_STMT, k.FOR_STMT, k.DO_STMT,
                       k.CXX_FOR_RANGE_STMT, k.CASE_STMT, k.DEFAULT_STMT,
                       k.LABEL_STMT):
        # Branch/loop bodies are in statement position; conditions and
        # headers are not. Over-approximating here would flag `if (Do())`;
        # instead pick only children that are themselves statements.
        stmt_kinds = (k.COMPOUND_STMT, k.IF_STMT, k.WHILE_STMT, k.FOR_STMT,
                      k.DO_STMT, k.CXX_FOR_RANGE_STMT, k.CASE_STMT,
                      k.DEFAULT_STMT, k.LABEL_STMT, k.CALL_EXPR,
                      k.UNEXPOSED_EXPR, k.RETURN_STMT, k.DECL_STMT,
                      k.NULL_STMT, k.BREAK_STMT, k.CONTINUE_STMT,
                      k.SWITCH_STMT, k.CXX_TRY_STMT)
        children = list(node.get_children())
        for i, child in enumerate(children):
            if child.kind not in stmt_kinds:
                continue
            if node.kind == k.IF_STMT and i == 0:
                continue  # the condition
            if node.kind == k.WHILE_STMT and i == 0:
                continue
            if node.kind == k.DO_STMT and i == len(children) - 1:
                continue  # the condition trails a do-while
            yield child


def unwrap_expr(cindex, node):
    k = cindex.CursorKind
    while node is not None and node.kind == k.UNEXPOSED_EXPR:
        children = list(node.get_children())
        if len(children) != 1:
            return node
        node = children[0]
    return node


def is_status_factory(cursor):
    """True for Status::IOError and friends (static Status factories)."""
    if cursor is None or cursor.kind.name != "CXX_METHOD":
        return False
    parent = cursor.semantic_parent
    return parent is not None and parent.spelling == STATUS_FACTORY_PARENT \
        and cursor.is_static_method()


def walk_function_body(cindex, model, info, body, tu_realpath):
    """Records calls, allocations, and discarded Status full-expressions."""
    k = cindex.CursorKind
    stack = [(body, False)]
    while stack:
        node, in_error = stack.pop()
        # Record discarded-call statements first.
        for stmt in statement_children_in_statement_position(cindex, node):
            expr = unwrap_expr(cindex, stmt)
            if expr is None:
                continue
            if expr.kind == k.CALL_EXPR:
                t = expr.type.spelling if expr.type else ""
                if is_status_like(t):
                    file, line = location_of(expr)
                    if file:
                        model.discards.append(
                            (display_name_of_call(expr), t, file, line,
                             "discarded"))
            elif expr.kind == k.CSTYLE_CAST_EXPR:
                inner = None
                for child in expr.get_children():
                    inner = unwrap_expr(cindex, child)
                if inner is not None and inner.kind == k.CALL_EXPR and \
                        expr.type.spelling == "void":
                    t = inner.type.spelling if inner.type else ""
                    if is_status_like(t):
                        file, line = location_of(expr)
                        if file:
                            model.discards.append(
                                (display_name_of_call(inner), t, file, line,
                                 "void-cast"))
        child_in_error = in_error
        if node.kind == k.CALL_EXPR:
            ref = node.referenced
            file, line = location_of(node)
            if ref is not None and file:
                info.calls.append(
                    (ref.get_usr(), display_name(ref), file, line, ref,
                     in_error))
                if is_status_factory(ref):
                    child_in_error = True
        elif node.kind == k.CXX_NEW_EXPR:
            file, line = location_of(node)
            if file:
                # Placement new (`new (buf) T`: a '(' token right after
                # `new`) constructs into existing storage — not an
                # allocation.
                tokens = [t.spelling for t in node.get_tokens()][:2]
                if tokens[:1] == ["new"] and tokens[1:] == ["("]:
                    pass
                else:
                    info.news.append(
                        ("new-expression", file, line, in_error))
        stack.extend((c, child_in_error) for c in node.get_children())


def display_name_of_call(call_expr):
    ref = call_expr.referenced
    if ref is not None:
        return display_name(ref)
    return call_expr.spelling or "<call>"


def collect_class(cindex, model, cursor, cache):
    """Registers a class record when the class owns a std::mutex."""
    k = cindex.CursorKind
    fields = []
    has_mutex = False
    for child in cursor.get_children():
        if child.kind != k.FIELD_DECL:
            continue
        type_spelling = child.type.spelling
        is_mutex = MUTEX_TYPE_RE.search(type_spelling) is not None
        has_mutex = has_mutex or is_mutex
        file, line = location_of(child)
        tokens = " ".join(t.spelling for t in child.get_tokens())
        fields.append({
            "name": child.spelling,
            "type": type_spelling,
            "is_mutex": is_mutex,
            "const": child.type.is_const_qualified(),
            "file": file,
            "line": line,
            "tokens": tokens,
        })
    if not has_mutex or not fields:
        return
    usr = cursor.get_usr()
    if usr in model.classes:
        return
    file, line = location_of(cursor)
    model.classes[usr] = {
        "name": display_name(cursor),
        "file": file,
        "line": line,
        "fields": fields,
    }


def parse_tu(cindex, model, index, entry, root, cache, verbose):
    path = entry["file"]
    if not os.path.isabs(path):
        path = os.path.join(entry.get("directory", root), path)
    path = os.path.realpath(path)
    if path in model.parsed_files:
        return
    if "arguments" in entry:
        argv = entry["arguments"]
    else:
        import shlex
        argv = shlex.split(entry["command"])
    args = build_parse_args(argv)
    try:
        tu = index.parse(path, args=args)
    except cindex.TranslationUnitLoadError:
        model.failed_files.append(path)
        return
    fatal = [d for d in tu.diagnostics if d.severity >= 4]
    if fatal:
        model.failed_files.append(path)
        if verbose:
            eprint(f"tl_analyze: parse failure {path}: {fatal[0].spelling}")
        return
    model.parsed_files.add(path)

    k = cindex.CursorKind
    stack = list(tu.cursor.get_children())
    while stack:
        cursor = stack.pop()
        loc_file, _ = location_of(cursor)
        if loc_file is None or not loc_file.startswith(root + os.sep):
            continue  # system headers: never walk into them
        if is_function_kind(cindex, cursor.kind):
            record_annotations(model, cursor)
            if cursor.is_definition():
                usr = cursor.get_usr()
                if usr not in model.functions:
                    file, line = location_of(cursor)
                    info = FunctionInfo(usr, display_name(cursor), file, line)
                    body = None
                    for child in cursor.get_children():
                        if child.kind == k.COMPOUND_STMT:
                            body = child
                    if body is not None:
                        walk_function_body(cindex, model, info, body, path)
                    model.functions[usr] = info
            stack.extend(c for c in cursor.get_children()
                         if c.kind in (k.CLASS_DECL, k.STRUCT_DECL,
                                       k.NAMESPACE))
        elif cursor.kind in (k.CLASS_DECL, k.STRUCT_DECL,
                             k.CLASS_TEMPLATE):
            if cursor.is_definition():
                collect_class(cindex, model, cursor, cache)
            stack.extend(cursor.get_children())
        else:
            stack.extend(cursor.get_children())


# --------------------------------------------------------------------------
# Findings


class Finding:
    def __init__(self, check, file, line, message, key):
        self.check = check
        self.file = file
        self.line = line
        self.message = message
        self.key = key  # line-number-free baseline key
        self.baselined = False

    def render(self, root):
        rel = os.path.relpath(self.file, root)
        tag = " (baselined)" if self.baselined else ""
        return f"{rel}:{self.line}: [{self.check}] {self.message}{tag}"


def check_status_discard(model, root, cache, findings):
    seen = set()
    for display, type_spelling, file, line, kind in model.discards:
        if not file.startswith(root + os.sep):
            continue
        if (file, line, display) in seen:
            continue
        seen.add((file, line, display))
        if cache.allowed(file, line, "status-discard"):
            continue
        rel = os.path.relpath(file, root)
        if kind == "void-cast":
            message = (f"`{display}` returns {type_spelling}; a blanket "
                       "(void)-cast hides the error — handle it, or use "
                       "IgnoreStatus(status, \"justification\")")
        else:
            message = (f"result of `{display}` ({type_spelling}) is "
                       "silently discarded — handle it, or use "
                       "IgnoreStatus(status, \"justification\")")
        findings.append(Finding(
            "status-discard", file, line, message,
            f"{rel}|status-discard|{display}|{kind}"))


def is_allocating_call(callee, display, call_line_text):
    """Returns a description when `callee` allocates, else None."""
    spelling = callee.spelling
    if spelling in ("operator new", "operator new[]"):
        return spelling
    if spelling in ALLOCATING_FUNCTIONS and (
            in_std(callee) or callee.semantic_parent is None or
            callee.semantic_parent.kind.name == "TRANSLATION_UNIT" or
            spelling in ("malloc", "calloc", "realloc", "strdup",
                         "aligned_alloc")):
        return display
    if in_std(callee):
        if spelling in ALLOCATING_STD_MEMBERS:
            return display
        if callee.kind.name == "CONSTRUCTOR" and \
                callee.semantic_parent is not None and \
                callee.semantic_parent.spelling in \
                ALLOCATING_STD_CONSTRUCTORS:
            # Copy / from-pointer string construction allocates; the
            # default and move constructors do not.
            if callee.is_default_constructor() or \
                    callee.is_move_constructor():
                return None
            return display + " (string construction)"
    return None


def is_blocking_call(callee, display, call_line_text):
    spelling = callee.spelling
    parent = callee.semantic_parent
    parent_name = parent.spelling if parent is not None else ""
    if (parent_name, spelling) in BLOCKING_STD_MEMBERS and in_std(callee):
        return f"{parent_name}::{spelling}"
    if spelling not in BLOCKING_FUNCTIONS:
        return None
    if spelling in ("sleep_for", "sleep_until") and not in_std(callee):
        return None
    if spelling.startswith(("recv", "send")) and \
            "MSG_DONTWAIT" in call_line_text:
        return None  # cannot block
    if spelling == "accept4" and "SOCK_NONBLOCK" in call_line_text:
        return None
    if in_std(callee) and spelling not in ("sleep_for", "sleep_until"):
        return None  # e.g. std::vector::insert shares a name with insert(2)
    return display


def walk_reachability(model, root, cache, check, tag, classify, findings,
                      message_fmt):
    """Generic BFS from annotated roots to offending operations."""
    roots = [usr for usr, tags in model.annotations.items() if tag in tags]
    reported = set()
    for root_usr in sorted(roots):
        info = model.functions.get(root_usr)
        root_name = None
        if info is not None:
            root_name = info.name
        else:
            continue  # annotated but never defined in the parsed set
        stack = [(root_usr, (info.name,))]
        visited = {root_usr}
        while stack:
            usr, chain = stack.pop()
            fn = model.functions.get(usr)
            if fn is None:
                continue
            if len(chain) > MAX_CHAIN_DEPTH:
                continue
            if check == "hot-alloc":
                for desc, file, line, in_error in fn.news:
                    if in_error:
                        continue
                    _report(model, root, cache, check, findings, reported,
                            root_name, chain, desc, file, line, message_fmt)
            for call in fn.calls:
                callee_usr, callee_display, file, line, callee_cursor, \
                    in_error = call
                if in_error and check == "hot-alloc":
                    continue  # error-path construction is exempt
                line_text = cache.text_at(file, line)
                desc = classify(callee_cursor, callee_display, line_text)
                if desc is not None:
                    _report(model, root, cache, check, findings, reported,
                            root_name, chain, desc, file, line, message_fmt)
                    continue
                if callee_usr in visited:
                    continue
                if TAG_ALLOC_OK in model.tags(callee_usr) and \
                        check == "hot-alloc":
                    continue
                if cache.allowed(file, line, check):
                    continue  # suppressed call edge prunes the walk
                if callee_usr in model.functions:
                    visited.add(callee_usr)
                    stack.append((callee_usr, chain + (callee_display,)))


def _report(model, root, cache, check, findings, reported, root_name, chain,
            desc, file, line, message_fmt):
    if not file.startswith(root + os.sep):
        return
    key_chain = " -> ".join(chain)
    dedupe = (root_name, desc, file, line)
    if dedupe in reported:
        return
    reported.add(dedupe)
    if cache.allowed(file, line, check):
        return
    rel = os.path.relpath(file, root)
    message = message_fmt.format(desc=desc, root=root_name, chain=key_chain)
    findings.append(Finding(
        check, file, line, message, f"{check}|{root_name}|{desc}"))


def check_guard_coverage(model, root, cache, findings):
    for record in sorted(model.classes.values(), key=lambda r: r["name"]):
        file = record["file"]
        if file is None or not file.startswith(root + os.sep):
            continue
        if cache.allowed(file, record["line"], "guard-coverage"):
            continue  # class-level suppression
        rel = os.path.relpath(file, root)
        for field in record["fields"]:
            if field["is_mutex"] or field["const"]:
                continue
            if EXEMPT_FIELD_TYPE_RE.search(field["type"]):
                continue
            if "TL_GUARDED_BY" in field["tokens"] or \
                    "TL_PT_GUARDED_BY" in field["tokens"] or \
                    "guarded_by" in field["tokens"]:
                continue
            if cache.allowed(field["file"], field["line"], "guard-coverage"):
                continue
            findings.append(Finding(
                "guard-coverage", field["file"], field["line"],
                f"{record['name']} owns a std::mutex but field "
                f"`{field['name']}` ({field['type']}) is neither "
                "TL_GUARDED_BY-annotated nor suppressed",
                f"{rel}|guard-coverage|{record['name']}::{field['name']}"))


# --------------------------------------------------------------------------
# Driver


def load_compile_commands(path, root):
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    keep = []
    seen = set()
    for entry in entries:
        file = entry["file"]
        if not os.path.isabs(file):
            file = os.path.join(entry.get("directory", root), file)
        file = os.path.realpath(file)
        rel = os.path.relpath(file, root)
        top = rel.split(os.sep, 1)[0]
        if top not in ("src", "tools"):
            continue  # benches/tests follow different contracts
        if file in seen:
            continue
        seen.add(file)
        keep.append(entry)
    return keep


def load_baseline(path):
    keys = set()
    if path and os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    keys.add(line)
    return keys


def main(argv):
    parser = argparse.ArgumentParser(
        prog="tl_analyze.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root)
    parser.add_argument("--build-dir", default=None)
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--checks", default=",".join(CHECKS))
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--skip-exit-code", type=int, default=0)
    parser.add_argument("--probe", action="store_true",
                        help="exit 0 if libclang is usable, 3 otherwise")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv[1:])

    root = os.path.realpath(args.root)
    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    for check in checks:
        if check not in CHECKS:
            eprint(f"tl_analyze: unknown check '{check}' "
                   f"(available: {', '.join(CHECKS)})")
            return 2

    cindex = load_cindex(args.verbose)
    if args.probe:
        return 0 if cindex is not None else 3
    if cindex is None:
        if os.environ.get("TL_ANALYZE_REQUIRE") == "1":
            eprint("tl_analyze: FAIL: libclang unavailable but "
                   "TL_ANALYZE_REQUIRE=1")
            return 2
        print("tl_analyze: SKIP (libclang / python clang bindings "
              "unavailable; tl_lint's regex rules remain the fallback)")
        return args.skip_exit_code

    cc_path = args.compile_commands
    if cc_path is None:
        build_dir = args.build_dir or os.path.join(root, "build")
        cc_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(cc_path):
        eprint(f"tl_analyze: no compile_commands.json at {cc_path} "
               "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        return 2

    entries = load_compile_commands(cc_path, root)
    if not entries:
        eprint("tl_analyze: compile_commands.json has no src/ or tools/ "
               "entries")
        return 2

    cache = SourceCache()
    model = Model()
    index = cindex.Index.create()
    for entry in entries:
        parse_tu(cindex, model, index, entry, root, cache, args.verbose)

    if model.failed_files:
        eprint(f"tl_analyze: {len(model.failed_files)} of "
               f"{len(entries)} TUs failed to parse")
        if args.verbose:
            for path in model.failed_files:
                eprint(f"  {path}")
        if len(model.failed_files) * 2 > len(entries):
            eprint("tl_analyze: FAIL: most TUs unparsable — the gate "
                   "would be vacuous")
            return 2

    findings = []
    if "status-discard" in checks:
        check_status_discard(model, root, cache, findings)
    if "hot-alloc" in checks:
        walk_reachability(
            model, root, cache, "hot-alloc", TAG_HOT, is_allocating_call,
            findings,
            "allocation `{desc}` reachable from TL_HOT root {root} "
            "via: {chain}")
    if "loop-blocking" in checks:
        walk_reachability(
            model, root, cache, "loop-blocking", TAG_EVENT_LOOP,
            is_blocking_call, findings,
            "blocking call `{desc}` reachable from TL_EVENT_LOOP root "
            "{root} via: {chain}")
    if "guard-coverage" in checks:
        check_guard_coverage(model, root, cache, findings)

    baseline_path = args.baseline
    if baseline_path is None:
        default_baseline = os.path.join(root, "tools",
                                        "tl_analyze_baseline.txt")
        if os.path.exists(default_baseline):
            baseline_path = default_baseline
    baseline = load_baseline(baseline_path)
    for finding in findings:
        finding.baselined = finding.key in baseline

    if args.update_baseline:
        target = baseline_path or os.path.join(root, "tools",
                                               "tl_analyze_baseline.txt")
        with open(target, "w", encoding="utf-8") as f:
            f.write("# tl_analyze baseline: one normalized finding key per "
                    "line.\n# Regenerate with tools/tl_analyze.py "
                    "--update-baseline.\n")
            for key in sorted({f.key for f in findings}):
                f.write(key + "\n")
        print(f"tl_analyze: baseline updated ({len(findings)} finding(s) "
              f"-> {target})")
        return 0

    findings.sort(key=lambda f: (f.file, f.line, f.check))
    unsuppressed = [f for f in findings if not f.baselined]
    for finding in findings:
        print(finding.render(root))
    print(f"tl_analyze: {len(model.parsed_files)} TUs, "
          f"{len(unsuppressed)} finding(s), "
          f"{len(findings) - len(unsuppressed)} baselined "
          f"[checks: {', '.join(checks)}]")
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
