#!/bin/sh
# Asserts the telemetry overhead budget (DESIGN.md "Observability"): the
# estimator microbenchmarks with metrics enabled must stay within
# TOLERANCE_PCT (default 5%) of the same binary with TREELATTICE_OBS=off.
# A second leg repeats the check end to end over TCP: bench_ext_serve's
# net sweep — with the full introspection plane riding along (admin
# listener, per-request stage tracing, slow-query ring) — must keep its
# throughput within the same budget of the OBS=off run.
#
#   tools/check_metrics_overhead.sh [build_dir]
#
# Environment: TOLERANCE_PCT (default 5), FILTER (default the estimator
# benchmarks), MIN_TIME (default 0.2s per benchmark, to tame noise),
# BENCH_RUNS (default 3; each side's best total is compared, to tame
# scheduler noise), NET_REQUESTS (default 20000 per TCP run), NET_RUNS
# (default 5; likewise best-of on each side).
set -eu

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/bench/bench_micro"
SERVE_BIN="$BUILD_DIR/bench/bench_ext_serve"
TOLERANCE_PCT="${TOLERANCE_PCT:-5}"
FILTER="${FILTER:-BM_Estimate}"
MIN_TIME="${MIN_TIME:-0.2}"
BENCH_RUNS="${BENCH_RUNS:-3}"
NET_REQUESTS="${NET_REQUESTS:-20000}"
NET_RUNS="${NET_RUNS:-5}"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

# Sums the cpu_time column of google-benchmark's CSV output.
run_total() {
  TREELATTICE_OBS="$1" "$BIN" \
    --benchmark_filter="$FILTER" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=csv 2>/dev/null |
    awk -F, '/^"/ { total += $4; n += 1 } END {
      if (n == 0) { print "0 0" } else { printf "%.0f %d\n", total, n }
    }'
}

# Best (lowest) total over BENCH_RUNS runs: a single sample conflates
# scheduler noise with instrumentation cost, and the *minimum* on each
# side is the cleanest estimate of what the code itself costs.
best_total() {
  mode=$1
  best=""; best_n=0
  i=0
  while [ "$i" -lt "$BENCH_RUNS" ]; do
    # shellcheck disable=SC2046 # run_total prints "total n"; splitting is intended
    set -- $(run_total "$mode")
    if [ -z "$best" ] || [ "$1" -lt "$best" ]; then
      best=$1; best_n=$2
    fi
    i=$((i + 1))
  done
  echo "$best $best_n"
}

echo "=== baseline: TREELATTICE_OBS=off ($FILTER, best of $BENCH_RUNS) ==="
# shellcheck disable=SC2046 # best_total prints "total n"; splitting is intended
set -- $(best_total off)
off_total=$1; off_n=$2
echo "    $off_n benchmarks, total cpu $off_total ns"

echo "=== instrumented: TREELATTICE_OBS=on ==="
# shellcheck disable=SC2046 # as above
set -- $(best_total on)
on_total=$1; on_n=$2
echo "    $on_n benchmarks, total cpu $on_total ns"

if [ "$off_n" -eq 0 ] || [ "$off_n" != "$on_n" ]; then
  echo "FAIL: benchmark sets differ (off=$off_n, on=$on_n)" >&2
  exit 1
fi

awk -v off="$off_total" -v on="$on_total" -v tol="$TOLERANCE_PCT" 'BEGIN {
  overhead = 100.0 * (on - off) / off
  printf "overhead: %+.2f%% (budget %s%%)\n", overhead, tol
  exit (overhead <= tol) ? 0 : 1
}' || { echo "FAIL: telemetry overhead exceeds ${TOLERANCE_PCT}%" >&2; exit 1; }

echo "OK: estimator telemetry overhead within budget"

# --- TCP leg: serving throughput with the introspection plane live -------

if [ ! -x "$SERVE_BIN" ]; then
  echo "warn: $SERVE_BIN not found; skipping TCP overhead leg" >&2
  exit 0
fi

# Best req/s over NET_RUNS runs of the 100-connection leg (field 3 of the
# net_c100 row; the sweep enables the admin plane and slow-query ring).
best_net_qps() {
  best=0
  i=0
  while [ "$i" -lt "$NET_RUNS" ]; do
    qps=$(TREELATTICE_OBS="$1" "$SERVE_BIN" --net-only \
        --net-requests="$NET_REQUESTS" --net-max-conns=100 2>/dev/null |
      awk '$1 == "net_c100" { print $3 }')
    [ -n "$qps" ] || { echo 0; return; }
    best=$(awk -v a="$best" -v b="$qps" 'BEGIN { print (b > a) ? b : a }')
    i=$((i + 1))
  done
  echo "$best"
}

echo "=== TCP baseline: TREELATTICE_OBS=off (net_c100, best of $NET_RUNS) ==="
off_qps=$(best_net_qps off)
echo "    $off_qps req/s"

echo "=== TCP instrumented: TREELATTICE_OBS=on ==="
on_qps=$(best_net_qps on)
echo "    $on_qps req/s"

awk -v off="$off_qps" -v on="$on_qps" -v tol="$TOLERANCE_PCT" 'BEGIN {
  if (off <= 0 || on <= 0) { print "FAIL: TCP leg produced no throughput"; exit 1 }
  loss = 100.0 * (off - on) / off
  printf "tcp qps loss: %+.2f%% (budget %s%%)\n", loss, tol
  exit (loss <= tol) ? 0 : 1
}' || { echo "FAIL: TCP telemetry overhead exceeds ${TOLERANCE_PCT}%" >&2; exit 1; }

echo "OK: TCP telemetry overhead within budget"
