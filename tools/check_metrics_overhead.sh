#!/bin/sh
# Asserts the telemetry overhead budget (DESIGN.md "Observability"): the
# estimator microbenchmarks with metrics enabled must stay within
# TOLERANCE_PCT (default 5%) of the same binary with TREELATTICE_OBS=off.
#
#   tools/check_metrics_overhead.sh [build_dir]
#
# Environment: TOLERANCE_PCT (default 5), FILTER (default the estimator
# benchmarks), MIN_TIME (default 0.2s per benchmark, to tame noise).
set -eu

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/bench/bench_micro"
TOLERANCE_PCT="${TOLERANCE_PCT:-5}"
FILTER="${FILTER:-BM_Estimate}"
MIN_TIME="${MIN_TIME:-0.2}"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

# Sums the cpu_time column of google-benchmark's CSV output.
run_total() {
  TREELATTICE_OBS="$1" "$BIN" \
    --benchmark_filter="$FILTER" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=csv 2>/dev/null |
    awk -F, '/^"/ { total += $4; n += 1 } END {
      if (n == 0) { print "0 0" } else { printf "%.0f %d\n", total, n }
    }'
}

echo "=== baseline: TREELATTICE_OBS=off ($FILTER) ==="
# shellcheck disable=SC2046 # run_total prints "total n"; splitting is intended
set -- $(run_total off)
off_total=$1; off_n=$2
echo "    $off_n benchmarks, total cpu $off_total ns"

echo "=== instrumented: TREELATTICE_OBS=on ==="
# shellcheck disable=SC2046 # as above
set -- $(run_total on)
on_total=$1; on_n=$2
echo "    $on_n benchmarks, total cpu $on_total ns"

if [ "$off_n" -eq 0 ] || [ "$off_n" != "$on_n" ]; then
  echo "FAIL: benchmark sets differ (off=$off_n, on=$on_n)" >&2
  exit 1
fi

awk -v off="$off_total" -v on="$on_total" -v tol="$TOLERANCE_PCT" 'BEGIN {
  overhead = 100.0 * (on - off) / off
  printf "overhead: %+.2f%% (budget %s%%)\n", overhead, tol
  exit (overhead <= tol) ? 0 : 1
}' || { echo "FAIL: telemetry overhead exceeds ${TOLERANCE_PCT}%" >&2; exit 1; }

echo "OK: telemetry overhead within budget"
