#!/bin/sh
# The static-analysis gate (DESIGN.md §8): clang-tidy with the curated
# .clang-tidy profile, the project-convention linter (tools/tl_lint.py),
# shellcheck over every shell script, and a warnings-as-errors compile.
#
#   tools/run_static_analysis.sh [build_dir]
#
# Exits non-zero on any finding from any available tool. Tools missing from
# the environment (clang-tidy, shellcheck) are reported as SKIPPED and do
# not fail the gate — the custom lint and the -Werror build always run, so
# the gate is never vacuous. CI images with the full toolchain get all four
# legs.
#
# Environment:
#   CLANG_TIDY   clang-tidy binary (default: clang-tidy)
#   SHELLCHECK   shellcheck binary (default: shellcheck)
#   TIDY_JOBS    parallel tidy invocations (default: nproc)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
SHELLCHECK="${SHELLCHECK:-shellcheck}"
JOBS="$(nproc 2>/dev/null || echo 4)"
TIDY_JOBS="${TIDY_JOBS:-$JOBS}"
failures=0

# --- leg 1: warnings-as-errors compile -------------------------------------
echo "=== static-analysis: -Werror build ==="
WERROR_DIR="$ROOT/build-werror"
mkdir -p "$WERROR_DIR"
if cmake -B "$WERROR_DIR" -S "$ROOT" -DTREELATTICE_WERROR=ON \
      > "$WERROR_DIR/cmake.log" 2>&1 \
    && cmake --build "$WERROR_DIR" -j "$JOBS" > "$WERROR_DIR/build.log" 2>&1
then
  echo "    OK (warning-clean at -Wall -Wextra -Werror)"
else
  echo "    FAIL: see $WERROR_DIR/build.log" >&2
  tail -n 40 "$WERROR_DIR/build.log" >&2 || true
  failures=$((failures + 1))
fi

# --- leg 2: clang-tidy ------------------------------------------------------
echo "=== static-analysis: clang-tidy ==="
if command -v "$CLANG_TIDY" > /dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "    configuring $BUILD_DIR for compile_commands.json"
    cmake -B "$BUILD_DIR" -S "$ROOT" > /dev/null
  fi
  TIDY_LOG="$BUILD_DIR/clang-tidy.log"
  : > "$TIDY_LOG"
  # Sources under the four checked trees; headers are pulled in through
  # HeaderFilterRegex in .clang-tidy.
  if find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/tests" \
        -name '*.cc' -print 2>/dev/null \
      | xargs -P "$TIDY_JOBS" -n 8 \
        "$CLANG_TIDY" -p "$BUILD_DIR" --quiet >> "$TIDY_LOG" 2>&1
  then
    echo "    OK (no findings)"
  else
    echo "    FAIL: findings in $TIDY_LOG" >&2
    grep -E 'warning:|error:' "$TIDY_LOG" | head -n 40 >&2 || true
    failures=$((failures + 1))
  fi
else
  echo "    SKIPPED ($CLANG_TIDY not found)"
fi

# --- leg 3: project-convention lint ----------------------------------------
echo "=== static-analysis: tl_lint ==="
if python3 "$ROOT/tools/tl_lint.py" "$ROOT"; then
  :
else
  failures=$((failures + 1))
fi

# --- leg 4: shellcheck ------------------------------------------------------
echo "=== static-analysis: shellcheck ==="
if command -v "$SHELLCHECK" > /dev/null 2>&1; then
  # shellcheck's own exit code aggregates across files.
  if find "$ROOT/tools" "$ROOT/tests" -name '*.sh' -print 2>/dev/null \
      | xargs "$SHELLCHECK" --shell=sh
  then
    echo "    OK"
  else
    failures=$((failures + 1))
  fi
else
  echo "    SKIPPED ($SHELLCHECK not found)"
fi

echo "=== static-analysis: $failures failing leg(s) ==="
[ "$failures" -eq 0 ]
