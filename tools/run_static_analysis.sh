#!/bin/sh
# The static-analysis gate (DESIGN.md §8, §13): a warnings-as-errors
# compile, clang-tidy with the curated .clang-tidy profile, the
# project-convention linter (tools/tl_lint.py), the libclang semantic
# analyzer (tools/tl_analyze.py), and shellcheck over every shell script.
#
#   tools/run_static_analysis.sh [build_dir]
#
# Exits non-zero on any finding from any available tool. Tools missing from
# the environment (clang-tidy, libclang, shellcheck) are reported as SKIP
# and do not fail the gate — the custom lint and the -Werror build always
# run, so the gate is never vacuous. CI images with the full toolchain get
# all five legs.
#
# Fallback matrix for the blocking-syscall rule: when tl_analyze's
# call-graph loop-blocking check runs, tl_lint runs with
# --no-blocking-syscall (the regex is strictly weaker — file-scoped, no
# reachability); when libclang is absent, tl_lint keeps its regex so the
# rule never silently disappears.
#
# Environment:
#   CLANG_TIDY   clang-tidy binary (default: clang-tidy)
#   SHELLCHECK   shellcheck binary (default: shellcheck)
#   TIDY_JOBS    parallel tidy invocations (default: nproc)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
SHELLCHECK="${SHELLCHECK:-shellcheck}"
JOBS="$(nproc 2>/dev/null || echo 4)"
TIDY_JOBS="${TIDY_JOBS:-$JOBS}"
failures=0

# Per-leg results for the summary table: "name<TAB>status<TAB>detail" lines.
SUMMARY=""
record() {
  SUMMARY="${SUMMARY}${1}	${2}	${3}
"
  if [ "$2" = "FAIL" ]; then
    failures=$((failures + 1))
  fi
}

# --- leg 1: warnings-as-errors compile -------------------------------------
echo "=== static-analysis: -Werror build ==="
WERROR_DIR="$ROOT/build-werror"
mkdir -p "$WERROR_DIR"
if cmake -B "$WERROR_DIR" -S "$ROOT" -DTREELATTICE_WERROR=ON \
      > "$WERROR_DIR/cmake.log" 2>&1 \
    && cmake --build "$WERROR_DIR" -j "$JOBS" > "$WERROR_DIR/build.log" 2>&1
then
  echo "    OK (warning-clean at -Wall -Wextra -Werror)"
  record "werror-build" "OK" "warning-clean"
else
  echo "    FAIL: see $WERROR_DIR/build.log" >&2
  tail -n 40 "$WERROR_DIR/build.log" >&2 || true
  record "werror-build" "FAIL" "see $WERROR_DIR/build.log"
fi

# --- leg 2: clang-tidy ------------------------------------------------------
echo "=== static-analysis: clang-tidy ==="
if command -v "$CLANG_TIDY" > /dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "    configuring $BUILD_DIR for compile_commands.json"
    cmake -B "$BUILD_DIR" -S "$ROOT" > /dev/null
  fi
  TIDY_LOG="$BUILD_DIR/clang-tidy.log"
  : > "$TIDY_LOG"
  # Sources under the four checked trees; headers are pulled in through
  # HeaderFilterRegex in .clang-tidy.
  if find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/tests" \
        -name '*.cc' -print 2>/dev/null \
      | xargs -P "$TIDY_JOBS" -n 8 \
        "$CLANG_TIDY" -p "$BUILD_DIR" --quiet >> "$TIDY_LOG" 2>&1
  then
    echo "    OK (no findings)"
    record "clang-tidy" "OK" "no findings"
  else
    tidy_count="$(grep -cE 'warning:|error:' "$TIDY_LOG" 2>/dev/null || true)"
    echo "    FAIL: findings in $TIDY_LOG" >&2
    grep -E 'warning:|error:' "$TIDY_LOG" | head -n 40 >&2 || true
    record "clang-tidy" "FAIL" "${tidy_count:-?} finding(s), $TIDY_LOG"
  fi
else
  echo "    SKIP ($CLANG_TIDY not found)"
  record "clang-tidy" "SKIP" "$CLANG_TIDY not found"
fi

# --- leg 3: semantic analysis (tl_analyze) ---------------------------------
# Probe first so leg 4 knows whether the regex fallback must stay on.
echo "=== static-analysis: tl_analyze ==="
have_semantic=0
if python3 "$ROOT/tools/tl_analyze.py" --probe > /dev/null 2>&1; then
  have_semantic=1
  ANALYZE_LOG="$BUILD_DIR/tl_analyze.log"
  if python3 "$ROOT/tools/tl_analyze.py" --root "$ROOT" \
        --build-dir "$BUILD_DIR" --skip-exit-code 3 \
        > "$ANALYZE_LOG" 2>&1
  then
    tail -n 1 "$ANALYZE_LOG"
    echo "    OK (no unsuppressed findings)"
    record "tl_analyze" "OK" "$(tail -n 1 "$ANALYZE_LOG")"
  else
    analyze_count="$(grep -cE '^\S+:[0-9]+: \[' "$ANALYZE_LOG" \
                     2>/dev/null || true)"
    echo "    FAIL: findings in $ANALYZE_LOG" >&2
    cat "$ANALYZE_LOG" >&2 || true
    record "tl_analyze" "FAIL" "${analyze_count:-?} finding(s), $ANALYZE_LOG"
  fi
else
  echo "    SKIP (libclang unavailable; tl_lint keeps the blocking-syscall regex)"
  record "tl_analyze" "SKIP" "libclang unavailable"
fi

# --- leg 4: project-convention lint ----------------------------------------
echo "=== static-analysis: tl_lint ==="
if [ "$have_semantic" -eq 1 ]; then
  # The semantic loop-blocking check subsumes the file-scoped regex.
  set -- --no-blocking-syscall "$ROOT"
else
  set -- "$ROOT"
fi
if python3 "$ROOT/tools/tl_lint.py" "$@"; then
  record "tl_lint" "OK" "clean"
else
  record "tl_lint" "FAIL" "findings above"
fi

# --- leg 5: shellcheck ------------------------------------------------------
echo "=== static-analysis: shellcheck ==="
if command -v "$SHELLCHECK" > /dev/null 2>&1; then
  # shellcheck's own exit code aggregates across files.
  if find "$ROOT/tools" "$ROOT/tests" -name '*.sh' -print 2>/dev/null \
      | xargs "$SHELLCHECK" --shell=sh
  then
    echo "    OK"
    record "shellcheck" "OK" "clean"
  else
    record "shellcheck" "FAIL" "findings above"
  fi
else
  echo "    SKIP ($SHELLCHECK not found)"
  record "shellcheck" "SKIP" "$SHELLCHECK not found"
fi

# --- summary ----------------------------------------------------------------
echo "=== static-analysis summary ==="
printf '%s' "$SUMMARY" | while IFS='	' read -r leg status detail; do
  printf '    %-14s %-5s %s\n' "$leg" "$status" "$detail"
done
echo "=== static-analysis: $failures failing leg(s) ==="
[ "$failures" -eq 0 ]
