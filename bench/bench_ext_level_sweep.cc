// Extension ablation: the lattice level K. The paper fixes K=4 for its
// experiments and reaches for K=5 only in Fig. 10(b); this bench makes the
// underlying design choice visible by sweeping K in {2,3,4,5} and
// reporting summary size, construction time, and estimation accuracy per
// query size. K=2 degenerates to the Markov edge model; each additional
// level buys accuracy at exponential pattern-count cost.
//
// Flags: --dataset=<name> (default nasa), --scale=<n>, --seed=<n>,
//        --queries=<n>, --min_size, --max_size.

#include <cstdio>

#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/lattice_builder.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const std::string dataset = flags.GetString("dataset", "nasa");
  const int min_size = static_cast<int>(flags.GetInt("min_size", 5));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  std::printf("=== Extension: Lattice Level Sweep (%s, recursive) ===\n\n",
              dataset.c_str());

  DatasetOptions generate;
  generate.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  generate.scale = static_cast<int>(flags.GetInt("scale", 0));
  if (generate.scale == 0) generate.scale = DefaultScale(dataset);
  Result<Document> doc = GenerateDataset(dataset, generate);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  MatchCounter counter(*doc);

  ExperimentOptions options;
  options.seed = generate.seed;
  options.queries_per_size = static_cast<size_t>(flags.GetInt("queries", 60));

  TextTable table;
  std::vector<std::string> header = {"K", "Patterns", "Size(KB)",
                                     "Build(s)"};
  for (int size = min_size; size <= max_size; ++size) {
    header.push_back("err@" + std::to_string(size) + "(%)");
  }
  table.SetHeader(header);

  for (int level = 2; level <= 5; ++level) {
    LatticeBuildOptions build;
    build.max_level = level;
    LatticeBuildStats stats;
    Result<LatticeSummary> summary = BuildLattice(*doc, build, &stats);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
      return 1;
    }
    RecursiveDecompositionEstimator estimator(&*summary);
    std::vector<std::string> row = {
        std::to_string(level), std::to_string(summary->NumPatterns()),
        FormatDouble(double(summary->MemoryBytes()) / 1024, 1),
        FormatDouble(stats.build_seconds, 2)};
    for (int size = min_size; size <= max_size; ++size) {
      Result<WorkloadEval> workload =
          PrepareWorkload(*doc, counter, size, options);
      if (!workload.ok()) {
        std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
        return 1;
      }
      Result<EstimatorRun> run = RunEstimator(estimator, *workload);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatDouble(run->avg_error_pct, 1));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape to expect: accuracy improves monotonically with K while\n"
      "pattern count and build time grow sharply — K=4 is the sweet spot\n"
      "the paper operates at.\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_level_sweep", flags);
  return report.Finish(treelattice::Run(flags));
}
