// Extension experiment (paper Section 6 future work): on-line summary
// maintenance. Section 6 claims TreeLattice "is also incremental in nature
// and can maintain summaries on-line" (like XPathLearner) but never
// evaluates it. This benchmark does: protein entries stream into the
// database one record at a time, and the localized delta-maintenance of
// IncrementalLattice is compared against rebuilding the lattice from
// scratch at each step.
//
// Shape to expect: per-insert maintenance cost is bounded by the record
// neighbourhood, orders of magnitude below the full rebuild, while the
// summary stays bit-identical to the rebuild (the equality is asserted).
//
// Flags: --scale=<n> (base document records, default 400),
//        --inserts=<n> (streamed records, default 25), --seed=<n>.

#include <cstdio>

#include "datagen/datasets.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/incremental.h"
#include "mining/lattice_builder.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int scale = static_cast<int>(flags.GetInt("scale", 400));
  const int inserts = static_cast<int>(flags.GetInt("inserts", 25));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("=== Extension: On-line Summary Maintenance (PSD stream) ===\n\n");

  // Base document plus a reservoir of future records: generate scale +
  // inserts entries, split off the tail as the insertion stream.
  DatasetOptions generate;
  generate.seed = seed;
  generate.scale = scale + inserts;
  Document full = GeneratePsd(generate);

  // Entries are the children of the root; find where record `scale` starts.
  std::vector<NodeId> entries = full.Children(full.root());
  if (static_cast<int>(entries.size()) < scale + inserts) {
    std::fprintf(stderr, "unexpected entry count\n");
    return 1;
  }
  NodeId split_at = entries[static_cast<size_t>(scale)];

  Document base(full.shared_dict());
  base.AddNode(full.Label(full.root()), kInvalidNode);
  for (NodeId n = 1; n < split_at; ++n) {
    base.AddNode(full.Label(n), full.Parent(n));
  }

  Result<IncrementalLattice> lattice = IncrementalLattice::Create(base, 4);
  if (!lattice.ok()) {
    std::fprintf(stderr, "%s\n", lattice.status().ToString().c_str());
    return 1;
  }

  double total_incremental_ms = 0.0;
  size_t total_changed = 0;
  for (int i = 0; i < inserts; ++i) {
    NodeId record = entries[static_cast<size_t>(scale + i)];
    // Extract the record as a twig.
    std::vector<NodeId> record_nodes;
    std::vector<NodeId> stack = {record};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      record_nodes.push_back(v);
      for (NodeId c = full.FirstChild(v); c != kInvalidNode;
           c = full.NextSibling(c)) {
        stack.push_back(c);
      }
    }
    Result<Twig> record_twig = TwigFromDocumentNodes(full, record_nodes);
    if (!record_twig.ok()) {
      std::fprintf(stderr, "%s\n", record_twig.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    Result<size_t> changed =
        lattice->InsertSubtree(lattice->doc().root(), *record_twig);
    if (!changed.ok()) {
      std::fprintf(stderr, "%s\n", changed.status().ToString().c_str());
      return 1;
    }
    total_incremental_ms += timer.ElapsedMillis();
    total_changed += *changed;
  }

  // Full rebuild on the final document, for cost comparison and equality.
  WallTimer rebuild_timer;
  LatticeBuildOptions options;
  options.max_level = 4;
  Result<LatticeSummary> rebuilt = BuildLattice(lattice->doc(), options);
  double rebuild_ms = rebuild_timer.ElapsedMillis();
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }
  bool identical = rebuilt->NumPatterns() == lattice->summary().NumPatterns();
  for (int level = 1; level <= 4 && identical; ++level) {
    for (const std::string& code : rebuilt->PatternsAtLevel(level)) {
      if (lattice->summary().LookupCode(code) != rebuilt->LookupCode(code)) {
        identical = false;
        break;
      }
    }
  }

  TextTable table;
  table.SetHeader({"Metric", "Value"});
  table.AddRow({"document elements (final)",
                std::to_string(lattice->doc().NumNodes())});
  table.AddRow({"records streamed", std::to_string(inserts)});
  table.AddRow({"avg per-insert maintenance (ms)",
                FormatDouble(total_incremental_ms / inserts, 3)});
  table.AddRow({"full rebuild (ms)", FormatDouble(rebuild_ms, 1)});
  table.AddRow(
      {"rebuild / incremental speedup",
       FormatDouble(rebuild_ms / (total_incremental_ms / inserts), 0) + "x"});
  table.AddRow({"pattern entries touched", std::to_string(total_changed)});
  table.AddRow({"summary identical to rebuild", identical ? "yes" : "NO"});
  std::printf("%s\n", table.Render().c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_incremental", flags);
  return report.Finish(treelattice::Run(flags));
}
