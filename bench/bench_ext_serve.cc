// Extension benchmark: serving throughput and tail latency. The ROADMAP
// north-star is an estimation *service*; this drives the serve-layer
// worker pool with request bursts of increasing size over a mined PSD
// lattice and reports throughput plus p50/p95/p99 response latency, with
// and without per-request deadlines. The workload mixes cheap in-lattice
// lookups with wide star queries whose voting recursion is expensive —
// exactly the requests the degradation ladder exists for, so the governed
// runs also report how many answers were degraded to a cheaper rung.
//
// Shape to expect: ungoverned tails are dominated by the star queries;
// deadlines cap p99 near the deadline (plus one fallback grace) at the
// price of degraded answers. Throughput scales with workers until the
// queue, not the estimator, is the bottleneck.
//
// The TCP sweep (also standalone via --net-only, recorded as
// BENCH_serve_net.json by tools/run_benchmarks.sh) drives the epoll
// transport end to end over loopback sockets at 1/100/1k/10k concurrent
// connections — a windowed pipelined client per connection — and reports
// qps and p99 per concurrency level plus the 1k-vs-1 throughput ratio
// (the transport should cost little: the ratio stays near 1).
//
// Flags: --scale=<n> (PSD records, default 800), --level=<k> (default 3),
//        --workers=<n> (default 4), --deadline-ms=<d> (default 5),
//        --net-only (TCP sweep only), --net-requests=<n> (default 4000),
//        --net-max-conns=<n> (default 10000; legs above it are skipped).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "datagen/datasets.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/lattice_builder.h"
#include "serve/server.h"
#include "serve/slow_log.h"
#include "serve/snapshot.h"
#include "serve/transport.h"
#include "summary/lattice_summary.h"
#include "util/timer.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace {

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

struct BurstResult {
  double wall_seconds = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // micros
  uint64_t ok = 0, errors = 0, degraded = 0;
  uint64_t cache_hits = 0;
};

/// Submits `n` requests round-robin over `queries` and waits for every
/// response, measuring per-request submit-to-sink latency.
BurstResult RunBurst(serve::SnapshotHolder* snapshots,
                     const std::vector<std::string>& queries, int n,
                     int workers, double deadline_millis,
                     bool enable_cache = false) {
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> submitted(static_cast<size_t>(n));
  // One slot per request id; distinct ids never collide, so the sink can
  // write lock-free (sink calls are serialized by the server anyway).
  std::vector<double> latencies(static_cast<size_t>(n), 0.0);
  std::vector<uint8_t> degraded_flags(static_cast<size_t>(n), 0);

  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = static_cast<size_t>(n);  // no shedding: pure latency
  options.default_deadline_millis = deadline_millis;
  options.enable_estimate_cache = enable_cache;
  BurstResult result;
  {
    serve::Server server(
        snapshots, options, [&](const serve::ServeResponse& response) {
          size_t slot = static_cast<size_t>(response.id - 1);
          latencies[slot] = std::chrono::duration<double, std::micro>(
                                Clock::now() - submitted[slot])
                                .count();
          degraded_flags[slot] = response.degraded ? 1 : 0;
        });
    WallTimer timer;
    for (int i = 0; i < n; ++i) {
      serve::ServeRequest request;
      request.id = static_cast<uint64_t>(i + 1);
      request.query = queries[static_cast<size_t>(i) % queries.size()];
      submitted[static_cast<size_t>(i)] = Clock::now();
      server.Submit(std::move(request));
    }
    server.Shutdown();  // drains: every latency slot is filled after this
    result.wall_seconds = timer.ElapsedSeconds();
    serve::Server::Stats stats = server.GetStats();
    result.ok = stats.ok;
    result.errors = stats.errors;
    result.degraded = stats.degraded;
    result.cache_hits = stats.cache_hits;
  }

  std::sort(latencies.begin(), latencies.end());
  result.p50 = Percentile(latencies, 0.50);
  result.p95 = Percentile(latencies, 0.95);
  result.p99 = Percentile(latencies, 0.99);
  return result;
}

// --- TCP transport sweep ---------------------------------------------------

struct NetLegResult {
  double wall_seconds = 0.0;
  double p50 = 0.0, p99 = 0.0;  // micros
  uint64_t completed = 0;
  bool ok = false;
};

/// Pulls the numeric `"id":` value out of a response line without paying
/// for a full JSON parse — at 10k connections the client must stay far
/// cheaper than the server or the bench measures the client.
uint64_t ParseResponseId(const char* begin, const char* end) {
  static constexpr char kKey[] = "\"id\":";
  const char* p = std::search(begin, end, kKey, kKey + 5);
  if (p == end) return 0;
  p += 5;
  uint64_t value = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    value = value * 10 + static_cast<uint64_t>(*p++ - '0');
  }
  return value;
}

struct ClientConn {
  int fd = -1;
  uint64_t next_id = 0;
  int sent = 0;
  int done = 0;
  std::string inbuf;
  std::unordered_map<uint64_t, std::chrono::steady_clock::time_point> inflight;
};

/// One client thread: `conn_count` connections, each pipelining a window of
/// `window` requests and refilling on every response until `per_conn` are
/// answered. Blocking writes (tiny frames never fill a loopback buffer),
/// poll(2) for reads. Latency is send-to-response per request.
void DriveConnections(uint16_t port, int conn_count, int per_conn, int window,
                      const std::string& query, std::atomic<int>* ready,
                      const std::atomic<bool>* go,
                      std::vector<double>* latencies,
                      std::atomic<bool>* failed) {
  using Clock = std::chrono::steady_clock;
  std::vector<ClientConn> conns(static_cast<size_t>(conn_count));
  latencies->reserve(static_cast<size_t>(conn_count) *
                     static_cast<size_t>(per_conn));

  auto abort_all = [&conns, failed] {
    failed->store(true);
    for (ClientConn& c : conns) {
      if (c.fd >= 0) close(c.fd);
    }
  };

  for (ClientConn& c : conns) {
    c.fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (c.fd < 0 || connect(c.fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      abort_all();
      ready->fetch_add(1);  // never leave the barrier hanging
      return;
    }
    int one = 1;
    setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  // Barrier: all threads finish connecting before anyone sends, so the
  // timed window measures steady-state request flow, not connect storms.
  ready->fetch_add(1);
  while (!go->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  auto send_one = [&query](ClientConn& c) -> bool {
    char line[192];
    int len = std::snprintf(line, sizeof(line), "{\"query\":\"%s\",\"id\":%llu}\n",
                            query.c_str(),
                            static_cast<unsigned long long>(++c.next_id));
    c.inflight.emplace(c.next_id, Clock::now());
    ++c.sent;
    const char* p = line;
    while (len > 0) {
      ssize_t n = send(c.fd, p, static_cast<size_t>(len), MSG_NOSIGNAL);
      if (n <= 0) return false;
      p += n;
      len -= static_cast<int>(n);
    }
    return true;
  };

  for (ClientConn& c : conns) {
    for (int i = 0; i < window && i < per_conn; ++i) {
      if (!send_one(c)) {
        abort_all();
        return;
      }
    }
  }

  const int total = conn_count * per_conn;
  int done_total = 0;
  std::vector<pollfd> pfds;
  std::vector<int> index;
  char buf[65536];
  while (done_total < total && !failed->load(std::memory_order_relaxed)) {
    pfds.clear();
    index.clear();
    for (int i = 0; i < conn_count; ++i) {
      if (conns[static_cast<size_t>(i)].done < per_conn) {
        pfds.push_back({conns[static_cast<size_t>(i)].fd, POLLIN, 0});
        index.push_back(i);
      }
    }
    int rc = poll(pfds.data(), pfds.size(), 30000);
    if (rc <= 0) {
      abort_all();
      return;
    }
    for (size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      ClientConn& c = conns[static_cast<size_t>(index[k])];
      ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        abort_all();
        return;
      }
      c.inbuf.append(buf, static_cast<size_t>(n));
      size_t start = 0, nl;
      while ((nl = c.inbuf.find('\n', start)) != std::string::npos) {
        uint64_t id = ParseResponseId(c.inbuf.data() + start, c.inbuf.data() + nl);
        auto it = c.inflight.find(id);
        if (it != c.inflight.end()) {
          latencies->push_back(std::chrono::duration<double, std::micro>(
                                   Clock::now() - it->second)
                                   .count());
          c.inflight.erase(it);
          ++c.done;
          ++done_total;
          if (c.sent < per_conn && !send_one(c)) {
            abort_all();
            return;
          }
        }
        start = nl + 1;
      }
      c.inbuf.erase(0, start);
    }
  }
  for (ClientConn& c : conns) close(c.fd);
}

/// One concurrency level: a Transport on an ephemeral port, `conns`
/// connections spread over client threads, `per_conn` windowed pipelined
/// requests each.
NetLegResult RunNetLeg(serve::SnapshotHolder* snapshots,
                       const std::string& query, int conns, int total_requests,
                       int workers) {
  const int per_conn = std::max(1, total_requests / conns);
  const int window = std::min(4, per_conn);

  serve::ServerOptions server_options;
  server_options.workers = workers;
  // The windows bound in-flight work at conns*window; size the queue above
  // that so the sweep measures the transport, not admission shedding.
  server_options.queue_capacity =
      static_cast<size_t>(conns) * static_cast<size_t>(window) + 128;
  server_options.enable_estimate_cache = true;
  serve::Transport::Options net;
  net.max_connections = conns + 8;
  net.backlog = std::min(conns + 8, 4096);
  net.idle_timeout_millis = 0.0;
  net.request_timeout_millis = 0.0;
  // The whole introspection plane rides along (admin listener, per-request
  // stage tracing, slow-query ring) so the sweep measures serving as
  // deployed — tools/check_metrics_overhead.sh diffs this same leg with
  // TREELATTICE_OBS=off to enforce the overhead budget.
  serve::SlowQueryLog slow_log(
      {/*threshold_millis=*/250.0, /*capacity=*/128});
  net.admin_enabled = true;
  net.admin_port = 0;
  net.slow_log = &slow_log;
  serve::Transport transport(snapshots, std::move(server_options), net);
  Result<uint16_t> port = transport.Listen();
  NetLegResult result;
  if (!port.ok()) {
    std::fprintf(stderr, "listen: %s\n", port.status().ToString().c_str());
    return result;
  }
  Status loop_status = Status::OK();
  std::thread loop(
      [&transport, &loop_status] { loop_status = transport.Run(); });

  const int threads =
      std::min(conns, conns >= 64 ? 8 : 1);
  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    // Spread the connections evenly; the first `conns % threads` threads
    // take one extra.
    const int share = conns / threads + (t < conns % threads ? 1 : 0);
    pool.emplace_back(DriveConnections, *port, share, per_conn, window,
                      std::cref(query), &ready, &go,
                      &latencies[static_cast<size_t>(t)], &failed);
  }
  while (ready.load() < threads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WallTimer timer;
  go.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  result.wall_seconds = timer.ElapsedSeconds();
  transport.RequestShutdown();
  loop.join();
  if (!loop_status.ok()) {
    std::fprintf(stderr, "event loop: %s\n", loop_status.ToString().c_str());
    failed.store(true);
  }

  std::vector<double> merged;
  for (std::vector<double>& part : latencies) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end());
  result.completed = merged.size();
  result.p50 = Percentile(merged, 0.50);
  result.p99 = Percentile(merged, 0.99);
  result.ok = !failed.load() &&
              result.completed ==
                  static_cast<uint64_t>(conns) * static_cast<uint64_t>(per_conn);
  return result;
}

int RunNetSweep(const Flags& flags, BenchReport* report,
                serve::SnapshotHolder* snapshots, int workers) {
  // Below ~20k total the timed window is tens of milliseconds and the sweep
  // measures cache warm-up and scheduler ramp, not steady-state throughput.
  const int total_requests =
      static_cast<int>(flags.GetInt("net-requests", 20000));
  const int max_conns = static_cast<int>(flags.GetInt("net-max-conns", 10000));

  // The 10k leg needs ~2 fds per connection (client + server end live in
  // this one process). Try raising the hard limit too (works when
  // privileged — containers often are) before settling for soft-to-hard;
  // legs that still do not fit are skipped rather than failing mid-connect.
  rlimit rl{};
  getrlimit(RLIMIT_NOFILE, &rl);
  const rlim_t fd_want =
      static_cast<rlim_t>(std::min(max_conns, 10000)) * 2 + 64;
  if (rl.rlim_cur < fd_want) {
    rlimit bump = rl;
    bump.rlim_cur = std::max(fd_want, rl.rlim_cur);
    bump.rlim_max = std::max(fd_want, rl.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &bump) != 0) {
      bump.rlim_cur = rl.rlim_max;
      bump.rlim_max = rl.rlim_max;
      setrlimit(RLIMIT_NOFILE, &bump);
    }
    getrlimit(RLIMIT_NOFILE, &rl);
  }

  std::printf(
      "\n--- TCP transport: concurrent-connection sweep (cache on) ---\n");
  std::printf("%-26s %10s %12s %10s %10s\n", "config", "requests", "req/s",
              "p50 us", "p99 us");
  double qps_single = 0.0, qps_1k = 0.0;
  for (int conns : {1, 100, 1000, 10000}) {
    if (conns > max_conns) {
      std::printf("%-26s skipped (--net-max-conns=%d)\n",
                  ("net_c" + std::to_string(conns)).c_str(), max_conns);
      continue;
    }
    const rlim_t fd_need = static_cast<rlim_t>(conns) * 2 + 64;
    if (fd_need > rl.rlim_cur) {
      std::printf("%-26s skipped (needs %llu fds, limit %llu)\n",
                  ("net_c" + std::to_string(conns)).c_str(),
                  static_cast<unsigned long long>(fd_need),
                  static_cast<unsigned long long>(rl.rlim_cur));
      continue;
    }
    NetLegResult r =
        RunNetLeg(snapshots, "protein(name)", conns, total_requests, workers);
    if (!r.ok) {
      std::fprintf(stderr, "net leg with %d connections lost responses\n",
                   conns);
      return 1;
    }
    const double qps = static_cast<double>(r.completed) / r.wall_seconds;
    char name[32];
    std::snprintf(name, sizeof(name), "net_c%d", conns);
    std::printf("%-26s %10llu %12.0f %10.0f %10.0f\n", name,
                static_cast<unsigned long long>(r.completed), qps, r.p50,
                r.p99);
    report->AddResult(std::string(name) + "_qps", qps);
    report->AddResult(std::string(name) + "_p50_micros", r.p50);
    report->AddResult(std::string(name) + "_p99_micros", r.p99);
    if (conns == 1) qps_single = qps;
    if (conns == 1000) qps_1k = qps;
  }
  if (qps_single > 0.0 && qps_1k > 0.0) {
    // Acceptance tracker: per-worker throughput at 1k connections vs. a
    // single client — the event loop should cost little (target > 0.8).
    const double ratio = qps_1k / qps_single;
    std::printf("\n1k-connection throughput is %.2fx the single-connection "
                "leg (same %d workers)\n", ratio, workers);
    report->AddResult("net_ratio_1k_vs_1", ratio);
  }
  return 0;
}

int Run(const Flags& flags, BenchReport* report) {
  const int scale = static_cast<int>(flags.GetInt("scale", 800));
  const int level = static_cast<int>(flags.GetInt("level", 3));
  const int workers = static_cast<int>(flags.GetInt("workers", 4));
  const double deadline_millis = flags.GetDouble("deadline-ms", 5.0);
  const bool net_only = flags.GetBool("net-only", false);

  std::printf("=== Extension: Serving throughput & tail latency ===\n\n");

  DatasetOptions generate;
  generate.scale = scale;
  Document doc = GeneratePsd(generate);
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options, nullptr);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  serve::SnapshotHolder snapshots;
  snapshots.Swap(std::make_shared<serve::SummarySnapshot>(
      std::move(*summary), LabelDict(doc.dict())));

  if (net_only) {
    return RunNetSweep(flags, report, &snapshots, workers);
  }

  // Mixed workload: mostly cheap lookups, with wide stars (above the
  // lattice level, distinct children) that make the voting primary sweat.
  const std::vector<std::string> queries = {
      "protein(name)",
      "header(uid,accession)",
      "organism(source,common)",
      "refinfo(authors(author),citation,year)",
      "ProteinEntry(header(uid),protein(name),organism(source))",
      "ProteinEntry(header,protein,organism,reference,summary,sequence,"
      "keywords)",
  };

  std::printf("%-26s %10s %12s %10s %10s %10s %9s\n", "config", "requests",
              "req/s", "p50 us", "p95 us", "p99 us", "degraded");
  for (int burst : {64, 256, 1024}) {
    for (int governed = 0; governed <= 1; ++governed) {
      const double deadline = governed ? deadline_millis : 0.0;
      BurstResult r = RunBurst(&snapshots, queries, burst, workers, deadline);
      if (r.ok + r.errors != static_cast<uint64_t>(burst)) {
        std::fprintf(stderr, "lost responses: %llu of %d\n",
                     static_cast<unsigned long long>(r.ok + r.errors), burst);
        return 1;
      }
      char name[64];
      std::snprintf(name, sizeof(name), "burst%d%s", burst,
                    governed ? "_deadline" : "");
      std::printf("%-26s %10d %12.0f %10.0f %10.0f %10.0f %9llu\n", name,
                  burst, static_cast<double>(burst) / r.wall_seconds, r.p50,
                  r.p95, r.p99, static_cast<unsigned long long>(r.degraded));
      report->AddResult(std::string(name) + "_qps",
                        static_cast<double>(burst) / r.wall_seconds);
      report->AddResult(std::string(name) + "_p50_micros", r.p50);
      report->AddResult(std::string(name) + "_p95_micros", r.p95);
      report->AddResult(std::string(name) + "_p99_micros", r.p99);
      report->AddResult(std::string(name) + "_degraded",
                        static_cast<double>(r.degraded));
    }
  }
  std::printf(
      "\ndeadline runs use --deadline-ms=%.1f per request; degraded counts\n"
      "answers served from a fallback rung instead of the voting primary.\n",
      deadline_millis);

  // Repeated-query workload: the same six queries cycled 1024 times is the
  // snapshot-scoped estimate cache's home turf — after one cold pass per
  // query, every answer is a shard probe. Ungoverned on both sides so the
  // comparison isolates the cache (governed answers are never inserted).
  std::printf("\n--- estimate cache on a repeated-query burst (ungoverned) ---\n");
  std::printf("%-26s %10s %12s %10s %10s %10s %9s\n", "config", "requests",
              "req/s", "p50 us", "p95 us", "p99 us", "hits");
  const int repeat_burst = 1024;
  for (int cached = 0; cached <= 1; ++cached) {
    BurstResult r = RunBurst(&snapshots, queries, repeat_burst, workers,
                             /*deadline_millis=*/0.0, cached != 0);
    if (r.ok + r.errors != static_cast<uint64_t>(repeat_burst)) {
      std::fprintf(stderr, "lost responses: %llu of %d\n",
                   static_cast<unsigned long long>(r.ok + r.errors),
                   repeat_burst);
      return 1;
    }
    const char* name = cached ? "repeat1024_cache" : "repeat1024_nocache";
    std::printf("%-26s %10d %12.0f %10.0f %10.0f %10.0f %9llu\n", name,
                repeat_burst,
                static_cast<double>(repeat_burst) / r.wall_seconds, r.p50,
                r.p95, r.p99, static_cast<unsigned long long>(r.cache_hits));
    report->AddResult(std::string(name) + "_qps",
                      static_cast<double>(repeat_burst) / r.wall_seconds);
    report->AddResult(std::string(name) + "_p50_micros", r.p50);
    report->AddResult(std::string(name) + "_p99_micros", r.p99);
    report->AddResult(std::string(name) + "_cache_hits",
                      static_cast<double>(r.cache_hits));
  }

  return RunNetSweep(flags, report, &snapshots, workers);
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_serve", flags);
  return report.Finish(treelattice::Run(flags, &report));
}
