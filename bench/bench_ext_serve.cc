// Extension benchmark: serving throughput and tail latency. The ROADMAP
// north-star is an estimation *service*; this drives the serve-layer
// worker pool with request bursts of increasing size over a mined PSD
// lattice and reports throughput plus p50/p95/p99 response latency, with
// and without per-request deadlines. The workload mixes cheap in-lattice
// lookups with wide star queries whose voting recursion is expensive —
// exactly the requests the degradation ladder exists for, so the governed
// runs also report how many answers were degraded to a cheaper rung.
//
// Shape to expect: ungoverned tails are dominated by the star queries;
// deadlines cap p99 near the deadline (plus one fallback grace) at the
// price of degraded answers. Throughput scales with workers until the
// queue, not the estimator, is the bottleneck.
//
// Flags: --scale=<n> (PSD records, default 800), --level=<k> (default 3),
//        --workers=<n> (default 4), --deadline-ms=<d> (default 5).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/lattice_builder.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "summary/lattice_summary.h"
#include "util/timer.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace {

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

struct BurstResult {
  double wall_seconds = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // micros
  uint64_t ok = 0, errors = 0, degraded = 0;
  uint64_t cache_hits = 0;
};

/// Submits `n` requests round-robin over `queries` and waits for every
/// response, measuring per-request submit-to-sink latency.
BurstResult RunBurst(serve::SnapshotHolder* snapshots,
                     const std::vector<std::string>& queries, int n,
                     int workers, double deadline_millis,
                     bool enable_cache = false) {
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> submitted(static_cast<size_t>(n));
  // One slot per request id; distinct ids never collide, so the sink can
  // write lock-free (sink calls are serialized by the server anyway).
  std::vector<double> latencies(static_cast<size_t>(n), 0.0);
  std::vector<uint8_t> degraded_flags(static_cast<size_t>(n), 0);

  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = static_cast<size_t>(n);  // no shedding: pure latency
  options.default_deadline_millis = deadline_millis;
  options.enable_estimate_cache = enable_cache;
  BurstResult result;
  {
    serve::Server server(
        snapshots, options, [&](const serve::ServeResponse& response) {
          size_t slot = static_cast<size_t>(response.id - 1);
          latencies[slot] = std::chrono::duration<double, std::micro>(
                                Clock::now() - submitted[slot])
                                .count();
          degraded_flags[slot] = response.degraded ? 1 : 0;
        });
    WallTimer timer;
    for (int i = 0; i < n; ++i) {
      serve::ServeRequest request;
      request.id = static_cast<uint64_t>(i + 1);
      request.query = queries[static_cast<size_t>(i) % queries.size()];
      submitted[static_cast<size_t>(i)] = Clock::now();
      server.Submit(std::move(request));
    }
    server.Shutdown();  // drains: every latency slot is filled after this
    result.wall_seconds = timer.ElapsedSeconds();
    serve::Server::Stats stats = server.GetStats();
    result.ok = stats.ok;
    result.errors = stats.errors;
    result.degraded = stats.degraded;
    result.cache_hits = stats.cache_hits;
  }

  std::sort(latencies.begin(), latencies.end());
  result.p50 = Percentile(latencies, 0.50);
  result.p95 = Percentile(latencies, 0.95);
  result.p99 = Percentile(latencies, 0.99);
  return result;
}

int Run(const Flags& flags, BenchReport* report) {
  const int scale = static_cast<int>(flags.GetInt("scale", 800));
  const int level = static_cast<int>(flags.GetInt("level", 3));
  const int workers = static_cast<int>(flags.GetInt("workers", 4));
  const double deadline_millis = flags.GetDouble("deadline-ms", 5.0);

  std::printf("=== Extension: Serving throughput & tail latency ===\n\n");

  DatasetOptions generate;
  generate.scale = scale;
  Document doc = GeneratePsd(generate);
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options, nullptr);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  serve::SnapshotHolder snapshots;
  snapshots.Swap(std::make_shared<serve::SummarySnapshot>(
      std::move(*summary), LabelDict(doc.dict())));

  // Mixed workload: mostly cheap lookups, with wide stars (above the
  // lattice level, distinct children) that make the voting primary sweat.
  const std::vector<std::string> queries = {
      "protein(name)",
      "header(uid,accession)",
      "organism(source,common)",
      "refinfo(authors(author),citation,year)",
      "ProteinEntry(header(uid),protein(name),organism(source))",
      "ProteinEntry(header,protein,organism,reference,summary,sequence,"
      "keywords)",
  };

  std::printf("%-26s %10s %12s %10s %10s %10s %9s\n", "config", "requests",
              "req/s", "p50 us", "p95 us", "p99 us", "degraded");
  for (int burst : {64, 256, 1024}) {
    for (int governed = 0; governed <= 1; ++governed) {
      const double deadline = governed ? deadline_millis : 0.0;
      BurstResult r = RunBurst(&snapshots, queries, burst, workers, deadline);
      if (r.ok + r.errors != static_cast<uint64_t>(burst)) {
        std::fprintf(stderr, "lost responses: %llu of %d\n",
                     static_cast<unsigned long long>(r.ok + r.errors), burst);
        return 1;
      }
      char name[64];
      std::snprintf(name, sizeof(name), "burst%d%s", burst,
                    governed ? "_deadline" : "");
      std::printf("%-26s %10d %12.0f %10.0f %10.0f %10.0f %9llu\n", name,
                  burst, static_cast<double>(burst) / r.wall_seconds, r.p50,
                  r.p95, r.p99, static_cast<unsigned long long>(r.degraded));
      report->AddResult(std::string(name) + "_qps",
                        static_cast<double>(burst) / r.wall_seconds);
      report->AddResult(std::string(name) + "_p50_micros", r.p50);
      report->AddResult(std::string(name) + "_p95_micros", r.p95);
      report->AddResult(std::string(name) + "_p99_micros", r.p99);
      report->AddResult(std::string(name) + "_degraded",
                        static_cast<double>(r.degraded));
    }
  }
  std::printf(
      "\ndeadline runs use --deadline-ms=%.1f per request; degraded counts\n"
      "answers served from a fallback rung instead of the voting primary.\n",
      deadline_millis);

  // Repeated-query workload: the same six queries cycled 1024 times is the
  // snapshot-scoped estimate cache's home turf — after one cold pass per
  // query, every answer is a shard probe. Ungoverned on both sides so the
  // comparison isolates the cache (governed answers are never inserted).
  std::printf("\n--- estimate cache on a repeated-query burst (ungoverned) ---\n");
  std::printf("%-26s %10s %12s %10s %10s %10s %9s\n", "config", "requests",
              "req/s", "p50 us", "p95 us", "p99 us", "hits");
  const int repeat_burst = 1024;
  for (int cached = 0; cached <= 1; ++cached) {
    BurstResult r = RunBurst(&snapshots, queries, repeat_burst, workers,
                             /*deadline_millis=*/0.0, cached != 0);
    if (r.ok + r.errors != static_cast<uint64_t>(repeat_burst)) {
      std::fprintf(stderr, "lost responses: %llu of %d\n",
                   static_cast<unsigned long long>(r.ok + r.errors),
                   repeat_burst);
      return 1;
    }
    const char* name = cached ? "repeat1024_cache" : "repeat1024_nocache";
    std::printf("%-26s %10d %12.0f %10.0f %10.0f %10.0f %9llu\n", name,
                repeat_burst,
                static_cast<double>(repeat_burst) / r.wall_seconds, r.p50,
                r.p95, r.p99, static_cast<unsigned long long>(r.cache_hits));
    report->AddResult(std::string(name) + "_qps",
                      static_cast<double>(repeat_burst) / r.wall_seconds);
    report->AddResult(std::string(name) + "_p50_micros", r.p50);
    report->AddResult(std::string(name) + "_p99_micros", r.p99);
    report->AddResult(std::string(name) + "_cache_hits",
                      static_cast<double>(r.cache_hits));
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_serve", flags);
  return report.Finish(treelattice::Run(flags, &report));
}
