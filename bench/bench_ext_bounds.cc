// Extension experiment (paper Section 6 future work): empirical error
// bounds. CalibratedEstimator learns per-size multiplicative error
// quantiles on a calibration workload and widens each estimate into an
// interval; this bench reports the interval width and the *coverage* —
// the fraction of fresh queries whose true count falls inside — which
// should track the requested confidence.
//
// Flags: --scale=<n>, --seed=<n>, --confidence=<c> (default 0.9),
//        --queries=<n>.

#include <cstdio>

#include "core/calibrated_estimator.h"
#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"
#include "workload/workload.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const double confidence = flags.GetDouble("confidence", 0.9);
  std::printf(
      "=== Extension: Calibrated Error Bounds (confidence %.0f%%) ===\n\n",
      confidence * 100);
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    Result<DatasetBundle> bundle =
        PrepareDataset(name, options, /*build_sketch=*/false);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    RecursiveDecompositionEstimator inner(&bundle->summary);
    CalibratedEstimator::Options calibration;
    calibration.confidence = confidence;
    calibration.queries_per_size =
        static_cast<size_t>(flags.GetInt("queries", 60));
    calibration.seed = options.seed + 1;
    Result<CalibratedEstimator> calibrated =
        CalibratedEstimator::Calibrate(bundle->doc, &inner, calibration);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   calibrated.status().ToString().c_str());
      return 1;
    }

    MatchCounter counter(bundle->doc);
    TextTable table;
    table.SetHeader({"QuerySize", "bound factor", "coverage(%)",
                     "#fresh queries"});
    for (int size = 5; size <= 8; ++size) {
      WorkloadOptions workload;
      workload.seed = options.seed + 7777 + static_cast<uint64_t>(size);
      workload.query_size = size;
      workload.num_queries =
          static_cast<size_t>(flags.GetInt("queries", 60));
      Result<std::vector<Twig>> queries =
          GeneratePositiveWorkload(bundle->doc, workload);
      if (!queries.ok()) {
        std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
        return 1;
      }
      size_t covered = 0;
      for (const Twig& q : *queries) {
        double truth = static_cast<double>(counter.Count(q));
        Result<BoundedEstimate> bounded = calibrated->EstimateWithBound(q);
        if (!bounded.ok()) {
          std::fprintf(stderr, "%s\n", bounded.status().ToString().c_str());
          return 1;
        }
        if (truth >= bounded->lower - 1e-9 &&
            truth <= bounded->upper + 1e-9) {
          ++covered;
        }
      }
      table.AddRow({std::to_string(size),
                    FormatDouble(calibrated->FactorForSize(size), 2),
                    FormatDouble(100.0 * double(covered) /
                                     double(queries->size()),
                                 1),
                    std::to_string(queries->size())});
    }
    std::printf("--- %s ---\n%s\n", name.c_str(), table.Render().c_str());
  }
  std::printf(
      "Shape to expect: coverage tracks the requested confidence; bound\n"
      "factors widen with query size (error compounds per decomposition\n"
      "level) and are wider on correlated datasets (imdb) than on\n"
      "near-independent ones (psd).\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_bounds", flags);
  return report.Finish(treelattice::Run(flags));
}
