// google-benchmark microbenchmarks for the library's hot paths: canonical
// coding, match counting, lattice mining levels (the ablation DESIGN.md
// calls out), decomposition, and the estimators.
//
// `--json=<path>` (the shared bench convention) is translated to
// google-benchmark's own JSON reporter; the metrics-registry snapshot is
// written next to it as <path>.metrics.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "io/env.h"
#include "obs/metrics.h"

#include "core/fixed_size_estimator.h"
#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "match/matcher.h"
#include "mining/freqt_builder.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "twig/decompose.h"
#include "workload/workload.h"

namespace treelattice {
namespace {

const Document& SharedDoc() {
  static const Document* doc = [] {
    DatasetOptions options;
    options.scale = 400;
    return new Document(GenerateXmark(options));
  }();
  return *doc;
}

const LatticeSummary& SharedSummary() {
  static const LatticeSummary* summary = [] {
    LatticeBuildOptions options;
    options.max_level = 4;
    auto result = BuildLattice(SharedDoc(), options);
    return new LatticeSummary(std::move(result).value());
  }();
  return *summary;
}

std::vector<Twig> SharedQueries(int size) {
  WorkloadOptions options;
  options.seed = 1234 + static_cast<uint64_t>(size);
  options.query_size = size;
  options.num_queries = 32;
  auto result = GeneratePositiveWorkload(SharedDoc(), options);
  return std::move(result).value();
}

void BM_CanonicalCode(benchmark::State& state) {
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queries[i % queries.size()].CanonicalCode());
    ++i;
  }
}
BENCHMARK(BM_CanonicalCode)->Arg(4)->Arg(8);

void BM_MatchCount(benchmark::State& state) {
  MatchCounter counter(SharedDoc());
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Count(queries[i % queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_MatchCount)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_LatticeBuild(benchmark::State& state) {
  DatasetOptions generate;
  generate.scale = 100;
  Document doc = GenerateXmark(generate);
  LatticeBuildOptions options;
  options.max_level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto summary = BuildLattice(doc, options);
    benchmark::DoNotOptimize(summary.ok());
  }
}
BENCHMARK(BM_LatticeBuild)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LatticeBuildNoApriori(benchmark::State& state) {
  DatasetOptions generate;
  generate.scale = 100;
  Document doc = GenerateXmark(generate);
  LatticeBuildOptions options;
  options.max_level = 4;
  options.apriori_prune = false;
  for (auto _ : state) {
    auto summary = BuildLattice(doc, options);
    benchmark::DoNotOptimize(summary.ok());
  }
}
BENCHMARK(BM_LatticeBuildNoApriori)->Unit(benchmark::kMillisecond);

void BM_LatticeBuildFreqt(benchmark::State& state) {
  // Same workload as BM_LatticeBuild/4 for a direct generate-and-count vs
  // rightmost-extension (occurrence lists) comparison.
  DatasetOptions generate;
  generate.scale = 100;
  Document doc = GenerateXmark(generate);
  LatticeBuildOptions options;
  options.max_level = 4;
  for (auto _ : state) {
    auto summary = BuildLatticeFreqt(doc, options);
    benchmark::DoNotOptimize(summary.ok());
  }
}
BENCHMARK(BM_LatticeBuildFreqt)->Unit(benchmark::kMillisecond);

void BM_LatticeBuildParallel(benchmark::State& state) {
  DatasetOptions generate;
  generate.scale = 400;
  Document doc = GenerateXmark(generate);
  LatticeBuildOptions options;
  options.max_level = 4;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto summary = BuildLattice(doc, options);
    benchmark::DoNotOptimize(summary.ok());
  }
}
BENCHMARK(BM_LatticeBuildParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_RecursiveDecomposition(benchmark::State& state) {
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const Twig& q = queries[i % queries.size()];
    auto pairs = ValidLeafPairs(q);
    benchmark::DoNotOptimize(
        SplitByLeafPair(q, pairs[0].first, pairs[0].second).ok());
    ++i;
  }
}
BENCHMARK(BM_RecursiveDecomposition)->Arg(4)->Arg(8);

void BM_FixedSizeCover(benchmark::State& state) {
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FixedSizeCover(queries[i % queries.size()], 4).ok());
    ++i;
  }
}
BENCHMARK(BM_FixedSizeCover)->Arg(5)->Arg(8);

void BM_EstimateRecursive(benchmark::State& state) {
  RecursiveDecompositionEstimator estimator(&SharedSummary());
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(queries[i % queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_EstimateRecursive)->Arg(5)->Arg(6)->Arg(8);

void BM_EstimateRecursiveVoting(benchmark::State& state) {
  RecursiveDecompositionEstimator estimator(
      &SharedSummary(), RecursiveDecompositionEstimator::Options{true, 0});
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(queries[i % queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_EstimateRecursiveVoting)->Arg(5)->Arg(6)->Arg(8);

void BM_EstimateFixedSize(benchmark::State& state) {
  FixedSizeDecompositionEstimator estimator(&SharedSummary());
  std::vector<Twig> queries = SharedQueries(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(queries[i % queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_EstimateFixedSize)->Arg(5)->Arg(6)->Arg(8);

void BM_SummaryLookup(benchmark::State& state) {
  const LatticeSummary& summary = SharedSummary();
  std::vector<Twig> queries = SharedQueries(4);
  std::vector<std::string> codes;
  for (const Twig& q : queries) codes.push_back(q.CanonicalCode());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(summary.LookupCode(codes[i % codes.size()]));
    ++i;
  }
}
BENCHMARK(BM_SummaryLookup);

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  // Rewrite --json=<path> into google-benchmark's reporter flags so this
  // binary matches the other benches' interface, and drop other non
  // --benchmark_* flags (the shared Flags contract ignores unrecognized
  // arguments, so sweep drivers pass the same flag set to every bench).
  std::string json_path;
  std::vector<char*> args;
  std::vector<std::string> storage;
  args.reserve(static_cast<size_t>(argc) + 2);
  storage.reserve(2);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      storage.push_back("--benchmark_out=" + json_path);
      storage.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      args.push_back(argv[i]);
    }
  }
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  args.push_back(nullptr);

  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    std::string path = json_path + ".metrics.json";
    if (treelattice::Status s = treelattice::WriteFileAtomic(
            treelattice::Env::Default(), path,
            treelattice::obs::MetricsRegistry::Default()->ToJson());
        !s.ok()) {
      std::fprintf(stderr, "--json: %s\n", s.ToString().c_str());
    }
  }
  return 0;
}
