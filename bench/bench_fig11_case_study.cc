// Reproduces the Figure 11 / Section 5.3 case study: a concise document
// with high child-count variance on which the TreeSketches multiplicative
// estimate errs badly while TreeLattice, whose 3-lattice stores the exact
// counts of the relevant subtrees, stays (near-)exact.
//
// Document (Fig. 11a, abstracted): three 'a' nodes with four 'b' children
// each and one 'a' node with two 'b' children; only the poor a's b's carry
// a 'c'. TreeSketches at label granularity sees a->b weight 3.5 and
// multiplies averages; TreeLattice reads the stored twig counts.

#include <cstdio>
#include <string>

#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "treesketch/tree_sketch.h"
#include "util/string_util.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

int Run(const Flags&) {
  std::string xml = "<r>";
  for (int i = 0; i < 3; ++i) {
    xml += "<a><b/><b/><b/><b/></a>";  // rich a: 4 b's, no c
  }
  xml += "<a><b><c/></b><b><c/></b></a>";  // poor a: 2 b's, each with a c
  xml += "</r>";
  Result<Document> doc = ParseXmlString(xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  LabelDict* dict = &doc->mutable_dict();

  LatticeBuildOptions build;
  build.max_level = 3;
  Result<LatticeSummary> summary = BuildLattice(*doc, build);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  TreeSketchOptions sketch_options;
  sketch_options.memory_budget_bytes = 64;  // forces label granularity
  Result<TreeSketch> sketch = TreeSketch::Build(*doc, sketch_options);
  if (!sketch.ok()) {
    std::fprintf(stderr, "%s\n", sketch.status().ToString().c_str());
    return 1;
  }

  MatchCounter counter(*doc);
  RecursiveDecompositionEstimator lattice(&*summary);

  std::printf("=== Figure 11 Case Study: error compounding under fanout "
              "variance ===\n\n");
  std::printf("document: 3x a(b,b,b,b), 1x a(b(c),b(c)); synopsis edge "
              "a->b carries avg weight 3.5\n\n");
  TextTable table;
  table.SetHeader({"Query", "True", "TreeLattice", "TL err(%)",
                   "TreeSketches", "TS err(%)"});
  for (const char* text :
       {"a(b)", "a(b,b)", "a(b(c))", "a(b(c),b)", "a(b(c),b(c))",
        "r(a(b,b))"}) {
    Result<Twig> query = Twig::Parse(text, dict);
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      return 1;
    }
    double truth = static_cast<double>(counter.Count(*query));
    Result<double> tl = lattice.Estimate(*query);
    Result<double> ts = sketch->EstimateCount(*query);
    if (!tl.ok() || !ts.ok()) {
      std::fprintf(stderr, "estimation failed for %s\n", text);
      return 1;
    }
    auto err = [&](double est) {
      double denom = truth > 0 ? truth : 1.0;
      return 100.0 * std::abs(est - truth) / denom;
    };
    table.AddRow({text, FormatDouble(truth, 0), FormatDouble(*tl, 2),
                  FormatDouble(err(*tl), 1), FormatDouble(*ts, 2),
                  FormatDouble(err(*ts), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape to match (Section 5.3): TreeSketches errs >100%% on variance-\n"
      "sensitive twigs; TreeLattice answers in-lattice twigs exactly and\n"
      "decomposed ones from exact piece counts.\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig11_case_study", flags);
  return report.Finish(treelattice::Run(flags));
}
