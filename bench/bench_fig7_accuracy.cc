// Reproduces Figure 7 (a-d): average selectivity estimation error versus
// query size (4-8) for the four estimators (recursive, recursive+voting,
// fixed-size, TreeSketches) on each dataset.
//
// Shape to match: TreeLattice beats TreeSketches on Nasa and (massively) on
// XMark at all sizes; on PSD fixed-size loses beyond size ~6 while the
// recursive variants keep winning; on IMDB (correlated branches) the
// voting estimator is competitive at small sizes and TreeSketches wins for
// larger queries.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n> (default 60),
//        --min_size=<n> --max_size=<n> (default 4..8),
//        --exhaustive_sketch (faithful slow TreeSketches build).

#include <cstdio>

#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int min_size = static_cast<int>(flags.GetInt("min_size", 4));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  std::printf(
      "=== Figure 7: Average Selectivity Estimation Error (%%) vs Query "
      "Size ===\n\n");
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    options.queries_per_size =
        static_cast<size_t>(flags.GetInt("queries", 60));
    if (flags.GetBool("exhaustive_sketch", false)) {
      options.sketch_merge_candidates = 0;
    }
    Result<DatasetBundle> bundle = PrepareDataset(name, options);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    Result<AccuracySweep> sweep =
        RunAccuracySweep(*bundle, options, min_size, max_size);
    if (!sweep.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   sweep.status().ToString().c_str());
      return 1;
    }

    std::printf("--- Fig 7 (%s) ---\n", name.c_str());
    TextTable table;
    std::vector<std::string> header = {"QuerySize", "#Queries"};
    for (const std::string& estimator : sweep->estimator_names) {
      header.push_back(estimator);
    }
    table.SetHeader(header);
    for (size_t i = 0; i < sweep->sizes.size(); ++i) {
      std::vector<std::string> row = {
          std::to_string(sweep->sizes[i]),
          std::to_string(sweep->workloads[i].queries.size())};
      for (const EstimatorRun& run : sweep->runs[i]) {
        row.push_back(FormatDouble(run.avg_error_pct, 1));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig7_accuracy", flags);
  return report.Finish(treelattice::Run(flags));
}
