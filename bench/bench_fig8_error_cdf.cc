// Reproduces Figure 8 (a-d): cumulative distribution of per-query relative
// error, pooled over query sizes 4-8, per estimator and dataset.
//
// Shape to match: on Nasa/XMark all TreeLattice estimators dominate
// TreeSketches across the whole distribution; on XMark a small fraction of
// TreeSketches queries shows grossly overestimated tails (the paper's
// outlier explanation for Fig. 7d); on PSD the curves are comparable; on
// IMDB TreeSketches leads except versus recursive+voting.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n>, --min_size, --max_size,
//        --exhaustive_sketch.

#include <algorithm>
#include <cstdio>

#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "harness/metrics.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int min_size = static_cast<int>(flags.GetInt("min_size", 4));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  // The paper plots the CDF on a log-scaled error axis; print fixed
  // percentile markers of the error distribution instead of raw curves.
  const double kErrorMarks[] = {1, 10, 50, 100, 1000, 10000};

  std::printf(
      "=== Figure 8: Cumulative Error Distribution (%% of queries with "
      "error <= X%%) ===\n\n");
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    options.queries_per_size =
        static_cast<size_t>(flags.GetInt("queries", 60));
    if (flags.GetBool("exhaustive_sketch", false)) {
      options.sketch_merge_candidates = 0;
    }
    Result<DatasetBundle> bundle = PrepareDataset(name, options);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    Result<AccuracySweep> sweep =
        RunAccuracySweep(*bundle, options, min_size, max_size);
    if (!sweep.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   sweep.status().ToString().c_str());
      return 1;
    }

    std::printf("--- Fig 8 (%s), query sizes %d-%d pooled ---\n",
                name.c_str(), min_size, max_size);
    TextTable table;
    std::vector<std::string> header = {"Estimator"};
    for (double mark : kErrorMarks) {
      header.push_back("<=" + FormatDouble(mark, 0) + "%");
    }
    header.push_back("max err");
    table.SetHeader(header);

    for (size_t e = 0; e < sweep->estimator_names.size(); ++e) {
      std::vector<double> pooled;
      for (const auto& runs : sweep->runs) {
        const EstimatorRun& run = runs[e];
        pooled.insert(pooled.end(), run.errors.begin(), run.errors.end());
      }
      std::vector<std::string> row = {sweep->estimator_names[e]};
      double max_err = 0;
      for (double v : pooled) max_err = std::max(max_err, v);
      for (double mark : kErrorMarks) {
        size_t below = 0;
        for (double v : pooled) {
          if (v <= mark) ++below;
        }
        row.push_back(FormatDouble(
            100.0 * double(below) / double(pooled.size()), 1));
      }
      row.push_back(FormatDouble(max_err, 0));
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig8_error_cdf", flags);
  return report.Finish(treelattice::Run(flags));
}
