// Reproduces Figure 9 (a-d): average estimation response time (ms) versus
// query size for the four estimators on each dataset.
//
// Shape to match: recursive and fixed-size run orders of magnitude faster
// than TreeSketches; fixed-size is a constant factor faster than recursive;
// voting degrades with query size (combinatorial decompositions) but stays
// ahead of TreeSketches.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n>, --min_size, --max_size,
//        --exhaustive_sketch.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int min_size = static_cast<int>(flags.GetInt("min_size", 4));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  std::printf(
      "=== Figure 9: Average Response Time (ms) vs Query Size ===\n\n");
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    options.queries_per_size =
        static_cast<size_t>(flags.GetInt("queries", 60));
    if (flags.GetBool("exhaustive_sketch", false)) {
      options.sketch_merge_candidates = 0;
    }
    Result<DatasetBundle> bundle = PrepareDataset(name, options);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    Result<AccuracySweep> sweep =
        RunAccuracySweep(*bundle, options, min_size, max_size);
    if (!sweep.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   sweep.status().ToString().c_str());
      return 1;
    }

    std::printf("--- Fig 9 (%s) ---\n", name.c_str());
    TextTable table;
    std::vector<std::string> header = {"QuerySize"};
    for (const std::string& estimator : sweep->estimator_names) {
      header.push_back(estimator);
    }
    table.SetHeader(header);
    for (size_t i = 0; i < sweep->sizes.size(); ++i) {
      std::vector<std::string> row = {std::to_string(sweep->sizes[i])};
      for (const EstimatorRun& run : sweep->runs[i]) {
        row.push_back(FormatDouble(run.avg_time_ms, 4));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig9_response_time", flags);
  return report.Finish(treelattice::Run(flags));
}
