// Extension benchmark: summary persistence cost. The ROADMAP north-star is
// a service that periodically persists and reloads its K-lattice summary;
// this measures the three operations on the new TLSUMMARY v2 container —
// checksummed atomic save (fsync included), load, and checksum-only verify
// — against the legacy v1 text format, over a real mined lattice.
//
// Shape to expect: v2 save is dominated by the fsync; v2 load beats v1
// load (binary decode vs text parse); verify is the cheapest since it
// never builds the in-memory lattice.
//
// Flags: --scale=<n> (PSD records, default 2000), --level=<k> (default 4),
//        --iters=<n> (timed repetitions, default 5), --seed=<n>.

#include <cstdio>
#include <string>

#include "datagen/datasets.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "io/env.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace treelattice {
namespace {

uint64_t GetFileSizeOrZero(Env* env, const std::string& path) {
  Result<uint64_t> size = env->GetFileSize(path);
  return size.ok() ? *size : 0;
}

int Run(const Flags& flags) {
  const int scale = static_cast<int>(flags.GetInt("scale", 2000));
  const int level = static_cast<int>(flags.GetInt("level", 4));
  const int iters = static_cast<int>(flags.GetInt("iters", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("=== Extension: Summary Persistence (save/load/verify) ===\n\n");

  DatasetOptions generate;
  generate.seed = seed;
  generate.scale = scale;
  Document doc = GeneratePsd(generate);

  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options, nullptr);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("lattice: %zu patterns, levels 1-%d, %s in memory\n\n",
              summary->NumPatterns(), level,
              HumanBytes(summary->MemoryBytes()).c_str());

  Env* env = Env::Default();
  const std::string v2_path = "/tmp/tl_bench_persistence.tls";
  const std::string v1_path = "/tmp/tl_bench_persistence.txt";

  // One untimed save of each format for the file-size report and so the
  // load benchmarks have a file to read.
  if (Status s = SaveSummaryV2(*summary, &doc.dict(), env, v2_path);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = summary->SaveToFileV1(v1_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  uint64_t v2_bytes = GetFileSizeOrZero(env, v2_path);
  uint64_t v1_bytes = GetFileSizeOrZero(env, v1_path);
  std::printf("file size: v2 %s (dict embedded)  v1 %s (+ .dict sidecar)\n\n",
              HumanBytes(v2_bytes).c_str(), HumanBytes(v1_bytes).c_str());

  auto report = [&](const char* name, double seconds, uint64_t bytes) {
    std::printf("%-28s %8.2f ms   %8.1f MB/s\n", name,
                seconds * 1e3 / iters,
                static_cast<double>(bytes) * iters / seconds / 1e6);
  };

  WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    if (!SaveSummaryV2(*summary, &doc.dict(), env, v2_path).ok()) return 1;
  }
  report("v2 save (atomic+fsync)", timer.ElapsedSeconds(), v2_bytes);

  timer.Restart();
  for (int i = 0; i < iters; ++i) {
    if (!summary->SaveToFileV1(v1_path).ok()) return 1;
  }
  report("v1 save (text, no fsync)", timer.ElapsedSeconds(), v1_bytes);

  timer.Restart();
  for (int i = 0; i < iters; ++i) {
    Result<LoadedSummary> loaded = LoadSummary(env, v2_path);
    if (!loaded.ok() || loaded->salvaged) return 1;
  }
  report("v2 load", timer.ElapsedSeconds(), v2_bytes);

  timer.Restart();
  for (int i = 0; i < iters; ++i) {
    if (!LatticeSummary::LoadFromFile(v1_path).ok()) return 1;
  }
  report("v1 load", timer.ElapsedSeconds(), v1_bytes);

  timer.Restart();
  for (int i = 0; i < iters; ++i) {
    Result<VerifyReport> verified = VerifySummaryFile(env, v2_path);
    if (!verified.ok() || !verified->intact) return 1;
  }
  report("v2 verify (checksums only)", timer.ElapsedSeconds(), v2_bytes);

  for (const std::string& path : {v2_path, v1_path}) {
    Status removed = env->DeleteFile(path);
    if (!removed.ok()) {
      std::fprintf(stderr, "cleanup of %s failed: %s\n", path.c_str(),
                   removed.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_persistence", flags);
  return report.Finish(treelattice::Run(flags));
}
