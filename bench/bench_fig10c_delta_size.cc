// Reproduces Figure 10 (c): IMDB 4-lattice summary size as the δ-derivable
// pruning tolerance varies over {0, 10, 20, 30}%.
//
// Shape to match: size decreases monotonically with δ; by δ=10% the
// summary undercuts the 50 KB TreeSketches budget.
//
// Flags: --scale=<n>, --seed=<n>, --dataset=<name> (default imdb).

#include <cstdio>

#include "core/pruning.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const std::string dataset = flags.GetString("dataset", "imdb");
  std::printf("=== Figure 10(c): Summary Size vs delta (%s) ===\n\n",
              dataset.c_str());
  ExperimentOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.scale = static_cast<int>(flags.GetInt("scale", 0));
  Result<DatasetBundle> bundle =
      PrepareDataset(dataset, options, /*build_sketch=*/false);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  TextTable table;
  table.SetHeader({"delta(%)", "Size(KB)", "Patterns"});
  table.AddRow({"none",
                FormatDouble(double(bundle->summary.MemoryBytes()) / 1024, 1),
                std::to_string(bundle->summary.NumPatterns())});
  for (double delta : {0.0, 0.10, 0.20, 0.30}) {
    PruneOptions prune;
    prune.delta = delta;
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(bundle->summary, prune);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
      return 1;
    }
    table.AddRow({FormatDouble(delta * 100, 0),
                  FormatDouble(double(pruned->MemoryBytes()) / 1024, 1),
                  std::to_string(pruned->NumPatterns())});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig10c_delta_size", flags);
  return report.Finish(treelattice::Run(flags));
}
