// Extension ablation: *what* is summarized matters. The paper's Sections
// 1/2.2 argue that path-based methods (Lore, Markov tables, XPathLearner)
// "do not adapt to twig queries well since path correlations are not
// accounted for". This bench makes that claim measurable: the
// path-decomposition baseline estimates a twig from its root-to-leaf path
// counts (via the same Markov machinery, over the same lattice summary),
// so the only difference from TreeLattice is that sibling-branch
// correlation is ignored.
//
// Shape to expect: on datasets with cross-branch correlation (imdb,
// xmark, nasa) the path baseline is clearly worse than subtree
// decomposition at every size; on near-independent psd they converge.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n>, --min_size, --max_size.

#include <cstdio>

#include "core/path_decomposition_estimator.h"
#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int min_size = static_cast<int>(flags.GetInt("min_size", 4));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  std::printf(
      "=== Extension: Subtree vs Path Summaries (avg error %%) ===\n\n");
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    options.queries_per_size =
        static_cast<size_t>(flags.GetInt("queries", 60));
    Result<DatasetBundle> bundle =
        PrepareDataset(name, options, /*build_sketch=*/false);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    RecursiveDecompositionEstimator recursive(&bundle->summary);
    PathDecompositionEstimator paths(&bundle->summary);

    MatchCounter counter(bundle->doc);
    TextTable table;
    table.SetHeader({"QuerySize", "recursive (subtrees)",
                     "path-decomposition"});
    for (int size = min_size; size <= max_size; ++size) {
      Result<WorkloadEval> workload =
          PrepareWorkload(bundle->doc, counter, size, options);
      if (!workload.ok()) {
        std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {std::to_string(size)};
      for (SelectivityEstimator* estimator :
           std::vector<SelectivityEstimator*>{&recursive, &paths}) {
        Result<EstimatorRun> run = RunEstimator(*estimator, *workload);
        if (!run.ok()) {
          std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
          return 1;
        }
        row.push_back(FormatDouble(run->avg_error_pct, 1));
      }
      table.AddRow(row);
    }
    std::printf("--- %s ---\n%s\n", name.c_str(), table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_path_baseline", flags);
  return report.Finish(treelattice::Run(flags));
}
