// Extension benchmark: the batched estimation pipeline (DESIGN.md §14).
// Streams size-N voting queries through BatchEstimator::EstimateBatch at
// batch sizes {1, 8, 64, 256} and through the plain single-query path
// (per-query memo reset, per-query summary probes), on the same workload.
// The batch path's wins are structural: cross-query dedup answers repeated
// queries once, the batch-scoped memo shares every sub-twig across the
// batch, the grouped probe pass hits the summary table in slot order with
// prefetch, and all scratch comes from a monotonic arena reset per batch.
//
// Bit-identity gate: before any timing, every batch size is checked to
// produce the exact bits of the sequential path on every query — memo
// entries are pure per-code values inserted only after full computation,
// so sharing them cannot change results; this bench enforces that claim.
//
// The headline result is `speedup` (batch-64 queries/sec over sequential
// queries/sec), a machine-independent ratio guarded by
// tools/check_perf.sh against bench/baselines/batch.json. The tentpole
// target is >= 2x.
//
// Flags: --scale=<n> (PSD records, default 800), --level=<k> (default 3),
//        --size=<n> (query size, default 8), --pool=<n> (distinct queries,
//        default 24), --stream=<n> (stream length, default 256),
//        --reps=<n> (timed passes, default 5).

#include <cstdio>
#include <span>
#include <vector>

#include "core/batch_estimator.h"
#include "core/estimate_scratch.h"
#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "util/result.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace treelattice {
namespace {

constexpr size_t kBatchSizes[] = {1, 8, 64, 256};

int Run(const Flags& flags, BenchReport* report) {
  const int scale = static_cast<int>(flags.GetInt("scale", 800));
  const int level = static_cast<int>(flags.GetInt("level", 3));
  const int query_size = static_cast<int>(flags.GetInt("size", 8));
  const size_t pool_size = static_cast<size_t>(flags.GetInt("pool", 24));
  const size_t stream_size = static_cast<size_t>(flags.GetInt("stream", 256));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));

  std::printf("=== Extension: Batched estimation (batch vs sequential) ===\n\n");

  DatasetOptions generate;
  generate.scale = scale;
  Document doc = GeneratePsd(generate);
  LatticeBuildOptions build;
  build.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, build, nullptr);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  WorkloadOptions workload;
  workload.query_size = query_size;
  workload.num_queries = pool_size;
  Result<std::vector<Twig>> pool = GeneratePositiveWorkload(doc, workload);
  if (!pool.ok()) {
    std::fprintf(stderr, "%s\n", pool.status().ToString().c_str());
    return 1;
  }
  if (pool->empty()) {
    std::fprintf(stderr, "no size-%d queries sampled\n", query_size);
    return 1;
  }
  // The stream cycles the pool: a batch larger than the pool carries
  // duplicates (the dedup stage's case), and consecutive batches repeat
  // structure (the shared-memo case) — the shape of a real estimation
  // burst from a plan enumerator.
  std::vector<Twig> stream;
  stream.reserve(stream_size);
  for (size_t i = 0; i < stream_size; ++i) {
    stream.push_back((*pool)[i % pool->size()]);
  }
  std::printf("PSD scale %d, lattice level %d, stream of %zu size-%d voting "
              "queries (%zu distinct)\n\n",
              scale, level, stream.size(), query_size, pool->size());

  RecursiveDecompositionEstimator::Options voting;
  voting.voting = true;
  RecursiveDecompositionEstimator sequential(&*summary, voting);
  BatchEstimator batch(&*summary, voting);
  EstimateScratch scratch;
  EstimateOptions sequential_options;
  sequential_options.scratch = &scratch;

  // Reference values from the sequential path (also the equality oracle).
  std::vector<double> expected(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    Result<double> value = sequential.Estimate(stream[i], sequential_options);
    if (!value.ok()) {
      std::fprintf(stderr, "sequential estimate failed: %s\n",
                   value.status().ToString().c_str());
      return 1;
    }
    expected[i] = *value;
  }

  // Equality gate: every batch size must reproduce the sequential bits on
  // every query of the stream, else the timings below compare different
  // algorithms.
  std::vector<EstimateResult> results(stream.size());
  for (size_t batch_size : kBatchSizes) {
    for (size_t start = 0; start < stream.size(); start += batch_size) {
      const size_t n = std::min(batch_size, stream.size() - start);
      Status status = batch.EstimateBatch(
          std::span<const Twig>(stream.data() + start, n), EstimateOptions(),
          std::span<EstimateResult>(results.data() + start, n));
      if (!status.ok()) {
        std::fprintf(stderr, "EstimateBatch failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      if (!results[i].status.ok()) {
        std::fprintf(stderr, "batch-%zu item %zu failed: %s\n", batch_size, i,
                     results[i].status.ToString().c_str());
        return 1;
      }
      if (results[i].estimate != expected[i]) {
        std::fprintf(stderr,
                     "value divergence at batch %zu, query %zu: "
                     "batch=%.17g sequential=%.17g\n",
                     batch_size, i, results[i].estimate, expected[i]);
        return 1;
      }
    }
  }
  std::printf("value check: %zu queries bit-identical to the sequential path "
              "at every batch size\n\n",
              stream.size());

  // Timed passes. Canonical codes are warm (as after parse in serve); the
  // sequential path keeps its scratch warm across queries the same way a
  // serve worker does.
  double sequential_seconds = 0.0;
  uint64_t answered = 0;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    for (const Twig& query : stream) {
      if (!sequential.Estimate(query, sequential_options).ok()) return 1;
    }
    sequential_seconds += timer.ElapsedSeconds();
    answered += stream.size();
  }
  const double n = static_cast<double>(answered);
  const double sequential_qps = n / sequential_seconds;

  std::printf("%-24s %14s %14s\n", "path", "queries/s", "us/query");
  std::printf("%-24s %14.0f %14.2f\n", "sequential", sequential_qps,
              1e6 * sequential_seconds / n);

  double batch64_qps = sequential_qps;
  for (size_t batch_size : kBatchSizes) {
    double seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      for (size_t start = 0; start < stream.size(); start += batch_size) {
        const size_t chunk = std::min(batch_size, stream.size() - start);
        Status status = batch.EstimateBatch(
            std::span<const Twig>(stream.data() + start, chunk),
            EstimateOptions(),
            std::span<EstimateResult>(results.data() + start, chunk));
        if (!status.ok()) return 1;
      }
      seconds += timer.ElapsedSeconds();
    }
    const double qps = n / seconds;
    char label[32];
    std::snprintf(label, sizeof(label), "batch-%zu", batch_size);
    std::printf("%-24s %14.0f %14.2f\n", label, qps, 1e6 * seconds / n);
    char key[32];
    std::snprintf(key, sizeof(key), "batch%zu_qps", batch_size);
    report->AddResult(key, qps);
    if (batch_size == 64) batch64_qps = qps;
  }

  const double speedup = batch64_qps / sequential_qps;
  std::printf("\nspeedup: %.2fx (batch-64 vs sequential, target >= 2x)\n",
              speedup);

  report->AddResult("sequential_qps", sequential_qps);
  report->AddResult("speedup", speedup);
  report->AddResult("query_size", static_cast<double>(query_size));
  report->AddResult("stream", static_cast<double>(stream.size()));
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_batch", flags);
  return report.Finish(treelattice::Run(flags, &report));
}
