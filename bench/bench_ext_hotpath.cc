// Extension benchmark: the allocation-free estimation hot path. Runs the
// voting recursive estimator over size-N positive queries twice — once
// through the interned/flat-hash production path (cached canonical codes,
// hash-keyed summary probes, reusable per-thread scratch) and once through
// an in-bench replica of the pre-interning implementation (canonical-code
// string rebuilt per sub-twig visit, std::string-keyed node-based maps for
// both summary and memo, allocating splits). Both paths perform the exact
// same arithmetic in the same order, so their estimates must agree
// bit-for-bit — the bench asserts that on every query before timing, which
// makes the reported speedup an apples-to-apples measure of the data-
// structure work alone.
//
// The headline result is `speedup` (hotpath queries/sec over legacy
// queries/sec), a machine-independent ratio guarded by tools/check_perf.sh
// against bench/baselines/hotpath.json. The tentpole target is >= 2x on
// size-8 voting queries.
//
// Flags: --scale=<n> (PSD records, default 800), --level=<k> (default 3),
//        --size=<n> (query size, default 8), --queries=<n> (default 32),
//        --reps=<n> (timed passes over the workload, default 5).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/estimate_scratch.h"
#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "twig/decompose.h"
#include "twig/twig.h"
#include "util/result.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace treelattice {
namespace {

/// The estimator exactly as it was before the interning rewrite: summary
/// counts in a std::string-keyed std::unordered_map, a fresh string-keyed
/// memo per query, canonical codes recomputed on every sub-twig visit
/// (Twig::ComputeCanonicalCode bypasses the cache), and allocating
/// SplitByLeafPair calls. Kept in the bench so one run records both sides
/// of the before/after comparison on the same machine.
class LegacyVotingEstimator {
 public:
  LegacyVotingEstimator(const LatticeSummary& summary,
                        RecursiveDecompositionEstimator::Options options)
      : options_(options),
        complete_through_level_(summary.complete_through_level()) {
    for (int level = 1; level <= summary.max_level(); ++level) {
      for (const std::string& code : summary.PatternsAtLevel(level)) {
        if (auto count = summary.LookupCode(code)) counts_[code] = *count;
      }
    }
  }

  Result<double> Estimate(const Twig& query) {
    std::unordered_map<std::string, double> memo;
    return EstimateImpl(query, &memo);
  }

 private:
  Result<double> EstimateImpl(const Twig& twig,
                              std::unordered_map<std::string, double>* memo) {
    const std::string code = twig.ComputeCanonicalCode();
    if (auto it = memo->find(code); it != memo->end()) return it->second;

    double value = 0.0;
    if (auto it = counts_.find(code); it != counts_.end()) {
      value = static_cast<double>(it->second);
    } else if (twig.size() <= complete_through_level_ || twig.size() < 3) {
      value = 0.0;
    } else {
      std::vector<std::pair<int, int>> pairs = ValidLeafPairs(twig);
      if (pairs.empty()) {
        return Status::Internal("no valid leaf pair for twig of size " +
                                std::to_string(twig.size()));
      }
      size_t limit = 1;
      if (options_.voting) {
        limit = pairs.size();
        if (options_.max_votes_per_level > 0) {
          limit = std::min(
              limit, static_cast<size_t>(options_.max_votes_per_level));
        }
      }
      std::vector<double> votes;
      for (size_t i = 0; i < limit; ++i) {
        Result<RecursiveSplit> split =
            SplitByLeafPair(twig, pairs[i].first, pairs[i].second);
        if (!split.ok()) return split.status();
        double e1, e2, eo;
        TL_ASSIGN_OR_RETURN(e1, EstimateImpl(split->t1, memo));
        TL_ASSIGN_OR_RETURN(e2, EstimateImpl(split->t2, memo));
        TL_ASSIGN_OR_RETURN(eo, EstimateImpl(split->overlap, memo));
        double est = 0.0;
        if (e1 > 0.0 && e2 > 0.0 && eo > 0.0) est = e1 * e2 / eo;
        votes.push_back(est);
      }
      using Agg = RecursiveDecompositionEstimator::VoteAggregation;
      if (options_.aggregation == Agg::kMedian && options_.voting) {
        std::sort(votes.begin(), votes.end());
        size_t mid = votes.size() / 2;
        value = (votes.size() % 2 == 1)
                    ? votes[mid]
                    : 0.5 * (votes[mid - 1] + votes[mid]);
      } else {
        double sum = 0.0;
        for (double v : votes) sum += v;
        value = sum / static_cast<double>(votes.size());
      }
    }
    memo->emplace(code, value);
    return value;
  }

  RecursiveDecompositionEstimator::Options options_;
  int complete_through_level_;
  std::unordered_map<std::string, uint64_t> counts_;
};

int Run(const Flags& flags, BenchReport* report) {
  const int scale = static_cast<int>(flags.GetInt("scale", 800));
  const int level = static_cast<int>(flags.GetInt("level", 3));
  const int query_size = static_cast<int>(flags.GetInt("size", 8));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 32));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));

  std::printf("=== Extension: Estimation hot path (interned vs legacy) ===\n\n");

  DatasetOptions generate;
  generate.scale = scale;
  Document doc = GeneratePsd(generate);
  LatticeBuildOptions build;
  build.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, build, nullptr);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  WorkloadOptions workload;
  workload.query_size = query_size;
  workload.num_queries = num_queries;
  Result<std::vector<Twig>> queries = GeneratePositiveWorkload(doc, workload);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  if (queries->empty()) {
    std::fprintf(stderr, "no size-%d queries sampled\n", query_size);
    return 1;
  }
  std::printf("PSD scale %d, lattice level %d, %zu size-%d voting queries\n\n",
              scale, level, queries->size(), query_size);

  RecursiveDecompositionEstimator::Options voting;
  voting.voting = true;
  RecursiveDecompositionEstimator hotpath(&*summary, voting);
  LegacyVotingEstimator legacy(*summary, voting);
  EstimateScratch scratch;
  EstimateOptions estimate_options;
  estimate_options.scratch = &scratch;

  // Equality gate: every query must produce the exact same bits on both
  // paths, otherwise the speedup below compares different algorithms.
  for (const Twig& query : *queries) {
    Result<double> a = hotpath.Estimate(query, estimate_options);
    Result<double> b = legacy.Estimate(query);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "estimate failed: %s / %s\n",
                   a.ok() ? "ok" : a.status().ToString().c_str(),
                   b.ok() ? "ok" : b.status().ToString().c_str());
      return 1;
    }
    if (*a != *b) {
      std::fprintf(stderr,
                   "value divergence on %s: hotpath=%.17g legacy=%.17g\n",
                   query.CanonicalCode().c_str(), *a, *b);
      return 1;
    }
  }
  std::printf("value check: %zu/%zu queries bit-identical on both paths\n\n",
              queries->size(), queries->size());

  // Timed passes. The warm-up above also warmed every query's cached
  // canonical code — the production serve path likewise canonicalizes a
  // query once at parse time, so that is the steady state being measured.
  double legacy_seconds = 0.0;
  double hotpath_seconds = 0.0;
  uint64_t answered = 0;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer legacy_timer;
    for (const Twig& query : *queries) {
      if (!legacy.Estimate(query).ok()) return 1;
    }
    legacy_seconds += legacy_timer.ElapsedSeconds();
    WallTimer hotpath_timer;
    for (const Twig& query : *queries) {
      if (!hotpath.Estimate(query, estimate_options).ok()) return 1;
    }
    hotpath_seconds += hotpath_timer.ElapsedSeconds();
    answered += queries->size();
  }

  const double n = static_cast<double>(answered);
  const double legacy_qps = n / legacy_seconds;
  const double hotpath_qps = n / hotpath_seconds;
  const double speedup = hotpath_qps / legacy_qps;
  std::printf("%-24s %14s %14s\n", "path", "queries/s", "us/query");
  std::printf("%-24s %14.0f %14.2f\n", "legacy-string-keyed", legacy_qps,
              1e6 * legacy_seconds / n);
  std::printf("%-24s %14.0f %14.2f\n", "hotpath-interned", hotpath_qps,
              1e6 * hotpath_seconds / n);
  std::printf("\nspeedup: %.2fx (target >= 2x on size-%d voting queries)\n",
              speedup, query_size);

  report->AddResult("legacy_qps", legacy_qps);
  report->AddResult("hotpath_qps", hotpath_qps);
  report->AddResult("speedup", speedup);
  report->AddResult("query_size", static_cast<double>(query_size));
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_hotpath", flags);
  return report.Finish(treelattice::Run(flags, &report));
}
