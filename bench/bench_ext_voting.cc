// Extension ablation (paper Section 3.2): vote aggregation schemes. The
// paper averages the leaf-pair estimates at each recursion level and notes
// that "different voting schemes can be applied here accounting for higher
// order statistical moments and these are under evaluation" — this bench
// runs that evaluation: no voting vs mean voting vs median voting, plus a
// capped-vote variant showing the accuracy/latency trade-off.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n>, --min_size, --max_size.

#include <cstdio>
#include <memory>

#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int min_size = static_cast<int>(flags.GetInt("min_size", 5));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  std::printf("=== Extension: Vote Aggregation Ablation ===\n\n");
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    options.queries_per_size =
        static_cast<size_t>(flags.GetInt("queries", 60));
    Result<DatasetBundle> bundle =
        PrepareDataset(name, options, /*build_sketch=*/false);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }

    using Options = RecursiveDecompositionEstimator::Options;
    using Agg = RecursiveDecompositionEstimator::VoteAggregation;
    Options none;
    Options mean{true, 0, Agg::kMean};
    Options median{true, 0, Agg::kMedian};
    Options capped4{true, 4, Agg::kMean};
    std::vector<std::pair<std::string, Options>> variants = {
        {"no-voting", none},
        {"mean", mean},
        {"median", median},
        {"mean-cap4", capped4},
    };

    MatchCounter counter(bundle->doc);
    TextTable table;
    std::vector<std::string> header = {"QuerySize"};
    for (const auto& [label, opts] : variants) {
      (void)opts;
      header.push_back(label + " err%");
      header.push_back(label + " ms");
    }
    table.SetHeader(header);

    for (int size = min_size; size <= max_size; ++size) {
      Result<WorkloadEval> workload =
          PrepareWorkload(bundle->doc, counter, size, options);
      if (!workload.ok()) {
        std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> row = {std::to_string(size)};
      for (const auto& [label, opts] : variants) {
        (void)label;
        RecursiveDecompositionEstimator estimator(&bundle->summary, opts);
        Result<EstimatorRun> run = RunEstimator(estimator, *workload);
        if (!run.ok()) {
          std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
          return 1;
        }
        row.push_back(FormatDouble(run->avg_error_pct, 1));
        row.push_back(FormatDouble(run->avg_time_ms, 3));
      }
      table.AddRow(row);
    }
    std::printf("--- %s ---\n%s\n", name.c_str(), table.Render().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_voting", flags);
  return report.Finish(treelattice::Run(flags));
}
