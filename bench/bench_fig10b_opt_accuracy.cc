// Reproduces Figure 10 (b): Nasa accuracy when the space reclaimed by
// pruning 0-derivable patterns funds a deeper lattice ("OPT"): a 5-lattice
// with 0-derivable patterns removed, versus the plain 4-lattice, versus
// TreeSketches, all driven by the recursive+voting estimator.
//
// Shape to match: the OPT summary cuts the error substantially (paper:
// below 10% even at size 9) while TreeSketches stays far above.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n>, --min_size, --max_size
//        (default 4..9), --exhaustive_sketch.

#include <cstdio>

#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "treesketch/tree_sketch.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int min_size = static_cast<int>(flags.GetInt("min_size", 4));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 9));
  const std::string dataset = flags.GetString("dataset", "nasa");

  ExperimentOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.scale = static_cast<int>(flags.GetInt("scale", 0));
  options.queries_per_size = static_cast<size_t>(flags.GetInt("queries", 60));
  if (flags.GetBool("exhaustive_sketch", false)) {
    options.sketch_merge_candidates = 0;
  }

  std::printf(
      "=== Figure 10(b): Accuracy with Reclaimed Space (%s, "
      "recursive+voting) ===\n\n",
      dataset.c_str());

  // Baseline bundle: 4-lattice + TreeSketches.
  Result<DatasetBundle> bundle = PrepareDataset(dataset, options);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  // OPT summary: 5-lattice with 0-derivable patterns pruned.
  ExperimentOptions deep = options;
  deep.lattice_level = 5;
  Result<DatasetBundle> deep_bundle =
      PrepareDataset(dataset, deep, /*build_sketch=*/false);
  if (!deep_bundle.ok()) {
    std::fprintf(stderr, "%s\n", deep_bundle.status().ToString().c_str());
    return 1;
  }
  Result<LatticeSummary> opt =
      PruneDerivablePatterns(deep_bundle->summary, PruneOptions());
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "summary sizes: 4-lattice %.1f KB; 5-lattice (full) %.1f KB; OPT "
      "5-lattice non-derivable %.1f KB; TreeSketches %.1f KB\n\n",
      double(bundle->summary.MemoryBytes()) / 1024,
      double(deep_bundle->summary.MemoryBytes()) / 1024,
      double(opt->MemoryBytes()) / 1024,
      double(bundle->sketch_stats.bytes) / 1024);

  RecursiveDecompositionEstimator::Options voting_options{true, 0};
  RecursiveDecompositionEstimator voting4(&bundle->summary, voting_options);
  RecursiveDecompositionEstimator voting_opt(&*opt, voting_options);
  TreeSketchEstimator sketches(&bundle->sketch);

  MatchCounter counter(bundle->doc);
  TextTable table;
  table.SetHeader({"QuerySize", "Voting+OPT(5-lat)", "Voting(4-lat)",
                   "TreeSketches"});
  for (int size = min_size; size <= max_size; ++size) {
    Result<WorkloadEval> workload =
        PrepareWorkload(bundle->doc, counter, size, options);
    if (!workload.ok()) {
      std::fprintf(stderr, "size %d: %s\n", size,
                   workload.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {std::to_string(size)};
    std::vector<SelectivityEstimator*> estimators = {&voting_opt, &voting4,
                                                     &sketches};
    for (SelectivityEstimator* estimator : estimators) {
      Result<EstimatorRun> run = RunEstimator(*estimator, *workload);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatDouble(run->avg_error_pct, 1));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig10b_opt_accuracy", flags);
  return report.Finish(treelattice::Run(flags));
}
