// Reproduces Table 2: number of distinct subtree patterns per lattice level
// (1-5) for each dataset. The qualitative shape to match: small counts at
// levels 1-2 (label alphabets are small) followed by combinatorial blow-up.
//
// Flags: --scale=<n>, --seed=<n>, --levels=<k> (default 5).

#include <cstdio>

#include "datagen/datasets.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "mining/lattice_builder.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const int levels = static_cast<int>(flags.GetInt("levels", 5));
  std::printf("=== Table 2: No. of Subtree Patterns per Level ===\n\n");
  TextTable table;
  std::vector<std::string> header = {"Level"};
  std::vector<std::vector<std::string>> columns;
  std::vector<std::string> names;
  std::vector<LatticeBuildStats> stats_per_dataset;

  for (const std::string& name : DatasetNames()) {
    DatasetOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale =
        static_cast<int>(flags.GetInt("scale", DefaultScale(name)));
    Result<Document> doc = GenerateDataset(name, options);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    LatticeBuildOptions build;
    build.max_level = levels;
    LatticeBuildStats stats;
    Result<LatticeSummary> summary = BuildLattice(*doc, build, &stats);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   summary.status().ToString().c_str());
      return 1;
    }
    header.push_back(name);
    names.push_back(name);
    stats_per_dataset.push_back(stats);
  }

  table.SetHeader(header);
  for (int level = 1; level <= levels; ++level) {
    std::vector<std::string> row = {std::to_string(level)};
    for (const LatticeBuildStats& stats : stats_per_dataset) {
      row.push_back(
          std::to_string(stats.patterns_per_level[static_cast<size_t>(level)]));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper (Table 2) for reference:\n"
      "  level: Nasa IMDB  PSD  XMark\n"
      "  1:       61   88   64     27\n"
      "  2:       82  120   78     40\n"
      "  3:      213  877  289    147\n"
      "  4:      688 9839 1313    503\n"
      "  5:     2296 97780 6870  1333\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_table2_patterns", flags);
  return report.Finish(treelattice::Run(flags));
}
