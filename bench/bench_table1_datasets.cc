// Reproduces Table 1: dataset characteristics (element count, serialized
// size) for the four dataset emulators, plus label/depth statistics.
//
// Flags: --scale=<n> overrides every dataset's default scale;
//        --seed=<n> generator seed (default 42).

#include <cstdio>

#include "datagen/datasets.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"
#include "xml/stats.h"
#include "xml/writer.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  std::printf("=== Table 1: Dataset Characteristics ===\n");
  std::printf(
      "(synthetic emulators of the paper's Nasa/IMDB/PSD/XMark; see "
      "DESIGN.md)\n\n");
  TextTable table;
  table.SetHeader({"Dataset", "Elements", "XML Size(MB)", "Labels",
                   "Max Depth", "Avg Fanout", "Fanout Var"});
  for (const std::string& name : DatasetNames()) {
    DatasetOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(
        flags.GetInt("scale", DefaultScale(name)));
    Result<Document> doc = GenerateDataset(name, options);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    std::string xml = WriteXmlString(*doc);
    DocumentStats stats = ComputeDocumentStats(*doc);
    table.AddRow({name, std::to_string(stats.num_nodes),
                  FormatDouble(static_cast<double>(xml.size()) / (1 << 20), 2),
                  std::to_string(stats.num_labels),
                  std::to_string(stats.max_depth),
                  FormatDouble(stats.avg_fanout, 1),
                  FormatDouble(stats.fanout_variance, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper (Table 1): Nasa 476646 el / 23MB, IMDB 155898 / 7MB,\n"
      "XMark 565505 / 10MB, PSD 242014 / 4.5MB. Emulators run at ~1/5\n"
      "scale with matching relative ordering.\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_table1_datasets", flags);
  return report.Finish(treelattice::Run(flags));
}
