// Reproduces Table 3: summary construction time and memory utilization for
// TreeLattice (4-lattice mining) versus TreeSketches (bottom-up clustering
// to a 50 KB budget).
//
// The TreeSketches build defaults to the faithful exhaustive greedy merge,
// which is what makes it orders of magnitude slower — exactly the paper's
// point. Expect this benchmark to run for several minutes.
//
// Flags: --scale=<n>, --seed=<n>, --budget_kb=<n> (default 3, the
//        ratio-preserving equivalent of the paper's 50 KB — see
//        EXPERIMENTS.md), --sampled_sketch (fast sampled merge instead).

#include <cstdio>

#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  std::printf("=== Table 3: Summary Construction Time and Memory ===\n\n");
  TextTable table;
  table.SetHeader({"Dataset", "TreeLattice(s)", "TreeSketches(s)", "Speedup",
                   "TL Size(KB)", "TS Size(KB)"});
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    options.treesketch_budget_bytes =
        static_cast<size_t>(flags.GetInt("budget_kb", 3)) * 1024;
    options.sketch_merge_candidates =
        flags.GetBool("sampled_sketch", false) ? 512 : 0;
    Result<DatasetBundle> bundle = PrepareDataset(name, options);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    double tl = bundle->build_stats.build_seconds;
    double ts = bundle->sketch_stats.build_seconds;
    table.AddRow(
        {name, FormatDouble(tl, 2), FormatDouble(ts, 1),
         FormatDouble(ts / tl, 0) + "x",
         FormatDouble(double(bundle->summary.MemoryBytes()) / 1024.0, 1),
         FormatDouble(double(bundle->sketch_stats.bytes) / 1024.0, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper (Table 3): Nasa 59s vs 7535s, IMDB 53s vs 942s, PSD 39s vs\n"
      "614s, XMark 540s vs 79560s; TL sizes 20/212/33/13 KB at a 50 KB\n"
      "TreeSketches budget. Shape to match: one-to-two orders of magnitude\n"
      "construction speedup for TreeLattice with comparable or smaller\n"
      "summaries.\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_table3_construction", flags);
  return report.Finish(treelattice::Run(flags));
}
