// Reproduces Figure 10 (d): IMDB estimation quality (recursive+voting) when
// using summaries pruned at δ in {0, 10, 20, 30}%.
//
// Shape to match: δ=0 is indistinguishable from the full summary (Lemma 5);
// accuracy degrades gradually and remains tolerable through δ=10%.
//
// Flags: --scale=<n>, --seed=<n>, --queries=<n>, --min_size, --max_size,
//        --dataset=<name> (default imdb).

#include <cstdio>
#include <memory>

#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  const std::string dataset = flags.GetString("dataset", "imdb");
  const int min_size = static_cast<int>(flags.GetInt("min_size", 4));
  const int max_size = static_cast<int>(flags.GetInt("max_size", 8));
  std::printf(
      "=== Figure 10(d): Estimation Quality vs delta (%s, "
      "recursive+voting) ===\n\n",
      dataset.c_str());
  ExperimentOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.scale = static_cast<int>(flags.GetInt("scale", 0));
  options.queries_per_size = static_cast<size_t>(flags.GetInt("queries", 60));
  Result<DatasetBundle> bundle =
      PrepareDataset(dataset, options, /*build_sketch=*/false);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  const double deltas[] = {0.0, 0.10, 0.20, 0.30};
  std::vector<LatticeSummary> summaries;
  for (double delta : deltas) {
    PruneOptions prune;
    prune.delta = delta;
    prune.estimator.voting = true;  // match the query-time estimator
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(bundle->summary, prune);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
      return 1;
    }
    summaries.push_back(std::move(pruned).value());
  }

  RecursiveDecompositionEstimator::Options voting{true, 0};
  std::vector<std::unique_ptr<RecursiveDecompositionEstimator>> estimators;
  for (const LatticeSummary& summary : summaries) {
    estimators.push_back(
        std::make_unique<RecursiveDecompositionEstimator>(&summary, voting));
  }

  MatchCounter counter(bundle->doc);
  TextTable table;
  std::vector<std::string> header = {"QuerySize"};
  for (double delta : deltas) {
    header.push_back("delta=" + FormatDouble(delta * 100, 0) + "%");
  }
  table.SetHeader(header);
  for (int size = min_size; size <= max_size; ++size) {
    Result<WorkloadEval> workload =
        PrepareWorkload(bundle->doc, counter, size, options);
    if (!workload.ok()) {
      std::fprintf(stderr, "size %d: %s\n", size,
                   workload.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {std::to_string(size)};
    for (auto& estimator : estimators) {
      Result<EstimatorRun> run = RunEstimator(*estimator, *workload);
      if (!run.ok()) {
        std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatDouble(run->avg_error_pct, 1));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig10d_delta_accuracy", flags);
  return report.Finish(treelattice::Run(flags));
}
