// Reproduces Figure 10 (a): 4-lattice summary size with and without
// 0-derivable patterns, for each dataset.
//
// Shape to match: striking savings on Nasa, PSD and XMark (conditional
// independence holds well there) and modest savings on IMDB (correlated
// branches make patterns non-derivable).
//
// Flags: --scale=<n>, --seed=<n>.

#include <cstdio>

#include "core/pruning.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

int Run(const Flags& flags) {
  std::printf(
      "=== Figure 10(a): 4-Lattice Size With/Without 0-Derivable "
      "Patterns ===\n\n");
  TextTable table;
  table.SetHeader({"Dataset", "Full(KB)", "Pruned(KB)", "Saved(%)",
                   "Patterns", "Kept"});
  for (const std::string& name : DatasetNames()) {
    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.scale = static_cast<int>(flags.GetInt("scale", 0));
    Result<DatasetBundle> bundle =
        PrepareDataset(name, options, /*build_sketch=*/false);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    PruneStats stats;
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(bundle->summary, PruneOptions(), &stats);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   pruned.status().ToString().c_str());
      return 1;
    }
    double saved = 100.0 *
                   double(stats.bytes_before - stats.bytes_after) /
                   double(stats.bytes_before);
    table.AddRow({name, FormatDouble(double(stats.bytes_before) / 1024, 1),
                  FormatDouble(double(stats.bytes_after) / 1024, 1),
                  FormatDouble(saved, 1),
                  std::to_string(stats.patterns_before),
                  std::to_string(stats.patterns_after)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape to match (paper Fig 10a): large savings on Nasa/PSD/XMark,\n"
      "modest savings on IMDB.\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_fig10a_pruning", flags);
  return report.Finish(treelattice::Run(flags));
}
