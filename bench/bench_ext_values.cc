// Extension experiment (paper Section 6 future work #1): twig queries
// with value predicates. Text values are hashed into B buckets and become
// synthetic leaves (xml/value_buckets.h), so the unchanged estimation
// machinery prices value predicates. This bench measures (a) estimation
// error for value-predicate workloads and (b) the bucket-count trade-off:
// fewer buckets shrink the summary but inflate counts through collisions.
//
// Flags: --movies=<n> (default 4000), --seed=<n>.

#include <cstdio>
#include <string>
#include <vector>

#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/bench_report.h"
#include "harness/flags.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "xml/parser.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

/// Movie catalog with correlated values: genre and decade depend on a
/// latent style; studio is independent.
std::string MakeCatalogXml(int movies, uint64_t seed) {
  static constexpr const char* kGenres[] = {"action", "drama", "comedy",
                                            "horror", "scifi", "noir"};
  static constexpr const char* kDecades[] = {"1970s", "1980s", "1990s",
                                             "2000s", "2010s"};
  static constexpr const char* kStudios[] = {"alpha", "beta", "gamma",
                                             "delta"};
  Rng rng(seed);
  std::string xml = "<imdb>";
  for (int i = 0; i < movies; ++i) {
    // Latent style couples genre and decade (old noirs, modern scifi...).
    size_t style = rng.Zipf(6, 0.8);
    size_t genre = style;
    size_t decade = rng.Bernoulli(0.8) ? (style * 5 / 6) : rng.Uniform(5);
    size_t studio = rng.Uniform(4);
    xml += "<movie><genre>";
    xml += kGenres[genre];
    xml += "</genre><decade>";
    xml += kDecades[decade];
    xml += "</decade><studio>";
    xml += kStudios[studio];
    xml += "</studio></movie>";
  }
  xml += "</imdb>";
  return xml;
}

int Run(const Flags& flags) {
  const int movies = static_cast<int>(flags.GetInt("movies", 4000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::printf(
      "=== Extension: Value Predicates via Bucketed Values ===\n\n");
  std::string xml = MakeCatalogXml(movies, seed);

  const char* queries[] = {
      "movie[genre=\"action\"]",
      "movie[genre=\"noir\"][decade=\"1970s\"]",
      "movie[genre=\"scifi\"][decade=\"2010s\"]",
      "movie[genre=\"drama\"][studio=\"alpha\"]",
      "movie[genre=\"action\"][decade=\"1970s\"]",  // anti-correlated pair
  };

  // Collision-free reference: value-exact selectivities computed with a
  // bucket space far larger than the distinct-value count.
  std::vector<double> truths;
  {
    XmlParseOptions parse;
    parse.model_values = true;
    parse.value_buckets = 1 << 20;
    Result<Document> reference = ParseXmlString(xml, parse);
    if (!reference.ok()) {
      std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
      return 1;
    }
    MatchCounter counter(*reference);
    XPathOptions xpath;
    xpath.value_buckets = 1 << 20;
    for (const char* text : queries) {
      Result<Twig> query =
          CompileXPath(text, reference->shared_dict().get(), xpath);
      if (!query.ok()) {
        std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
        return 1;
      }
      truths.push_back(static_cast<double>(counter.Count(*query)));
    }
  }

  for (int buckets : {2, 8, 64}) {
    XmlParseOptions parse;
    parse.model_values = true;
    parse.value_buckets = buckets;
    Result<Document> doc = ParseXmlString(xml, parse);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    // A 5-lattice holds the correlated (genre value, decade value) joints
    // in the summary, isolating bucket collisions as the error source.
    LatticeBuildOptions build;
    build.max_level = 5;
    Result<LatticeSummary> summary = BuildLattice(*doc, build);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
      return 1;
    }
    RecursiveDecompositionEstimator estimator(&*summary);

    std::printf("--- %d value buckets (summary %.1f KB, %zu patterns) ---\n",
                buckets, double(summary->MemoryBytes()) / 1024.0,
                summary->NumPatterns());
    TextTable table;
    table.SetHeader({"Query", "True(value-exact)", "Estimate", "err(%)"});
    XPathOptions xpath;
    xpath.value_buckets = buckets;
    for (size_t i = 0; i < std::size(queries); ++i) {
      Result<Twig> query =
          CompileXPath(queries[i], doc->shared_dict().get(), xpath);
      if (!query.ok()) {
        std::fprintf(stderr, "%s: %s\n", queries[i],
                     query.status().ToString().c_str());
        return 1;
      }
      double truth = truths[i];
      Result<double> estimate = estimator.Estimate(*query);
      if (!estimate.ok()) {
        std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
        return 1;
      }
      double denominator = truth > 10 ? truth : 10;
      table.AddRow({queries[i], FormatDouble(truth, 0),
                    FormatDouble(*estimate, 1),
                    FormatDouble(100.0 * std::abs(*estimate - truth) /
                                     denominator,
                                 1)});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Shape to expect: with enough buckets (64) value predicates are\n"
      "priced near-exactly (correlated value joints sit inside the\n"
      "5-lattice); few buckets inflate estimates through hash collisions —\n"
      "the classic space/accuracy knob of value synopses.\n");
  return 0;
}

}  // namespace
}  // namespace treelattice

int main(int argc, char** argv) {
  treelattice::Flags flags(argc, argv);
  treelattice::BenchReport report("bench_ext_values", flags);
  return report.Finish(treelattice::Run(flags));
}
