#!/usr/bin/env python3
"""Fixture-driven tests for tools/tl_analyze.py (the semantic leg).

Builds a compile_commands.json for tests/analyze_fixtures/repo — four
translation units, one per check, each with at least one line marked
`ANALYZE-EXPECT[check]` (a true positive) and at least one suppressed twin
— runs the analyzer, and asserts the finding set matches the markers
EXACTLY. Then exercises the baseline round trip: --update-baseline into a
temp file must turn the same run green.

SKIP contract: when libclang is unavailable (tl_analyze --probe fails)
this test exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE — the
same non-vacuous-gate convention as the clang-tidy leg. CI installs
libclang, so the skip never hides a regression there.

Exit status: 0 pass, 1 fail, 77 skip (no libclang).
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
ANALYZE = os.path.join(REPO, "tools", "tl_analyze.py")
FIXTURE = os.path.join(HERE, "analyze_fixtures", "repo")

MARKER_RE = re.compile(r"//\s*ANALYZE-EXPECT\[([a-z-]+)\]")
FINDING_RE = re.compile(r"^([^:]+):(\d+): \[([a-z-]+)\]")


def expected_findings():
    expected = set()
    src = os.path.join(FIXTURE, "src")
    for name in sorted(os.listdir(src)):
        path = os.path.join(src, name)
        rel = os.path.relpath(path, FIXTURE)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for m in MARKER_RE.finditer(line):
                    expected.add((rel, lineno, m.group(1)))
    return expected


def write_compile_commands(directory):
    src = os.path.join(FIXTURE, "src")
    entries = []
    for name in sorted(os.listdir(src)):
        if not name.endswith(".cc"):
            continue
        entries.append({
            "directory": FIXTURE,
            "file": os.path.join("src", name),
            "command": f"c++ -std=c++20 -I{os.path.join(REPO, 'src')} "
                       f"-c {os.path.join('src', name)}",
        })
    path = os.path.join(directory, "compile_commands.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entries, f, indent=1)
    return path


def run_analyze(args):
    proc = subprocess.run([sys.executable, ANALYZE] + args,
                          capture_output=True, text=True)
    found = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.add((m.group(1), int(m.group(2)), m.group(3)))
    return proc, found


def main():
    probe = subprocess.run([sys.executable, ANALYZE, "--probe"])
    if probe.returncode != 0:
        print("tl_analyze fixtures: SKIP (libclang unavailable; the "
              "tl_lint regex fallback still runs)")
        return 77

    failures = []
    expected = expected_findings()
    if len(expected) < 4:
        failures.append("fixture markers missing — did the tree move?")

    with tempfile.TemporaryDirectory() as tmp:
        cc_path = write_compile_commands(tmp)
        base_args = ["--root", FIXTURE, "--compile-commands", cc_path]

        proc, found = run_analyze(base_args)
        if proc.returncode != 1:
            failures.append(
                f"fixture run exited {proc.returncode}, want 1\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        if found != expected:
            missing = sorted(expected - found)
            surplus = sorted(found - expected)
            failures.append(f"finding mismatch: missing={missing} "
                            f"unexpected={surplus}\nstdout:\n{proc.stdout}")
        checks_found = {check for _, _, check in found}
        for check in ("status-discard", "hot-alloc", "loop-blocking",
                      "guard-coverage"):
            if check not in checks_found:
                failures.append(f"no true positive surfaced for {check}")

        # Baseline round trip: grandfathering every finding must turn the
        # same run green, and the findings must be echoed as baselined.
        baseline = os.path.join(tmp, "baseline.txt")
        proc, _ = run_analyze(base_args +
                              ["--baseline", baseline, "--update-baseline"])
        if proc.returncode != 0:
            failures.append(
                f"--update-baseline exited {proc.returncode}, want 0")
        proc, found = run_analyze(base_args + ["--baseline", baseline])
        if proc.returncode != 0:
            failures.append(
                f"baselined run exited {proc.returncode}, want 0\n"
                f"stdout:\n{proc.stdout}")
        if found != expected:
            failures.append("baselined run should still print the "
                            "grandfathered findings")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"tl_analyze fixtures: OK ({len(expected)} expected findings "
          "across 4 checks, suppressions honored, baseline round trip)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
