// Concurrency suite: hammers the components that DESIGN.md documents as
// thread-safe — the metrics registry, the tracer, the fault-injecting
// Env, and a shared estimator — from many threads at once. The point is
// less the assertions (though totals must add up) than the interleaving
// itself: `tools/run_sanitized_tests.sh thread` runs this binary under
// ThreadSanitizer, which turns any data race into a failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/recursive_estimator.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/estimate_cache.h"
#include "serve/server.h"
#include "serve/slow_log.h"
#include "serve/snapshot.h"
#include "serve/transport.h"
#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "util/hash.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 5000;

// Launches `n` threads running `fn(thread_index)` and joins them all.
template <typename Fn>
void RunThreads(int n, Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back(fn, t);
  for (std::thread& th : threads) th.join();
}

TEST(ConcurrencyTest, MetricsRegistryHammer) {
  obs::SetEnabledForTest(true);
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  registry->ResetAll();

  std::atomic<bool> stop{false};
  // A reader thread snapshots the registry while writers mutate it: the
  // maps grow concurrently with ToJson/ToPrometheusText walking them.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry->ToJson();
      (void)registry->ToPrometheusText();
    }
  });

  RunThreads(kThreads, [&](int t) {
    // Same-name lookups from every thread must return the same object;
    // distinct names interleave registrations with the reader.
    obs::Counter* shared = registry->counter("test.concurrency_shared");
    obs::Counter* own = registry->counter("test.concurrency_thread_" +
                                          std::to_string(t));
    obs::Gauge* peak = registry->gauge("test.concurrency_peak");
    obs::Histogram* hist = registry->histogram("test.concurrency_hist");
    for (int i = 0; i < kOpsPerThread; ++i) {
      shared->Increment();
      own->Increment(2);
      peak->SetMax(t * kOpsPerThread + i);
      hist->Record(static_cast<uint64_t>(i));
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(registry->counter("test.concurrency_shared")->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  ->counter("test.concurrency_thread_" + std::to_string(t))
                  ->value(),
              2u * kOpsPerThread);
  }
  EXPECT_EQ(registry->gauge("test.concurrency_peak")->value(),
            static_cast<int64_t>(kThreads) * kOpsPerThread - 1);
  obs::Histogram::Snapshot snap =
      registry->histogram("test.concurrency_hist")->GetSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.max, static_cast<uint64_t>(kOpsPerThread) - 1);
  registry->ResetAll();
}

TEST(ConcurrencyTest, TracerHammer) {
  obs::Tracer::Start();

  std::atomic<bool> stop{false};
  // Concurrent dumps: ChromeTraceJson walks every thread's buffer while
  // those threads are still appending.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)obs::Tracer::ChromeTraceJson();
      (void)obs::Tracer::CollectedEvents();
    }
  });

  constexpr int kSpansPerThread = 2000;
  RunThreads(kThreads, [&](int t) {
    for (int i = 0; i < kSpansPerThread; ++i) {
      obs::TraceSpan span("concurrency.span", "test");
      span.SetArg("thread", static_cast<uint64_t>(t));
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();
  obs::Tracer::Stop();

  EXPECT_GE(obs::Tracer::CollectedEvents(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  std::string json = obs::Tracer::ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("concurrency.span"), std::string::npos);

  // Restart discards everything collected above (fresh epoch).
  obs::Tracer::Start();
  obs::Tracer::Stop();
  EXPECT_EQ(obs::Tracer::CollectedEvents(), 0u);
}

TEST(ConcurrencyTest, FaultEnvCountersAddUp) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = testing::TempDir();

  constexpr int kAppendsPerThread = 50;
  const std::string chunk(128, 'x');
  std::atomic<bool> stop{false};
  // Counter reads race with the file operations below.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)env.bytes_written();
      (void)env.appends();
      (void)env.syncs();
      (void)env.reads();
    }
  });

  RunThreads(kThreads, [&](int t) {
    const std::string path =
        dir + "/tl_concurrency_" + std::to_string(t) + ".dat";
    auto file = env.NewWritableFile(path);
    ASSERT_TRUE(file.ok()) << file.status().message();
    for (int i = 0; i < kAppendsPerThread; ++i) {
      ASSERT_TRUE((*file)->Append(chunk).ok());
    }
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
    std::string back;
    ASSERT_TRUE(ReadFileToString(&env, path, &back).ok());
    ASSERT_EQ(back.size(), chunk.size() * kAppendsPerThread);
    ASSERT_TRUE(env.DeleteFile(path).ok());
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(env.appends(), kThreads * kAppendsPerThread);
  EXPECT_EQ(env.bytes_written(),
            static_cast<int64_t>(chunk.size()) * kThreads * kAppendsPerThread);
  EXPECT_EQ(env.syncs(), kThreads);
  EXPECT_EQ(env.deletes(), kThreads);
}

TEST(ConcurrencyTest, FaultEnvWriteBudgetConsumedAtomically) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = testing::TempDir();

  // A budget that runs out mid-test: with 1-byte appends racing from
  // every thread, exactly `kBudget` may succeed — any other total means
  // the check-and-consume was torn between threads.
  constexpr int64_t kBudget = kThreads * 100;
  env.config().fail_write_after_bytes = kBudget;

  std::atomic<int> successes{0};
  RunThreads(kThreads, [&](int t) {
    const std::string path =
        dir + "/tl_budget_" + std::to_string(t) + ".dat";
    auto file = env.NewWritableFile(path);
    ASSERT_TRUE(file.ok()) << file.status().message();
    for (int i = 0; i < 200; ++i) {
      if ((*file)->Append("x").ok()) {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ASSERT_TRUE((*file)->Close().ok());
    ASSERT_TRUE(env.DeleteFile(path).ok());
  });

  EXPECT_EQ(successes.load(), kBudget);
  EXPECT_EQ(env.bytes_written(), kBudget);
}

TEST(ConcurrencyTest, SharedEstimatorHammer) {
  // A summary complete through level 2: the level-3 query below is not
  // stored, so every Estimate call runs the decomposition recursion with
  // its per-call memo against the shared read-only summary.
  LatticeSummary summary(3);
  auto insert = [&summary](const char* code, uint64_t count) {
    Result<Twig> twig = Twig::FromCanonicalCode(code);
    ASSERT_TRUE(twig.ok());
    ASSERT_TRUE(summary.Insert(*twig, count).ok());
  };
  insert("0", 10);
  insert("1", 8);
  insert("2", 6);
  insert("0(1)", 5);
  insert("0(2)", 4);
  insert("1(2)", 3);
  summary.set_complete_through_level(2);

  RecursiveDecompositionEstimator plain(&summary);
  RecursiveDecompositionEstimator::Options voting_options;
  voting_options.voting = true;
  RecursiveDecompositionEstimator voting(&summary, voting_options);

  Result<Twig> stored = Twig::FromCanonicalCode("0(1)");
  Result<Twig> decomposed = Twig::FromCanonicalCode("0(1,2)");
  ASSERT_TRUE(stored.ok());
  ASSERT_TRUE(decomposed.ok());

  // Single-threaded reference answers; every thread must reproduce them.
  Result<double> stored_want = plain.Estimate(*stored);
  Result<double> decomposed_want = plain.Estimate(*decomposed);
  Result<double> voting_want = voting.Estimate(*decomposed);
  ASSERT_TRUE(stored_want.ok());
  ASSERT_TRUE(decomposed_want.ok());
  ASSERT_TRUE(voting_want.ok());
  EXPECT_DOUBLE_EQ(*stored_want, 5.0);
  EXPECT_DOUBLE_EQ(*decomposed_want, 5.0 * 4.0 / 10.0);

  RunThreads(kThreads, [&](int /*t*/) {
    for (int i = 0; i < 500; ++i) {
      Result<double> a = plain.Estimate(*stored);
      Result<double> b = plain.Estimate(*decomposed);
      Result<double> c = voting.Estimate(*decomposed);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());
      ASSERT_DOUBLE_EQ(*a, *stored_want);
      ASSERT_DOUBLE_EQ(*b, *decomposed_want);
      ASSERT_DOUBLE_EQ(*c, *voting_want);
    }
  });
}


TEST(ConcurrencyTest, EstimateCacheHammer) {
  // 8 threads Put/Get the serve-layer estimate cache across two racing
  // snapshot versions while a ninth thread fires full invalidations. The
  // per-shard version fence must hold under every interleaving: a Get at
  // version V either misses or returns exactly the value some thread Put
  // at version V for that code — a value from the other version is a
  // served-stale-estimate bug (and any locking slip is a TSan failure).
  serve::EstimateCache::Options options;
  options.capacity = 64;  // small: forces eviction churn alongside the race
  options.shards = 4;
  serve::EstimateCache cache(options);

  constexpr int kCodes = 16;
  std::vector<std::string> codes;
  std::vector<uint64_t> hashes;
  for (int i = 0; i < kCodes; ++i) {
    codes.push_back("0(" + std::to_string(i + 1) + ")");
    hashes.push_back(HashBytes(codes.back()));
  }
  auto value_for = [](int64_t version, int code) {
    return static_cast<double>(version) * 1000.0 + static_cast<double>(code);
  };

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.Invalidate();
      std::this_thread::yield();
    }
  });

  RunThreads(kThreads, [&](int t) {
    for (int i = 0; i < 3000; ++i) {
      const int64_t version = 1 + ((t + i) % 2);
      const int code = (t * 7 + i) % kCodes;
      if (i % 3 == 0) {
        cache.Put(version, hashes[static_cast<size_t>(code)],
                  codes[static_cast<size_t>(code)], value_for(version, code));
      }
      std::optional<double> got =
          cache.Get(version, hashes[static_cast<size_t>(code)],
                    codes[static_cast<size_t>(code)]);
      if (got.has_value()) {
        ASSERT_DOUBLE_EQ(*got, value_for(version, code))
            << "version " << version << " served a value from another "
            << "snapshot generation";
      }
    }
  });
  stop.store(true, std::memory_order_release);
  invalidator.join();

  serve::EstimateCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(ConcurrencyTest, SnapshotHotSwapHammer) {
  // The serve-layer reload race: 8 query threads Get() the serving
  // snapshot — copying its dictionary and binding an estimator to its
  // summary, exactly as server workers do — while a swapper installs
  // fresh snapshots as fast as it can. Every answer must match one of
  // the two snapshot generations; anything else means a query saw a
  // half-installed snapshot.
  LabelDict dict;
  Result<Twig> proto = Twig::Parse("a(b)", &dict);
  ASSERT_TRUE(proto.ok());

  auto make_snapshot = [&](uint64_t count_a, uint64_t count_ab) {
    LatticeSummary summary(2);
    LatticeSummary* s = &summary;
    Result<Twig> a = Twig::Parse("a", &dict);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(s->Insert(*a, count_a).ok());
    EXPECT_TRUE(s->Insert(*proto, count_ab).ok());
    summary.set_complete_through_level(2);
    return std::make_shared<serve::SummarySnapshot>(std::move(summary),
                                                    LabelDict(dict));
  };

  constexpr double kWantV1 = 5.0;
  constexpr double kWantV2 = 90.0;
  serve::SnapshotHolder holder;
  holder.Swap(make_snapshot(10, 5));

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    bool odd = true;
    while (!stop.load(std::memory_order_acquire)) {
      holder.Swap(odd ? make_snapshot(100, 90) : make_snapshot(10, 5));
      odd = !odd;
    }
  });

  RunThreads(kThreads, [&](int /*t*/) {
    for (int i = 0; i < 2000; ++i) {
      std::shared_ptr<const serve::SummarySnapshot> snapshot = holder.Get();
      ASSERT_NE(snapshot, nullptr);
      LabelDict worker_dict(snapshot->dict);
      Result<Twig> query = Twig::Parse("a(b)", &worker_dict);
      ASSERT_TRUE(query.ok());
      RecursiveDecompositionEstimator estimator(&snapshot->summary);
      Result<double> estimate = estimator.Estimate(*query);
      ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
      ASSERT_TRUE(*estimate == kWantV1 || *estimate == kWantV2)
          << "estimate " << *estimate << " from snapshot v"
          << snapshot->version << " matches neither generation";
    }
  });
  stop.store(true, std::memory_order_release);
  swapper.join();
  EXPECT_GE(holder.version(), 1);
}

TEST(ConcurrencyTest, ServerBatchHammer) {
  // 8 threads fire batch lines at one shared Server — duplicates inside
  // every batch, a parse error mixed in, and the occasional single
  // request — against a deliberately small admission queue with slowed
  // workers, so batch admission, all-or-nothing shedding, the shared
  // estimate cache, and the per-batch arena reset all race. Conservation
  // must hold item-by-item: every offered query gets exactly one
  // response, every SubmitBatch yields exactly one batch response, and
  // every ok answer carries the exact single-query bits (DESIGN.md §14).
  LabelDict dict;
  LatticeSummary summary(2);
  auto insert = [&](const char* text, uint64_t count) {
    Result<Twig> twig = Twig::Parse(text, &dict);
    ASSERT_TRUE(twig.ok());
    ASSERT_TRUE(summary.Insert(*twig, count).ok());
  };
  insert("a", 10);
  insert("b", 8);
  insert("c", 6);
  insert("a(b)", 5);
  insert("a(c)", 3);
  insert("b(c)", 4);
  summary.set_complete_through_level(2);
  serve::SnapshotHolder holder;
  holder.Swap(std::make_shared<serve::SummarySnapshot>(std::move(summary),
                                                       LabelDict(dict)));

  constexpr double kWantAB = 5.0;          // stored
  constexpr double kWantABC = 5.0 * 3.0 / 10.0;  // decomposed a(b,c)
  constexpr double kWantBC = 4.0;          // stored

  std::atomic<uint64_t> batch_responses{0};
  std::atomic<uint64_t> item_responses{0};
  std::atomic<uint64_t> single_responses{0};
  auto check_item = [&](const serve::ServeResponse& item) {
    if (!item.ok) {
      ASSERT_FALSE(item.error_code.empty()) << item.query;
      return;
    }
    // Exact bits: dedup, the shared batch memo, and the cache filter
    // must be invisible in the values under every interleaving.
    if (item.query == "a(b)") {
      ASSERT_EQ(item.estimate, kWantAB);
    } else if (item.query == "a(b,c)") {
      ASSERT_EQ(item.estimate, kWantABC);
    } else if (item.query == "b(c)") {
      ASSERT_EQ(item.estimate, kWantBC);
    }
  };

  serve::ServerOptions options;
  options.queue_capacity = 24;     // small: forces whole-batch shedding
  options.worker_delay_millis = 0.2;  // keeps the queue under pressure
  serve::Server server(
      &holder, options,
      [&](const serve::ServeResponse& response) {
        single_responses.fetch_add(1, std::memory_order_relaxed);
        check_item(response);
      },
      [&](serve::ServeBatchResponse response) {
        batch_responses.fetch_add(1, std::memory_order_relaxed);
        item_responses.fetch_add(response.items.size(),
                                 std::memory_order_relaxed);
        for (size_t i = 0; i < response.items.size(); ++i) {
          // Scatter must preserve the client's per-item ids in order.
          ASSERT_EQ(response.items[i].id, i + 1);
          check_item(response.items[i]);
        }
      });

  constexpr int kBatchesPerThread = 50;
  constexpr size_t kBatchItems = 4;
  std::atomic<uint64_t> offered_batches{0};
  std::atomic<uint64_t> offered_singles{0};
  RunThreads(kThreads, [&](int t) {
    for (int i = 0; i < kBatchesPerThread; ++i) {
      serve::ServeBatch batch;
      const char* queries[kBatchItems] = {
          "a(b)", "a(b,c)", "a(b)", (i % 5 == 0) ? "((((" : "b(c)"};
      for (size_t j = 0; j < kBatchItems; ++j) {
        serve::ServeRequest item;
        item.id = j + 1;
        item.query = queries[j];
        batch.items.push_back(std::move(item));
      }
      offered_batches.fetch_add(1, std::memory_order_relaxed);
      (void)server.SubmitBatch(std::move(batch));  // shed is a response too
      if ((t + i) % 7 == 0) {
        serve::ServeRequest single;
        single.id = 1;
        single.query = "a(b,c)";
        offered_singles.fetch_add(1, std::memory_order_relaxed);
        (void)server.Submit(std::move(single));
      }
    }
  });
  server.Shutdown();

  const uint64_t offered_queries =
      offered_batches.load() * kBatchItems + offered_singles.load();
  EXPECT_EQ(batch_responses.load(), offered_batches.load());
  EXPECT_EQ(item_responses.load(), offered_batches.load() * kBatchItems);
  EXPECT_EQ(single_responses.load(), offered_singles.load());

  serve::Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.submitted + stats.shed, offered_queries);
  EXPECT_EQ(stats.ok + stats.errors, offered_queries);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// --- TCP transport churn -------------------------------------------------

namespace transport_hammer {

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until `want` newline-terminated lines arrived or EOF/timeout;
/// returns how many lines it saw.
int ReadLines(int fd, int want, int timeout_millis) {
  int lines = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  while (lines < want) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    pollfd pfd{fd, POLLIN, 0};
    const int wait = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    if (::poll(&pfd, 1, std::max(wait, 1)) <= 0) break;
    char buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') ++lines;
    }
  }
  return lines;
}

/// Everything the peer sends until EOF or timeout (admin responses end
/// with the server closing the connection).
std::string ReadToEof(int fd, int timeout_millis) {
  std::string out;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) continue;
    char buf[4096];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

}  // namespace transport_hammer

TEST(ConcurrencyTest, TransportConnectionChurnHammer) {
  // 8 client threads churn real TCP connections against the transport —
  // connect, pipeline a few queries, read the answers, disconnect (every
  // third connection abandons its responses instead of reading; every
  // fifth slams the door mid-flight) — while one thread hot-swaps the
  // snapshot through the '#reload' control path. The transport's event
  // loop, the worker pool, and the completion queue all interleave; TSan
  // (tools/run_sanitized_tests.sh thread) turns any race into a failure.
  using transport_hammer::ConnectTo;
  using transport_hammer::ReadLines;
  using transport_hammer::SendAll;

  LabelDict dict;
  auto make_snapshot = [&] {
    LatticeSummary summary(2);
    for (const auto& [text, count] :
         std::vector<std::pair<std::string, uint64_t>>{
             {"a", 10}, {"b", 8}, {"a(b)", 5}}) {
      Result<Twig> twig = Twig::Parse(text, &dict);
      EXPECT_TRUE(twig.ok());
      EXPECT_TRUE(summary.Insert(*twig, count).ok());
    }
    summary.set_complete_through_level(2);
    return std::make_shared<serve::SummarySnapshot>(std::move(summary),
                                                    LabelDict(dict));
  };

  serve::SnapshotHolder holder;
  holder.Swap(make_snapshot());

  serve::ServerOptions server_options;
  server_options.workers = 4;
  auto control = [&](std::string_view line) -> std::string {
    if (line != "#reload") return std::string();
    holder.Swap(make_snapshot());
    return "{\"reload\":{\"ok\":true}}";
  };
  serve::Transport transport(&holder, server_options, {}, control);
  Result<uint16_t> port = transport.Listen();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  std::thread loop([&] { EXPECT_TRUE(transport.Run().ok()); });

  std::atomic<int> answered{0};
  RunThreads(kThreads, [&](int t) {
    for (int round = 0; round < 25; ++round) {
      int fd = ConnectTo(*port);
      ASSERT_GE(fd, 0);
      std::string burst;
      for (int q = 0; q < 5; ++q) {
        burst += "{\"query\": \"a(b)\", \"id\": " + std::to_string(q + 1) +
                 "}\n";
      }
      // One thread injects a #reload mid-flight each round.
      if (t == 0) burst += "#reload\n";
      if (!SendAll(fd, burst)) {
        ::close(fd);
        continue;
      }
      const int want = 5 + (t == 0 ? 1 : 0);
      if (round % 5 == 4) {
        // Slam the door: RST with requests possibly still in flight.
        linger lg{1, 0};
        setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      } else if (round % 3 != 2) {
        // Most connections politely read everything they asked for.
        answered.fetch_add(ReadLines(fd, want, 10000),
                           std::memory_order_relaxed);
      }
      ::close(fd);
    }
  });

  transport.RequestShutdown();
  loop.join();

  serve::Transport::Stats stats = transport.GetStats();
  EXPECT_GT(answered.load(), 0);
  // Exactly-once accounting holds under churn: every admitted request was
  // either delivered to its connection's buffer or counted orphaned.
  EXPECT_EQ(stats.requests_admitted,
            stats.responses_delivered + stats.responses_orphaned);
  EXPECT_EQ(stats.active, 0u);
}

TEST(ConcurrencyTest, AdminScrapesRaceTheRegistryHammer) {
  // Two scraper threads GET /metrics and /statusz over real HTTP while 8
  // writer threads mutate the very registry those endpoints render. Every
  // scrape must come back 200 with a complete body; TSan turns any tear
  // in the registry walk into a failure.
  using transport_hammer::ConnectTo;
  using transport_hammer::ReadToEof;
  using transport_hammer::SendAll;

  obs::SetEnabledForTest(true);
  LabelDict dict;
  LatticeSummary summary(2);
  for (const auto& [text, count] :
       std::vector<std::pair<std::string, uint64_t>>{
           {"a", 10}, {"b", 8}, {"a(b)", 5}}) {
    Result<Twig> twig = Twig::Parse(text, &dict);
    ASSERT_TRUE(twig.ok());
    ASSERT_TRUE(summary.Insert(*twig, count).ok());
  }
  summary.set_complete_through_level(2);
  serve::SnapshotHolder holder;
  holder.Swap(std::make_shared<serve::SummarySnapshot>(std::move(summary),
                                                       std::move(dict)));

  serve::SlowQueryLog slow_log({/*threshold_millis=*/1.0, /*capacity=*/32});
  serve::Transport::Options net;
  net.admin_enabled = true;
  net.slow_log = &slow_log;
  serve::Transport transport(&holder, serve::ServerOptions(), net, nullptr);
  Result<uint16_t> port = transport.Listen();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  std::thread loop([&] { EXPECT_TRUE(transport.Run().ok()); });
  const uint16_t admin = transport.admin_port();
  ASSERT_NE(admin, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&, s] {
      const std::string request =
          std::string("GET ") + (s == 0 ? "/metrics" : "/statusz") +
          " HTTP/1.1\r\nHost: test\r\n\r\n";
      while (!stop.load(std::memory_order_acquire)) {
        int fd = ConnectTo(admin);
        if (fd < 0) continue;
        if (SendAll(fd, request)) {
          std::string raw = ReadToEof(fd, 5000);
          if (raw.rfind("HTTP/1.1 200", 0) == 0 &&
              raw.find("\r\n\r\n") != std::string::npos) {
            scrapes.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ::close(fd);
      }
    });
  }

  RunThreads(kThreads, [&](int t) {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    obs::Counter* counter = registry->counter("test.admin_hammer");
    obs::Histogram* hist = registry->histogram("test.admin_hammer_hist");
    obs::Counter* own =
        registry->counter("test.admin_hammer_" + std::to_string(t));
    for (int i = 0; i < kOpsPerThread; ++i) {
      counter->Increment();
      own->Increment();
      hist->Record(static_cast<uint64_t>(i));
    }
  });
  stop.store(true, std::memory_order_release);
  for (std::thread& s : scrapers) s.join();
  transport.RequestShutdown();
  loop.join();

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(obs::MetricsRegistry::Default()->counter("test.admin_hammer")
                ->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  obs::MetricsRegistry::Default()->ResetAll();
}

}  // namespace
}  // namespace treelattice
