#include <gtest/gtest.h>

#include "harness/flags.h"

namespace treelattice {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesKeyValue) {
  Flags flags = MakeFlags({"--scale=500", "--name=xmark", "--ratio=0.25"});
  EXPECT_EQ(flags.GetInt("scale", 0), 500);
  EXPECT_EQ(flags.GetString("name", ""), "xmark");
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.25);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags flags = MakeFlags({});
  EXPECT_EQ(flags.GetInt("scale", 42), 42);
  EXPECT_EQ(flags.GetString("name", "psd"), "psd");
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("verbose", true));
}

TEST(FlagsTest, BooleanForms) {
  Flags flags = MakeFlags({"--a", "--b=true", "--c=1", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(FlagsTest, IgnoresNonFlagArguments) {
  Flags flags = MakeFlags({"positional", "-single", "--good=1"});
  EXPECT_EQ(flags.GetInt("good", 0), 1);
  EXPECT_EQ(flags.GetInt("positional", 7), 7);
}

TEST(FlagsTest, EmptyValueIntFallsBack) {
  Flags flags = MakeFlags({"--scale="});
  EXPECT_EQ(flags.GetInt("scale", 9), 9);
}

TEST(FlagsTest, MalformedNumbersFallBack) {
  Flags flags = MakeFlags({"--scale=abc", "--level=12x", "--ratio=0.5.0",
                           "--huge=99999999999999999999", "--neg=-3",
                           "--exp=1e3"});
  // Garbage and partial numbers must not silently become 0 (or a prefix).
  EXPECT_EQ(flags.GetInt("scale", 4), 4);
  EXPECT_EQ(flags.GetInt("level", 4), 4);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 1.5), 1.5);
  EXPECT_EQ(flags.GetInt("huge", 7), 7);  // int64 overflow
  EXPECT_EQ(flags.GetInt("neg", 0), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("exp", 0.0), 1000.0);
}

}  // namespace
}  // namespace treelattice
