// TCP transport suite: the epoll/poll event loop end to end over real
// sockets — round trips, pipelining, many connections, the connection cap,
// frame limits, idle and slowloris timeouts, backpressure, half-close vs.
// abortive close, graceful drain, and lossless operation under injected
// socket faults. The companion framing unit tests live here too; the
// mutation fuzzer for the framer is tests/fuzz/fuzz_framing.cc.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/conn.h"
#include "serve/slow_log.h"
#include "serve/transport.h"
#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "util/json.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace serve {
namespace {

std::shared_ptr<SummarySnapshot> BuildSnapshot() {
  LabelDict dict;
  LatticeSummary summary(2);
  auto insert = [&](const std::string& text, uint64_t count) {
    Result<Twig> twig = Twig::Parse(text, &dict);
    ASSERT_TRUE(twig.ok()) << twig.status().ToString();
    ASSERT_TRUE(summary.Insert(*twig, count).ok());
  };
  insert("a", 10);
  insert("b", 8);
  insert("c", 6);
  insert("a(b)", 5);
  insert("b(c)", 4);
  summary.set_complete_through_level(2);
  return std::make_shared<SummarySnapshot>(std::move(summary),
                                           std::move(dict));
}

/// A transport over an in-memory snapshot, its Run loop on a background
/// thread. Stop() requests the graceful drain and joins.
class TestTransport {
 public:
  explicit TestTransport(Transport::Options net_options = {},
                         ServerOptions server_options = {},
                         Transport::ControlHandler control = nullptr) {
    Init(std::move(net_options), std::move(server_options),
         std::move(control));
  }

  ~TestTransport() { Stop(); }

  void Stop() {
    if (!thread_.joinable()) return;
    transport_->RequestShutdown();
    thread_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  uint16_t port() const { return port_; }
  Transport& transport() { return *transport_; }
  SnapshotHolder& snapshots() { return snapshots_; }

 private:
  // gtest ASSERTs only work in void functions, hence not the constructor.
  void Init(Transport::Options net_options, ServerOptions server_options,
            Transport::ControlHandler control) {
    auto snapshot = BuildSnapshot();
    snapshots_.Swap(snapshot);
    server_options.workers = std::min(server_options.workers, 4);
    transport_ = std::make_unique<Transport>(&snapshots_, server_options,
                                             net_options, std::move(control));
    Result<uint16_t> port = transport_->Listen();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
    thread_ = std::thread([this] { run_status_ = transport_->Run(); });
  }

  SnapshotHolder snapshots_;
  std::unique_ptr<Transport> transport_;
  uint16_t port_ = 0;
  std::thread thread_;
  Status run_status_ = Status::OK();
};

/// Blocking client socket with a buffered line reader (blocking is fine
/// here — only the transport itself must stay non-blocking).
class Client {
 public:
  explicit Client(uint16_t port) { Connect(port); }

  ~Client() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Closes abortively: SO_LINGER 0 makes close() emit an RST.
  void Reset() {
    linger lg{1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    Close();
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  void Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      ASSERT_GT(n, 0) << strerror(errno);
      sent += static_cast<size_t>(n);
    }
  }

  /// Next complete line, or nullopt on EOF/timeout.
  std::optional<std::string> NextLine(int timeout_millis = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      const int wait = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count());
      if (::poll(&pfd, 1, std::max(wait, 1)) <= 0) return std::nullopt;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;  // EOF or error
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Everything received until EOF or timeout — the shape of an admin
  /// response, which always ends with the server closing.
  std::string ReadAll(int timeout_millis = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    for (;;) {
      if (std::chrono::steady_clock::now() >= deadline) break;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string all = std::move(buffer_);
    buffer_.clear();
    return all;
  }

  /// True when the peer closed (recv returns 0) within the timeout.
  bool WaitForEof(int timeout_millis = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    for (;;) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return true;  // RST counts as closed
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  int fd() const { return fd_; }

 private:
  void Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << strerror(errno);
  }

  int fd_ = -1;
  std::string buffer_;
};

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> value = ParseJson(line);
  EXPECT_TRUE(value.ok()) << value.status().ToString() << " in: " << line;
  return value.ok() ? *value : JsonValue();
}

std::string RequestLine(uint64_t id) {
  return "{\"query\": \"a(b)\", \"id\": " + std::to_string(id) + "}\n";
}

TEST(TransportTest, RoundTripAndPipelining) {
  TestTransport server;
  Client client(server.port());
  std::string burst;
  for (uint64_t id = 1; id <= 20; ++id) burst += RequestLine(id);
  client.Send(burst);

  std::vector<bool> seen(21, false);
  for (int i = 0; i < 20; ++i) {
    std::optional<std::string> line = client.NextLine();
    ASSERT_TRUE(line.has_value()) << "response " << i << " missing";
    JsonValue value = MustParse(*line);
    const JsonValue* ok = value.Find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->bool_value) << *line;
    const JsonValue* id = value.Find("id");
    ASSERT_NE(id, nullptr);
    const auto n = static_cast<uint64_t>(id->number_value);
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, 20u);
    EXPECT_FALSE(seen[n]) << "duplicate id " << n;
    seen[n] = true;
  }
  client.Close();
  server.Stop();
  Transport::Stats stats = server.transport().GetStats();
  EXPECT_EQ(stats.requests_admitted, 20u);
  EXPECT_EQ(stats.responses_delivered, 20u);
  EXPECT_EQ(stats.responses_orphaned, 0u);
  // Every EventPoller Add/Modify/Remove Status is now checked and tallied;
  // a clean soak (connect, pipeline, close, drain) must tally zero.
  EXPECT_EQ(stats.poller_errors, 0u);
}

TEST(TransportTest, ManyConnectionsEachGetTheirOwnAnswers) {
  TestTransport server;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < 8; ++c) {
    clients.push_back(std::make_unique<Client>(server.port()));
  }
  for (int c = 0; c < 8; ++c) {
    std::string burst;
    // Ids are per-connection: overlapping ranges across connections prove
    // responses route by connection, not globally.
    for (uint64_t id = 1; id <= 5; ++id) burst += RequestLine(id);
    clients[static_cast<size_t>(c)]->Send(burst);
  }
  for (auto& client : clients) {
    std::vector<bool> seen(6, false);
    for (int i = 0; i < 5; ++i) {
      std::optional<std::string> line = client->NextLine();
      ASSERT_TRUE(line.has_value());
      JsonValue value = MustParse(*line);
      const auto id =
          static_cast<uint64_t>(value.Find("id")->number_value);
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, 5u);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(TransportTest, ConnectionCapTurnsAwayWithResourceExhausted) {
  Transport::Options options;
  options.max_connections = 2;
  TestTransport server(options);
  Client first(server.port());
  Client second(server.port());
  // The first two must be established before the third tries, or accept
  // order could let the third in under the cap.
  first.Send(RequestLine(1));
  ASSERT_TRUE(first.NextLine().has_value());
  second.Send(RequestLine(1));
  ASSERT_TRUE(second.NextLine().has_value());

  Client third(server.port());
  std::optional<std::string> line = third.NextLine();
  ASSERT_TRUE(line.has_value());
  JsonValue value = MustParse(*line);
  const JsonValue* error = value.Find("error");
  ASSERT_NE(error, nullptr) << *line;
  EXPECT_EQ(error->Find("code")->string_value, "ResourceExhausted");
  EXPECT_TRUE(third.WaitForEof());

  server.Stop();
  EXPECT_EQ(server.transport().GetStats().rejected, 1u);
}

TEST(TransportTest, OversizedFrameFailsTheRequestNotTheConnection) {
  Transport::Options options;
  options.max_frame_bytes = 128;
  TestTransport server(options);
  Client client(server.port());
  client.Send(std::string(1000, 'x') + "\n" + RequestLine(7));

  std::optional<std::string> line = client.NextLine();
  ASSERT_TRUE(line.has_value());
  JsonValue value = MustParse(*line);
  const JsonValue* error = value.Find("error");
  ASSERT_NE(error, nullptr) << *line;
  EXPECT_EQ(error->Find("code")->string_value, "InvalidArgument");

  line = client.NextLine();
  ASSERT_TRUE(line.has_value()) << "connection should have survived";
  value = MustParse(*line);
  EXPECT_TRUE(value.Find("ok")->bool_value);
  EXPECT_EQ(static_cast<uint64_t>(value.Find("id")->number_value), 7u);

  server.Stop();
  EXPECT_EQ(server.transport().GetStats().frames_oversized, 1u);
}

TEST(TransportTest, MalformedRequestLineGetsAnErrorResponse) {
  TestTransport server;
  Client client(server.port());
  client.Send("{\"query\": 42}\n");
  std::optional<std::string> line = client.NextLine();
  ASSERT_TRUE(line.has_value());
  JsonValue value = MustParse(*line);
  EXPECT_FALSE(value.Find("ok")->bool_value);
  ASSERT_NE(value.Find("error"), nullptr);
}

TEST(TransportTest, IdleConnectionIsClosed) {
  Transport::Options options;
  options.idle_timeout_millis = 100.0;
  TestTransport server(options);
  Client client(server.port());
  EXPECT_TRUE(client.WaitForEof(5000));
  server.Stop();
  EXPECT_EQ(server.transport().GetStats().idle_timeouts, 1u);
}

TEST(TransportTest, SlowlorisMidFrameIsClosed) {
  Transport::Options options;
  options.request_timeout_millis = 100.0;
  options.idle_timeout_millis = 0.0;  // isolate the mid-frame defense
  TestTransport server(options);
  Client client(server.port());
  client.Send("{\"query\": \"a(b)\"");  // frame never completed
  EXPECT_TRUE(client.WaitForEof(5000));
  server.Stop();
  EXPECT_EQ(server.transport().GetStats().request_timeouts, 1u);
}

TEST(TransportTest, HalfCloseStillAnswersEverythingThenCloses) {
  TestTransport server;
  Client client(server.port());
  std::string burst;
  for (uint64_t id = 1; id <= 5; ++id) burst += RequestLine(id);
  client.Send(burst);
  client.ShutdownWrite();  // orderly EOF with requests still in flight
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.NextLine().has_value()) << "response " << i;
  }
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
  Transport::Stats stats = server.transport().GetStats();
  EXPECT_EQ(stats.responses_delivered, 5u);
  EXPECT_EQ(stats.responses_orphaned, 0u);
}

TEST(TransportTest, ResetCancelsInFlightWorkAndCountsOrphans) {
  ServerOptions server_options;
  server_options.worker_delay_millis = 50.0;  // keep requests in flight
  TestTransport server({}, server_options);
  {
    Client client(server.port());
    client.Send(RequestLine(1) + RequestLine(2));
    // An RST discards unread kernel data, so wait until both frames are
    // admitted before pulling the plug; the worker delay keeps them in
    // flight when the reset lands.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.transport().GetStats().requests_admitted < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    client.Reset();  // RST while both are queued or running
  }
  server.Stop();  // drains; the orphaned responses are accounted
  Transport::Stats stats = server.transport().GetStats();
  EXPECT_EQ(stats.requests_admitted, 2u);
  EXPECT_EQ(stats.responses_delivered + stats.responses_orphaned, 2u);
  EXPECT_GE(stats.responses_orphaned, 1u);
  EXPECT_GE(stats.resets, 1u);
}

TEST(TransportTest, GracefulDrainAnswersEverythingAdmitted) {
  ServerOptions server_options;
  server_options.worker_delay_millis = 10.0;
  server_options.workers = 2;
  TestTransport server({}, server_options);
  Client client(server.port());
  std::string burst;
  for (uint64_t id = 1; id <= 30; ++id) burst += RequestLine(id);
  client.Send(burst);
  // Shut down while most of the burst is still queued: the drain contract
  // says every admitted request is answered and flushed before close.
  server.transport().RequestShutdown();
  int answered = 0;
  while (client.NextLine(15000).has_value()) ++answered;
  server.Stop();
  Transport::Stats stats = server.transport().GetStats();
  EXPECT_EQ(static_cast<uint64_t>(answered), stats.requests_admitted);
  EXPECT_EQ(stats.responses_orphaned, 0u);
  EXPECT_GT(stats.drain_micros, 0.0);
}

TEST(TransportTest, FaultInjectionIsLosslessForShortIoAndEagain) {
  Transport::Options options;
  options.faults.seed = 1234;
  options.faults.short_io = 0.4;
  options.faults.eagain = 0.3;
  TestTransport server(options);
  Client client(server.port());
  std::string burst;
  for (uint64_t id = 1; id <= 100; ++id) burst += RequestLine(id);
  client.Send(burst);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.NextLine().has_value()) << "response " << i;
  }
  server.Stop();
  Transport::Stats stats = server.transport().GetStats();
  EXPECT_EQ(stats.responses_delivered, 100u);
  EXPECT_GT(stats.injected_faults, 0u);
}

TEST(TransportTest, BackpressurePausesAndResumesUnderEagainStorm) {
  Transport::Options options;
  // A storm of injected EAGAINs on writes makes the response backlog pile
  // up past a tiny high-water mark, pausing reads; the storm passes
  // (probabilistically) and everything still flushes.
  options.faults.seed = 99;
  options.faults.eagain = 0.9;
  options.write_high_water = 512;
  options.write_low_water = 128;
  TestTransport server(options);
  Client client(server.port());
  std::string burst;
  for (uint64_t id = 1; id <= 50; ++id) burst += RequestLine(id);
  client.Send(burst);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.NextLine(20000).has_value()) << "response " << i;
  }
  server.Stop();
  Transport::Stats stats = server.transport().GetStats();
  EXPECT_EQ(stats.responses_delivered, 50u);
  EXPECT_GE(stats.backpressure_stalls, 1u);
}

TEST(TransportTest, PollFallbackServesTheSameProtocol) {
  Transport::Options options;
  options.force_poll = true;
  TestTransport server(options);
  Client client(server.port());
  client.Send(RequestLine(1) + "#stats\n" + RequestLine(2));
  int ok_responses = 0;
  bool saw_stats = false;
  for (int i = 0; i < 3; ++i) {
    std::optional<std::string> line = client.NextLine();
    ASSERT_TRUE(line.has_value());
    JsonValue value = MustParse(*line);
    if (value.Find("stats") != nullptr) {
      saw_stats = true;
      ASSERT_NE(value.Find("stats")->Find("net"), nullptr) << *line;
    } else if (value.Find("ok")->bool_value) {
      ++ok_responses;
    }
  }
  EXPECT_EQ(ok_responses, 2);
  EXPECT_TRUE(saw_stats);
}

TEST(TransportTest, ControlHandlerAnswersAndUnknownControlErrors) {
  auto control = [](std::string_view line) -> std::string {
    if (line == "#ping") return "{\"pong\":true}";
    return std::string();
  };
  TestTransport server({}, {}, control);
  Client client(server.port());
  client.Send("#ping\n#bogus\n");
  std::optional<std::string> line = client.NextLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(MustParse(*line).Find("pong"), nullptr);
  line = client.NextLine();
  ASSERT_TRUE(line.has_value());
  JsonValue value = MustParse(*line);
  ASSERT_NE(value.Find("error"), nullptr);
  EXPECT_EQ(value.Find("error")->Find("code")->string_value,
            "InvalidArgument");
}

// --- Admin plane ---------------------------------------------------------

struct HttpResponse {
  int status = 0;
  std::string headers;  // status line + header block
  std::string body;
};

/// One admin exchange: connect, send `request` verbatim, read to EOF
/// (the admin plane always answers Connection: close), split the result.
HttpResponse AdminFetch(uint16_t admin_port, const std::string& request) {
  Client client(admin_port);
  client.Send(request);
  std::string raw = client.ReadAll();
  HttpResponse response;
  size_t space = raw.find(' ');
  if (space != std::string::npos) {
    response.status = std::atoi(raw.c_str() + space + 1);
  }
  size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    response.headers = raw.substr(0, split);
    response.body = raw.substr(split + 4);
  }
  return response;
}

HttpResponse AdminGet(uint16_t admin_port, const std::string& target) {
  return AdminFetch(admin_port,
                    "GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

TEST(TransportTest, AdminPlaneServesEveryEndpoint) {
  SlowQueryLog slow_log({/*threshold_millis=*/250.0, /*capacity=*/16});
  Transport::Options options;
  options.admin_enabled = true;
  options.slow_log = &slow_log;
  TestTransport server(options);
  const uint16_t admin = server.transport().admin_port();
  ASSERT_NE(admin, 0);

  Client client(server.port());
  client.Send(RequestLine(1));
  ASSERT_TRUE(client.NextLine().has_value());

  HttpResponse health = AdminGet(admin, "/healthz");
  EXPECT_EQ(health.status, 200);
  JsonValue health_json = MustParse(health.body);
  EXPECT_TRUE(health_json.Find("ok")->bool_value) << health.body;

  HttpResponse statusz = AdminGet(admin, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  JsonValue statusz_json = MustParse(statusz.body);
  EXPECT_GE(statusz_json.Find("snapshot_version")->number_value, 1.0);
  EXPECT_GE(statusz_json.Find("uptime_seconds")->number_value, 0.0);
  ASSERT_NE(statusz_json.Find("stats"), nullptr);
  EXPECT_NE(statusz_json.Find("stats")->Find("net"), nullptr);
  EXPECT_NE(statusz_json.Find("build"), nullptr);

  // '#stats' over the serving port renders the same snapshot: the version
  // the two surfaces report must agree (one BuildStatus path for both).
  client.Send("#stats\n");
  std::optional<std::string> stats_line = client.NextLine();
  ASSERT_TRUE(stats_line.has_value());
  JsonValue stats_json = MustParse(*stats_line);
  ASSERT_NE(stats_json.Find("stats"), nullptr);
  EXPECT_DOUBLE_EQ(
      stats_json.Find("stats")->Find("snapshot_version")->number_value,
      statusz_json.Find("snapshot_version")->number_value);

  HttpResponse metrics = AdminGet(admin, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("treelattice_"), std::string::npos);

  HttpResponse slowz = AdminGet(admin, "/slowz");
  EXPECT_EQ(slowz.status, 200);
  EXPECT_NE(MustParse(slowz.body).Find("slowz"), nullptr);

  // Query strings are ignored, unknown paths 404, non-GET methods 405,
  // HEAD gets headers only.
  EXPECT_EQ(AdminGet(admin, "/healthz?verbose=1").status, 200);
  EXPECT_EQ(AdminGet(admin, "/nope").status, 404);
  EXPECT_EQ(
      AdminFetch(admin, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n").status,
      405);
  HttpResponse head =
      AdminFetch(admin, "HEAD /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty()) << head.body;
}

TEST(TransportTest, HealthzReportsNotReadyDuringDrain) {
  Transport::Options options;
  options.admin_enabled = true;
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.worker_delay_millis = 50.0;  // ~1s of backlog below
  TestTransport server(options, server_options);
  const uint16_t admin = server.transport().admin_port();

  EXPECT_EQ(AdminGet(admin, "/healthz").status, 200);

  Client client(server.port());
  std::string burst;
  for (uint64_t id = 1; id <= 20; ++id) burst += RequestLine(id);
  client.Send(burst);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.transport().GetStats().requests_admitted < 5 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The admin listener stays open through the drain precisely so health
  // probes see the flip before the process goes away.
  server.transport().RequestShutdown();
  HttpResponse health = AdminGet(admin, "/healthz");
  EXPECT_EQ(health.status, 503);
  JsonValue health_json = MustParse(health.body);
  EXPECT_FALSE(health_json.Find("ok")->bool_value);
  EXPECT_EQ(health_json.Find("reason")->string_value, "draining");

  while (client.NextLine(15000).has_value()) {
  }
  server.Stop();
}

TEST(TransportTest, SlowQueryLandsInSlowzWithShapeAndStages) {
  obs::SetEnabledForTest(true);
  SlowQueryLog slow_log({/*threshold_millis=*/1.0, /*capacity=*/16});
  Transport::Options options;
  options.admin_enabled = true;
  options.slow_log = &slow_log;
  ServerOptions server_options;
  server_options.worker_delay_millis = 10.0;  // guarantees over-threshold
  TestTransport server(options, server_options);
  const uint16_t admin = server.transport().admin_port();

  Client client(server.port());
  client.Send(RequestLine(1));
  std::optional<std::string> line = client.NextLine();
  ASSERT_TRUE(line.has_value());
  const auto req =
      static_cast<uint64_t>(MustParse(*line).Find("req")->number_value);

  // Finalization runs on the loop thread just after the response bytes
  // reach the kernel; poll /slowz until the entry shows up.
  JsonValue entry;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    HttpResponse slowz = AdminGet(admin, "/slowz");
    ASSERT_EQ(slowz.status, 200);
    JsonValue slowz_json = MustParse(slowz.body);
    const JsonValue* entries = slowz_json.Find("slowz")->Find("entries");
    ASSERT_NE(entries, nullptr);
    if (!entries->array.empty()) {
      entry = entries->array[0];
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slow query never appeared in /slowz";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  EXPECT_EQ(static_cast<uint64_t>(entry.Find("req")->number_value), req);
  EXPECT_EQ(entry.Find("query")->string_value, "a(b)");
  EXPECT_TRUE(entry.Find("ok")->bool_value);
  // Shape features of a(b): two nodes, one edge deep, one child.
  const JsonValue* shape = entry.Find("shape");
  ASSERT_NE(shape, nullptr);
  EXPECT_EQ(shape->Find("size")->number_value, 2.0);
  EXPECT_EQ(shape->Find("depth")->number_value, 1.0);
  EXPECT_EQ(shape->Find("fanout")->number_value, 1.0);
  const JsonValue* stages = entry.Find("stages_micros");
  ASSERT_NE(stages, nullptr);
  // The worker delay lands in the estimate stage and dominates the total.
  EXPECT_GE(stages->Find("estimate")->number_value, 10000.0);
  EXPECT_GE(entry.Find("total_ms")->number_value, 10.0);
}

TEST(TransportTest, RequestIdsAreUniqueAndEchoedAcrossConnections) {
  obs::SetEnabledForTest(true);
  TestTransport server;
  std::set<uint64_t> reqs;
  for (int c = 0; c < 4; ++c) {
    Client client(server.port());
    std::string burst;
    // Client-chosen ids collide across connections; the transport's own
    // request ids must not. Malformed lines get traced ids too.
    for (uint64_t id = 1; id <= 5; ++id) burst += RequestLine(id);
    burst += "{\"query\": 42}\n";
    client.Send(burst);
    for (int i = 0; i < 6; ++i) {
      std::optional<std::string> line = client.NextLine();
      ASSERT_TRUE(line.has_value()) << "response " << i;
      JsonValue value = MustParse(*line);
      const JsonValue* req = value.Find("req");
      ASSERT_NE(req, nullptr) << *line;
      const auto r = static_cast<uint64_t>(req->number_value);
      EXPECT_GT(r, 0u) << *line;
      EXPECT_TRUE(reqs.insert(r).second) << "duplicate req id " << r;
    }
  }
  EXPECT_EQ(reqs.size(), 24u);
}

// --- NdjsonFramer unit tests ---------------------------------------------

std::vector<NdjsonFramer::Event> FeedAll(NdjsonFramer* framer,
                                         std::string_view data) {
  std::vector<NdjsonFramer::Event> events;
  framer->Feed(data, &events);
  return events;
}

TEST(NdjsonFramerTest, SplitsLinesAcrossArbitraryChunks) {
  NdjsonFramer framer(1024);
  std::vector<std::string> lines;
  const std::string input = "alpha\nbeta\r\ngam";
  for (char c : input) {
    for (NdjsonFramer::Event& event :
         FeedAll(&framer, std::string_view(&c, 1))) {
      ASSERT_EQ(event.kind, NdjsonFramer::EventKind::kLine);
      lines.push_back(event.line);
    }
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(framer.mid_frame());
  EXPECT_EQ(framer.pending(), 3u);
}

TEST(NdjsonFramerTest, OversizedFrameReportedOnceThenDiscardedToNewline) {
  NdjsonFramer framer(4);
  std::vector<NdjsonFramer::Event> events =
      FeedAll(&framer, "toolongline");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, NdjsonFramer::EventKind::kOversized);
  EXPECT_TRUE(FeedAll(&framer, "stilltoolong").empty());
  events = FeedAll(&framer, "rest\nok\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, NdjsonFramer::EventKind::kLine);
  EXPECT_EQ(events[0].line, "ok");
}

TEST(NdjsonFramerTest, ByteConservationAcrossMixedTraffic) {
  NdjsonFramer framer(8);
  const std::string input =
      "ab\n\n\r\nwaytoolongforlimit\ncd\r\npartial";
  size_t line_bytes = 0;
  for (NdjsonFramer::Event& event : FeedAll(&framer, input)) {
    if (event.kind == NdjsonFramer::EventKind::kLine) {
      line_bytes += event.line.size() + 1;
    }
  }
  EXPECT_EQ(framer.consumed(), input.size());
  EXPECT_EQ(framer.consumed(),
            line_bytes + framer.dropped() + framer.pending());
}

TEST(NdjsonFramerTest, EmbeddedNulBytesPassThrough) {
  NdjsonFramer framer(64);
  const std::string input{"a\0b\nc\n", 6};
  std::vector<NdjsonFramer::Event> events = FeedAll(&framer, input);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].line, (std::string{"a\0b", 3}));
  EXPECT_EQ(events[1].line, "c");
}

}  // namespace
}  // namespace serve
}  // namespace treelattice
