// Failure-injection and fuzz-ish robustness tests: random bytes and
// adversarial structures must produce clean Status errors, never crashes
// or hangs.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

class XmlFuzzProperty : public testing::TestWithParam<int> {};

TEST_P(XmlFuzzProperty, RandomBytesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1337 + 7);
  // Byte soup biased toward XML-ish characters so the parser gets past the
  // first branch often.
  const char alphabet[] = "<>/=\"' abcdeXML?!-[]&;\t\n";
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    size_t length = rng.Uniform(200);
    for (size_t i = 0; i < length; ++i) {
      if (rng.Bernoulli(0.9)) {
        input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
      } else {
        input.push_back(static_cast<char>(rng.Uniform(256)));
      }
    }
    Result<Document> result = ParseXmlString(input);
    if (result.ok()) {
      // Whatever parsed must be a valid tree and round-trippable.
      EXPECT_TRUE(result->Validate().ok());
      EXPECT_TRUE(ParseXmlString(WriteXmlString(*result)).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzProperty, testing::Range(0, 20));

class TwigFuzzProperty : public testing::TestWithParam<int> {};

TEST_P(TwigFuzzProperty, RandomTwigTextNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 3);
  const char alphabet[] = "ab(),x1 ";
  LabelDict dict;
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    size_t length = rng.Uniform(40);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<Twig> twig = Twig::Parse(input, &dict);
    if (twig.ok()) {
      // Parsed twigs must round-trip through their canonical code.
      Result<Twig> again = Twig::FromCanonicalCode(twig->CanonicalCode());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->CanonicalCode(), twig->CanonicalCode());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwigFuzzProperty, testing::Range(0, 20));

class XPathFuzzProperty : public testing::TestWithParam<int> {};

TEST_P(XPathFuzzProperty, RandomXPathTextNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 13);
  const char alphabet[] = "ab/[]@*12 .";
  LabelDict dict;
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    size_t length = rng.Uniform(40);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<Twig> twig = CompileXPath(input, &dict);
    if (twig.ok()) {
      EXPECT_GE(twig->size(), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathFuzzProperty, testing::Range(0, 20));

TEST(DeepNestingTest, ParserHandlesDeepDocuments) {
  // 2000-deep chain: the parser is iterative, so this must parse cleanly.
  const int depth = 2000;
  std::string xml;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  Result<Document> doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumNodes(), static_cast<size_t>(depth));
  EXPECT_TRUE(doc->Validate().ok());
}

TEST(DeepNestingTest, SummaryHandlesPathPatternsOfMaxLevel) {
  const int depth = 500;
  std::string xml;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  Result<Document> doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  // A single-label chain: level-k pattern is the k-path, count depth-k+1.
  LatticeSummary summary(3);
  Twig path3;
  int node = path3.AddNode(doc->Label(0), -1);
  node = path3.AddNode(doc->Label(0), node);
  path3.AddNode(doc->Label(0), node);
  ASSERT_TRUE(summary.Insert(path3, depth - 2).ok());
  EXPECT_EQ(*summary.Lookup(path3), static_cast<uint64_t>(depth - 2));
}

TEST(MalformedSummaryTest, TruncatedFileRejected) {
  std::string path = testing::TempDir() + "/tl_truncated_summary.txt";
  {
    std::ofstream out(path);
    out << "TLSUMMARY v1\n4 4\n5\n10 0\n";  // claims 5 entries, has 1
  }
  Result<LatticeSummary> result = LatticeSummary::LoadFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(MalformedSummaryTest, GarbageCodeRejected) {
  std::string path = testing::TempDir() + "/tl_garbage_summary.txt";
  {
    std::ofstream out(path);
    out << "TLSUMMARY v1\n4 4\n1\n10 not-a-code\n";
  }
  Result<LatticeSummary> result = LatticeSummary::LoadFromFile(path);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace treelattice
